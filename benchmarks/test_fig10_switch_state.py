"""Figure 10 — switch state of the generated programs vs topology size.

The paper reports the per-switch memory of the synthesized P4 programs: WP and
CA need more state than MU (tags and per-pid tables respectively), and even at
500 switches no program needs more than ~70 kB — a tiny fraction of switch
SRAM.  We reproduce the same sweep using the compiler's state estimate.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import report
from repro.experiments.scalability import run_scalability_sweep

from conftest import run_once

_FULL = os.environ.get("CONTRA_EXPERIMENT_PRESET", "quick") in ("default", "full")
FATTREE_SIZES = (20, 125, 245, 405, 500) if _FULL else (20, 125, 245)
RANDOM_SIZES = (100, 200, 300, 400, 500) if _FULL else (100, 200, 300)


@pytest.mark.benchmark(group="fig10")
def test_fig10a_fattree_switch_state(benchmark):
    points = run_once(benchmark, run_scalability_sweep,
                      families=("fattree",), fattree_sizes=FATTREE_SIZES)
    print()
    print(report.format_scalability(points, title="Figure 10a: fat-tree switch state (kB)"))
    by_key = {(p.size, p.policy): p for p in points}
    largest = max(FATTREE_SIZES)
    # Ordering: WP (regex tags) and CA (two probe ids) above MU.
    assert by_key[(largest, "WP")].max_state_kb > by_key[(largest, "MU")].max_state_kb
    assert by_key[(largest, "CA")].max_state_kb > by_key[(largest, "MU")].max_state_kb
    # Absolute scale stays far below switch SRAM (tens of MB).
    assert all(p.max_state_kb < 2048 for p in points)
    # State grows with topology size.
    assert by_key[(largest, "MU")].max_state_kb > by_key[(min(FATTREE_SIZES), "MU")].max_state_kb


@pytest.mark.benchmark(group="fig10")
def test_fig10b_random_network_switch_state(benchmark):
    points = run_once(benchmark, run_scalability_sweep,
                      families=("random",), random_sizes=RANDOM_SIZES)
    print()
    print(report.format_scalability(points, title="Figure 10b: random-network switch state (kB)"))
    by_key = {(p.size, p.policy): p for p in points}
    largest = max(RANDOM_SIZES)
    assert by_key[(largest, "WP")].max_state_kb > by_key[(largest, "MU")].max_state_kb
    assert all(p.max_state_kb < 2048 for p in points)
