"""Figure 11 — average FCT vs load on a symmetric fat-tree.

ECMP vs Contra vs Hula over the web-search (11a) and cache (11b) workloads.
The paper's shape: the two utilization-aware systems track each other closely
(Hula ahead of Contra by a fraction of a percent) and clearly beat ECMP as the
load grows (≈30–47% lower FCT at 90% load).
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import report
from repro.experiments.fct import run_fattree_fct

from conftest import run_once


def _check_shape(points, workload):
    by_key = {(p.load, p.system): p for p in points if p.workload == workload}
    loads = sorted({load for load, _system in by_key})
    for load, system in by_key:
        assert by_key[(load, system)].completed > 0
        assert not math.isnan(by_key[(load, system)].avg_fct_ms)
    top = max(loads)
    # At the highest load the load-aware systems do not lose to ECMP.
    assert by_key[(top, "contra")].avg_fct_ms <= by_key[(top, "ecmp")].avg_fct_ms * 1.1
    assert by_key[(top, "hula")].avg_fct_ms <= by_key[(top, "ecmp")].avg_fct_ms * 1.1
    # Contra tracks Hula (the paper reports a ~0.3% gap; we allow 50%).
    assert by_key[(top, "contra")].avg_fct_ms <= by_key[(top, "hula")].avg_fct_ms * 1.5


@pytest.mark.benchmark(group="fig11")
def test_fig11a_web_search_fct(benchmark, experiment_config):
    points = run_once(benchmark, run_fattree_fct, experiment_config,
                      workloads=("web_search",))
    print()
    print(report.format_fct(points, "Figure 11a: symmetric fat-tree, web search workload"))
    _check_shape(points, "web_search")


@pytest.mark.benchmark(group="fig11")
def test_fig11b_cache_fct(benchmark, experiment_config):
    points = run_once(benchmark, run_fattree_fct, experiment_config,
                      workloads=("cache",))
    print()
    print(report.format_fct(points, "Figure 11b: symmetric fat-tree, cache workload"))
    _check_shape(points, "cache")
