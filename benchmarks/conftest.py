"""Shared fixtures for the per-figure benchmark harness.

Every benchmark runs one experiment driver exactly once (``benchmark.pedantic``
with a single round — the experiments are seconds-to-minutes long, so repeated
timing rounds would be wasteful) and prints the same rows/series the paper's
figure reports.  Set ``CONTRA_EXPERIMENT_PRESET=default`` or ``full`` for
longer, higher-fidelity sweeps; the default ``quick`` preset reproduces the
shapes in a few minutes.

The drivers all execute through the parallel grid runner; set
``CONTRA_PROCS`` (or pass ``processes=`` in library use) to fan the grid
points of one experiment across cores — the results are byte-identical to a
serial run.

Each benchmark additionally drops a ``BENCH_<name>.json`` wall-clock artifact
(into ``$CONTRA_BENCH_DIR`` or the working directory) so CI can archive the
performance trajectory across commits.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.config import config_from_env


@pytest.fixture(scope="session")
def experiment_config():
    """The experiment preset selected via CONTRA_EXPERIMENT_PRESET (default: quick)."""
    return config_from_env()


def _bench_dir() -> Path:
    return Path(os.environ.get("CONTRA_BENCH_DIR", "."))


def write_bench_artifact(name: str, wall_s: float, extra: dict = None) -> None:
    """Record one benchmark's wall-clock as BENCH_<name>.json."""
    payload = {
        "benchmark": name,
        "wall_s": round(wall_s, 4),
        "preset": os.environ.get("CONTRA_EXPERIMENT_PRESET", "quick"),
        "processes": os.environ.get("CONTRA_PROCS", "1"),
    }
    if extra:
        payload.update(extra)
    path = _bench_dir() / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing (+ JSON artifact)."""
    held = {}

    def timed(*fn_args, **fn_kwargs):
        started = time.perf_counter()
        result = fn(*fn_args, **fn_kwargs)
        held["wall_s"] = time.perf_counter() - started
        return result

    result = benchmark.pedantic(timed, args=args, kwargs=kwargs, rounds=1, iterations=1)
    if "wall_s" in held:
        # Key the artifact by the *test* name, not the driver function: several
        # benchmarks share a driver (fig9/fig10, fig11/fig12) and must not
        # overwrite each other's wall-clock record.
        name = getattr(benchmark, "name", None) or getattr(fn, "__name__", "experiment")
        write_bench_artifact(name, held["wall_s"],
                             extra={"driver": getattr(fn, "__name__", "experiment")})
    return result
