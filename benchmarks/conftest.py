"""Shared fixtures for the per-figure benchmark harness.

Every benchmark runs one experiment driver exactly once (``benchmark.pedantic``
with a single round — the experiments are seconds-to-minutes long, so repeated
timing rounds would be wasteful) and prints the same rows/series the paper's
figure reports.  Set ``CONTRA_EXPERIMENT_PRESET=default`` or ``full`` for
longer, higher-fidelity sweeps; the default ``quick`` preset reproduces the
shapes in a few minutes.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import config_from_env


@pytest.fixture(scope="session")
def experiment_config():
    """The experiment preset selected via CONTRA_EXPERIMENT_PRESET (default: quick)."""
    return config_from_env()


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
