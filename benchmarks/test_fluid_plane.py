"""Fluid-plane benchmarks: fidelity table and the million-flow headline.

Two quick-preset benchmarks drop ``BENCH_fluid_*.json`` artifacts into the
cached CI baseline alongside the figure benchmarks:

* ``fluid-vs-packet`` — the standing fidelity evidence: every point of the
  validation grids runs under both planes and the report prints the
  median/p99 FCT deltas side by side.
* ``fluid-million`` — the scaling headline: a k=8 fat-tree point sized at
  10^5 flows under the quick preset (10^6 under default/full), with failure
  churn and the HyperLogLog flow sketch enabled.  The artifact records the
  realised flow and epoch counts next to the wall clock, so bench_diff
  tracks cost *per epoch*, not just end-to-end seconds.

The ``slow``-marked test pins the paper-scale claim exactly — ≥10^6 flows on
one core — independent of the preset; enable it with ``pytest -m ""``.
"""

from __future__ import annotations

import time

import pytest

from repro.experiments.registry import run_scenario
from repro.experiments.fluid_scale import fluid_million_specs
from repro.experiments.report import format_fluid_million
from repro.experiments.runner import run_grid

from conftest import run_once, write_bench_artifact


@pytest.mark.benchmark(group="fluid")
def test_fluid_vs_packet_fidelity(benchmark, experiment_config):
    outcome = run_once(benchmark, run_scenario, "fluid-vs-packet",
                       experiment_config)
    print()
    print(outcome.text)
    points = outcome.payload
    assert points, "fidelity grid produced no comparison points"
    for point in points:
        assert point["fluid_flows"] > 0 and point["packet_flows"] > 0
        assert point["p50_delta_pct"] == point["p50_delta_pct"]  # not NaN


@pytest.mark.benchmark(group="fluid")
def test_fluid_million_scale(benchmark, experiment_config):
    started = time.perf_counter()
    outcome = run_once(benchmark, run_scenario, "fluid-million",
                       experiment_config)
    wall_s = time.perf_counter() - started
    print()
    print(outcome.text)
    detail = {}
    for row in outcome.payload:
        summary = row["summary"]
        assert summary["completion_ratio"] >= 0.99
        assert summary["epochs"] > 0
        assert summary["flow_sketch_switches"] > 0
        detail[row["system"]] = {"flows": int(summary["flows"]),
                                 "completed_flows": int(summary["completed_flows"]),
                                 "epochs": int(summary["epochs"])}
    write_bench_artifact("fluid_million_detail", wall_s, extra=detail)


@pytest.mark.slow
def test_fluid_million_full_scale(experiment_config):
    """The paper-scale claim, preset-independent: one ≥10^6-flow fluid point
    completes on one core in minutes, and the artifact records the wall
    clock and epoch count that back the number."""
    specs = fluid_million_specs(experiment_config, systems=("contra",),
                                flow_target=1_000_000)
    started = time.perf_counter()
    results = run_grid(specs, processes=1)
    wall_s = time.perf_counter() - started
    print()
    print(format_fluid_million(results))
    summary = results[0].summary
    # Poisson arrivals fluctuate ~±0.3% around the 10^6 target.
    assert summary["flows"] >= 990_000
    assert summary["completion_ratio"] >= 0.99
    write_bench_artifact(
        "fluid_million_full", wall_s,
        extra={"flows": int(summary["flows"]),
               "completed_flows": int(summary["completed_flows"]),
               "epochs": int(summary["epochs"])})
    assert wall_s < 1800, f"million-flow point took {wall_s:.0f}s"
