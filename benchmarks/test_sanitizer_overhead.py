"""Sanitizer-plane overhead benchmark — the cost of running checked.

One fig13 grid point runs twice through the grid runner: once on the
default path and once with the runtime sanitizer armed (``sanitize=True``:
tagged scheduling, wrapped links/hosts/tables, quiesce checks).  The BENCH
artifact records both wall-clocks and their ratio, so the measured price of
the plane is pinned in the cross-commit ``bench_diff`` trajectory — and the
summaries are asserted byte-identical, re-proving on every CI run that the
plane observes without perturbing.
"""

from __future__ import annotations

import json
import time

from repro.experiments.registry import SCENARIOS
from repro.experiments.runner import RunContext

from conftest import write_bench_artifact


def _canon_summary(result) -> str:
    return json.dumps(result.summary, sort_keys=True, default=str)


def test_sanitizer_overhead(benchmark, experiment_config):
    spec = SCENARIOS["fig13"].build_specs(experiment_config)[0]

    started = time.perf_counter()
    base = RunContext(sanitize=False).run(spec)
    wall_off = time.perf_counter() - started

    held = {}

    def sanitized_run():
        inner = time.perf_counter()
        result = RunContext(sanitize=True).run(spec)
        held["wall_s"] = time.perf_counter() - inner
        return result

    sanitized = benchmark.pedantic(sanitized_run, rounds=1, iterations=1)
    assert _canon_summary(sanitized) == _canon_summary(base)

    wall_on = held["wall_s"]
    write_bench_artifact(
        "test_sanitizer_overhead", wall_on,
        extra={
            "point": f"{spec.name}/{spec.system}",
            "wall_off_s": round(wall_off, 4),
            "overhead_ratio": round(wall_on / wall_off, 3) if wall_off else None,
        })
