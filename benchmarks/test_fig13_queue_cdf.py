"""Figure 13 — CDF of queue lengths, Contra vs ECMP (asymmetric fat-tree, 60% load).

The paper reports that Contra's queues never exceed the 1000-MSS buffer while
ECMP pushes queues past it (and into loss) more than 97% of the time it has
long queues.  We reproduce the comparison by sampling every link's queue on
each enqueue and printing the CDF points for both systems.
"""

from __future__ import annotations

import pytest

from repro.experiments import report
from repro.experiments.fct import run_queue_cdf

from conftest import run_once


@pytest.mark.benchmark(group="fig13")
def test_fig13_queue_length_cdf(benchmark, experiment_config):
    cdfs = run_once(benchmark, run_queue_cdf, experiment_config, load=0.6)
    print()
    print(report.format_queue_cdf(cdfs))
    assert set(cdfs) == {"ecmp", "contra"}
    # Contra's tail queues are no longer than ECMP's at every reported point.
    for point in (0.9, 0.99, 1.0):
        assert cdfs["contra"][point] <= cdfs["ecmp"][point] + 1e-9
    # And its maximum stays within the configured buffer.
    assert cdfs["contra"][1.0] <= experiment_config.buffer_packets
