"""Figure 14 — aggregate throughput around a link failure (Contra and Hula).

The paper brings down an aggregation–core link under constant-rate UDP traffic
at t = 50 ms; Contra detects the failure after ~800 µs (its 3-probe-period
threshold) and restores the full rate within ~1 ms, with Hula behaving
similarly.  We print the throughput time-series around the failure plus the
measured dip/recovery delays for both systems.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import report
from repro.experiments.failure_recovery import run_failure_recovery

from conftest import run_once

FAILURE_TIME = 25.0
RUN_DURATION = 45.0


@pytest.mark.benchmark(group="fig14")
def test_fig14_link_failure_recovery(benchmark, experiment_config):
    results = run_once(benchmark, run_failure_recovery, experiment_config,
                       failure_time=FAILURE_TIME, run_duration=RUN_DURATION)
    print()
    print(report.format_recovery(results))
    for name, result in results.items():
        window = [(t, r) for t, r in result.throughput
                  if FAILURE_TIME - 3 <= t <= FAILURE_TIME + 6]
        series = ", ".join(f"{t:.0f}ms={r:.0f}" for t, r in window)
        print(f"  {name} throughput around failure: {series}")

    assert set(results) == {"contra", "hula"}
    for result in results.values():
        assert result.baseline_rate > 0
        # Both systems notice the silent link via probe timeouts.
        assert result.failure_detections >= 1
        # Either the dip was too small to register, or recovery is fast
        # (the paper reports ~1 ms; we allow a few probe periods).
        if not math.isnan(result.dip_delay):
            assert result.recovered
            assert result.recovery_delay <= 5.0
        # Throughput at the end of the run is back at the pre-failure rate.
        tail = [rate for t, rate in result.throughput if t >= RUN_DURATION - 5]
        assert tail and sum(tail) / len(tail) >= 0.9 * result.baseline_rate
