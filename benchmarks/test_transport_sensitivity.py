"""Transport sensitivity — transport mode × load on the asymmetric fat-tree.

Reruns the Figure 13 tail comparison (Contra vs ECMP under an asymmetric
failure) under every host transport mode (fixed window, slow start + AIMD +
fast retransmit, paced) so the sensitivity of the p99 tail — and of the
goodput/retransmit split — to the sender model is tracked alongside the
figure benchmarks.  Drops a ``BENCH_*.json`` wall-clock artifact like every
other benchmark, so ``benchmarks/bench_diff.py`` tracks its trajectory too.
"""

from __future__ import annotations

import pytest

from repro.experiments import report
from repro.experiments.fct import run_transport_sensitivity

from conftest import run_once


@pytest.mark.benchmark(group="transport-sensitivity")
def test_transport_sensitivity(benchmark, experiment_config):
    results = run_once(benchmark, run_transport_sensitivity, experiment_config)
    print()
    print(report.format_transport(results))
    transports = {r.name.split(":")[1] for r in results}
    assert transports == {"fixed", "slowstart", "paced"}
    for r in results:
        # The evaluation-correctness invariant: goodput never exceeds raw
        # delivered throughput, in any mode, at any load.
        assert r.summary["goodput_bytes"] <= r.summary["delivered_bytes"] + 1e-9
        assert r.summary["completed_flows"] > 0
