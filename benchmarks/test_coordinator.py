"""Straggler-skewed sweep benchmark: static 2-shard split vs 2 coordinated workers.

The grid is deliberately skewed: two expensive Contra points sit at *even*
spec positions, so the static round-robin split hands **both** of them to
shard 0 while shard 1 draws only the near-free ECMP points and then idles —
the straggler pathology the coordinator exists to fix.  Draining the same
grid coordinated, the second worker finishes the cheap group and then
*steals* the straggler group's remaining point, so wall-clock drops from
``2 × C`` (the straggler shard's serialized cost) to ``≈ C`` plus the cheap
remainder and one extra policy compile — the predicted ~1.9× against the
asserted ≥1.5× bound.

Point costs are *injected*: each point runs the real simulator (tiny
config — the records are genuine, and both stores are checked to hold the
identical grid) and is then padded to its nominal cost with a sleep.  A
sleep is scheduler-bound, not CPU-bound, so the measured speedup reflects
the coordinator's claim/steal behavior — what this benchmark tracks — and
not how many cores the runner happens to have: two CPU-bound straggler
simulations on a small runner would contend with each other and bury the
scheduling signal in machine-size noise.  The padding also makes the
``BENCH_*.json`` wall-clock essentially deterministic, so the cross-commit
``bench_diff`` trajectory isolates regressions in the coordinator's own
overhead (lease I/O, claim scans, poll loops).
"""

from __future__ import annotations

import json
import multiprocessing
import time

from repro.experiments.config import ExperimentConfig
from repro.experiments.coordinator import CoordinatedBackend
from repro.experiments.results import ResultsStore, ShardedBackend
from repro.experiments.runner import (
    RunContext,
    ScenarioSpec,
    SerialBackend,
    TopologySpec,
)

from conftest import run_once, write_bench_artifact

TINY = ExperimentConfig(workload_duration=1.5, run_duration=20.0, loads=(0.4,),
                        websearch_scale=0.05, cache_scale=0.2)

#: Nominal per-point cost padding (seconds): the Contra points are the
#: stragglers, the ECMP points are near-free filler.
PAD_S = {"contra": 3.0, "ecmp": 0.05}


def _topology() -> TopologySpec:
    return TopologySpec("fattree", k=4, capacity=TINY.host_capacity,
                        oversubscription=TINY.oversubscription)


def straggler_specs() -> list:
    """Four points, the expensive ones at even positions.

    Round-robin 2-sharding assigns positions 0 and 2 — both Contra
    stragglers — to shard 0, and the two cheap ECMP points to shard 1.
    """
    expensive = [
        ScenarioSpec(name=f"straggler:contra-{seed}", system="contra",
                     topology=_topology(), config=TINY,
                     workload="web_search", load=0.4, seed=seed,
                     stop_after_completion=True)
        for seed in (1, 2)
    ]
    cheap = [
        ScenarioSpec(name=f"straggler:ecmp-{seed}", system="ecmp",
                     topology=_topology(), config=TINY,
                     workload="web_search", load=0.4, seed=seed,
                     stop_after_completion=True)
        for seed in (1, 2)
    ]
    return [expensive[0], cheap[0], expensive[1], cheap[1]]


class PaddedSerialBackend(SerialBackend):
    """Real simulation results, padded to each point's nominal cost."""

    def run_iter_timed(self, specs):
        for spec, (result, wall_s) in zip(specs, super().run_iter_timed(specs)):
            pad = PAD_S[spec.system]
            time.sleep(pad)
            yield result, wall_s + pad


def _static_worker(index: int, specs, directory) -> None:
    ShardedBackend(ResultsStore(directory, index, 2),
                   inner=PaddedSerialBackend()).run(specs)


def _coordinated_worker(owner: str, specs, directory) -> None:
    CoordinatedBackend(directory, inner=PaddedSerialBackend(RunContext()),
                       owner=owner).drain(specs)


def _run_two(target, jobs) -> float:
    """Fork two workers, wait for both, return the concurrent wall-clock."""
    ctx = multiprocessing.get_context("fork")
    workers = [ctx.Process(target=target, args=args) for args in jobs]
    started = time.perf_counter()
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    wall = time.perf_counter() - started
    for worker in workers:
        assert worker.exitcode == 0, f"worker died with {worker.exitcode}"
    return wall


def _run_straggler_showdown(static_dir, coordinated_dir) -> dict:
    specs = straggler_specs()
    static_wall = _run_two(_static_worker,
                           [(0, specs, static_dir), (1, specs, static_dir)])
    coordinated_wall = _run_two(
        _coordinated_worker,
        [("bench-w0", specs, coordinated_dir),
         ("bench-w1", specs, coordinated_dir)])
    stolen = sum(
        json.loads(path.read_text()).get("stolen", 0)
        for path in coordinated_dir.glob("worker-*.meta.json"))
    return {
        "static_wall_s": round(static_wall, 4),
        "coordinated_wall_s": round(coordinated_wall, 4),
        "speedup": round(static_wall / coordinated_wall, 4),
        "stolen": stolen,
    }


def test_coordinated_drain_beats_static_split(benchmark, tmp_path):
    static_dir = tmp_path / "static"
    coordinated_dir = tmp_path / "coordinated"
    outcome = run_once(benchmark, _run_straggler_showdown,
                       static_dir, coordinated_dir)

    # Identity first: both stores hold the identical full grid.
    specs = straggler_specs()
    static_loaded = ResultsStore(static_dir).load()
    coordinated_loaded = ResultsStore(coordinated_dir).load()
    assert set(static_loaded) == set(coordinated_loaded)
    assert len(static_loaded) == len(specs)
    for key, result in static_loaded.items():
        assert coordinated_loaded[key].summary == result.summary

    # The perf claim: dynamic stealing beats the straggler shard by ≥1.5×.
    assert outcome["speedup"] >= 1.5, (
        f"coordinated drain only {outcome['speedup']:.2f}x faster than the "
        f"static split (static {outcome['static_wall_s']:.1f}s, "
        f"coordinated {outcome['coordinated_wall_s']:.1f}s)")

    write_bench_artifact("test_coordinated_drain_beats_static_split",
                         outcome["static_wall_s"] + outcome["coordinated_wall_s"],
                         extra=outcome)
    print(f"\nstatic 2-shard split : {outcome['static_wall_s']:.2f} s")
    print(f"2 coordinated workers: {outcome['coordinated_wall_s']:.2f} s "
          f"({outcome['speedup']:.2f}x, {outcome['stolen']} steal(s))")
