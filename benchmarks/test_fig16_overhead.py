"""Figure 16 and §6.5 — traffic overhead normalised to ECMP, and loop traffic.

The paper reports Contra adding ~0.79% traffic over ECMP (probes + per-packet
tags) and ~0.44% over Hula at 10% and 60% load, and that only ~0.026% of
traffic ever experienced a transient loop.  The simulator's links are two
orders of magnitude slower than 10 Gbps hardware, so the *raw* probe/data
ratio is proportionally larger; the harness prints both the raw and the
capacity-corrected normalisation (see DESIGN.md §4) and checks the ordering
and the loop fraction.
"""

from __future__ import annotations

import pytest

from repro.experiments import report
from repro.experiments.overhead import run_overhead_experiment

from conftest import run_once


@pytest.mark.benchmark(group="fig16")
def test_fig16_traffic_overhead(benchmark, experiment_config):
    points = run_once(benchmark, run_overhead_experiment, experiment_config,
                      loads=(0.1, 0.6))
    print()
    print(report.format_overhead(points))

    by_key = {(p.workload, p.load, p.system): p for p in points}
    workloads = {p.workload for p in points}
    for workload in workloads:
        for load in (0.1, 0.6):
            ecmp = by_key[(workload, load, "ecmp")]
            hula = by_key[(workload, load, "hula")]
            contra = by_key[(workload, load, "contra")]
            # ECMP is the baseline; Hula adds probes; Contra adds a bit more
            # (it also probes "down" paths and tags packets) — Figure 16 order.
            assert ecmp.normalized_vs_ecmp == pytest.approx(1.0)
            assert 1.0 <= hula.normalized_vs_ecmp <= contra.normalized_vs_ecmp
            # Capacity-corrected overhead stays in the few-percent regime the
            # paper reports (<= ~5% even in the quick preset).
            assert contra.normalized_vs_ecmp_scaled < 1.30
            # §6.5: transient loops affect a vanishing fraction of traffic.
            assert contra.loop_fraction < 0.01
