"""Figure 9 — compiler scalability: compilation time vs topology size.

The paper sweeps fat-trees (20–500 switches) and random networks (100–500
switches) under three policies (MU, WP, CA) and reports compile time in
seconds, growing roughly linearly and staying in single-digit seconds.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import report
from repro.experiments.scalability import run_scalability_sweep

from conftest import run_once

_FULL = os.environ.get("CONTRA_EXPERIMENT_PRESET", "quick") in ("default", "full")
FATTREE_SIZES = (20, 125, 245, 405, 500) if _FULL else (20, 125, 245)
RANDOM_SIZES = (100, 200, 300, 400, 500) if _FULL else (100, 200, 300)


@pytest.mark.benchmark(group="fig09")
def test_fig09a_fattree_compile_time(benchmark):
    points = run_once(benchmark, run_scalability_sweep,
                      families=("fattree",), fattree_sizes=FATTREE_SIZES)
    print()
    print(report.format_scalability(points, title="Figure 9a: fat-tree compile time"))
    # Shape checks mirroring the paper: seconds-scale, growing with size,
    # regex policies costlier than MU.
    by_key = {(p.size, p.policy): p for p in points}
    largest = max(FATTREE_SIZES)
    smallest = min(FATTREE_SIZES)
    assert by_key[(largest, "MU")].compile_time_s < 30.0
    assert by_key[(largest, "MU")].compile_time_s > by_key[(smallest, "MU")].compile_time_s
    assert by_key[(largest, "WP")].compile_time_s >= by_key[(largest, "MU")].compile_time_s


@pytest.mark.benchmark(group="fig09")
def test_fig09b_random_network_compile_time(benchmark):
    points = run_once(benchmark, run_scalability_sweep,
                      families=("random",), random_sizes=RANDOM_SIZES)
    print()
    print(report.format_scalability(points, title="Figure 9b: random-network compile time"))
    by_key = {(p.size, p.policy): p for p in points}
    largest, smallest = max(RANDOM_SIZES), min(RANDOM_SIZES)
    assert by_key[(largest, "MU")].compile_time_s > by_key[(smallest, "MU")].compile_time_s
    assert all(p.compile_time_s < 60.0 for p in points)
