"""Compare BENCH_*.json wall-clock artifacts across commits.

The per-figure benchmark harness (see ``benchmarks/conftest.py``) drops one
``BENCH_<name>.json`` file per benchmark with the measured wall-clock.  CI
archives them; this tool diffs two sets of artifacts — a baseline and a
current run — and exits nonzero when any benchmark regressed by more than
the threshold (default 10% wall-clock, the ROADMAP "Perf trajectory" gate).

Usage::

    python benchmarks/bench_diff.py BASELINE CURRENT [--threshold 0.10]

``BASELINE`` and ``CURRENT`` are each either a single ``BENCH_*.json`` file
or a directory of them (matched by file name).  Benchmarks present on only
one side are reported but never fail the comparison — a renamed or new
benchmark must not mask a regression signal with a hard error.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

__all__ = ["load_artifacts", "diff_artifacts", "format_diff", "main", "BenchDelta"]

DEFAULT_THRESHOLD = 0.10


@dataclass
class BenchDelta:
    """One benchmark's wall-clock comparison between two artifact sets."""

    name: str
    baseline_s: Optional[float]         # None: benchmark only in the current set
    current_s: Optional[float]          # None: benchmark only in the baseline set
    threshold: float

    @property
    def ratio(self) -> Optional[float]:
        if self.baseline_s is None or self.current_s is None or self.baseline_s <= 0:
            return None
        return self.current_s / self.baseline_s

    @property
    def regressed(self) -> bool:
        ratio = self.ratio
        return ratio is not None and ratio > 1.0 + self.threshold

    @property
    def status(self) -> str:
        if self.baseline_s is None:
            return "new"
        if self.current_s is None:
            return "removed"
        if self.regressed:
            return "REGRESSED"
        if self.ratio is not None and self.ratio < 1.0 - self.threshold:
            return "improved"
        return "ok"


def load_artifacts(path: Path) -> Dict[str, dict]:
    """Load ``BENCH_*.json`` payloads keyed by benchmark name.

    ``path`` may be one artifact file or a directory containing them; files
    that are not valid JSON objects with a numeric ``wall_s`` are skipped
    (artifact directories also hold pytest-benchmark output and logs).
    """
    path = Path(path)
    files = sorted(path.glob("BENCH_*.json")) if path.is_dir() else [path]
    artifacts: Dict[str, dict] = {}
    for file in files:
        try:
            payload = json.loads(file.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        if not isinstance(payload, dict):
            continue
        wall = payload.get("wall_s")
        if not isinstance(wall, (int, float)):
            continue
        artifacts[str(payload.get("benchmark", file.stem))] = payload
    return artifacts


def diff_artifacts(baseline: Dict[str, dict], current: Dict[str, dict],
                   threshold: float = DEFAULT_THRESHOLD) -> List[BenchDelta]:
    """Pair up both artifact sets by benchmark name, sorted for stable output."""
    deltas = []
    for name in sorted(set(baseline) | set(current)):
        deltas.append(BenchDelta(
            name=name,
            baseline_s=baseline[name]["wall_s"] if name in baseline else None,
            current_s=current[name]["wall_s"] if name in current else None,
            threshold=threshold,
        ))
    return deltas


def format_diff(deltas: List[BenchDelta]) -> str:
    lines = [f"{'benchmark':40s} {'baseline_s':>10s} {'current_s':>10s} "
             f"{'ratio':>7s} status"]
    for delta in deltas:
        baseline = f"{delta.baseline_s:.3f}" if delta.baseline_s is not None else "-"
        current = f"{delta.current_s:.3f}" if delta.current_s is not None else "-"
        ratio = f"{delta.ratio:.2f}x" if delta.ratio is not None else "-"
        lines.append(f"{delta.name:40s} {baseline:>10s} {current:>10s} "
                     f"{ratio:>7s} {delta.status}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json wall-clock artifacts; exit 1 on regression.")
    parser.add_argument("baseline", type=Path,
                        help="baseline BENCH_*.json file or directory")
    parser.add_argument("current", type=Path,
                        help="current BENCH_*.json file or directory")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="relative wall-clock regression that fails the diff "
                             "(default: 0.10 = 10%%)")
    args = parser.parse_args(argv)

    baseline = load_artifacts(args.baseline)
    current = load_artifacts(args.current)
    if not baseline:
        print(f"no baseline artifacts under {args.baseline}; nothing to compare")
        return 0
    if not current:
        print(f"no current artifacts under {args.current}; nothing to compare", file=sys.stderr)
        return 2

    deltas = diff_artifacts(baseline, current, threshold=args.threshold)
    print(format_diff(deltas))
    regressions = [d for d in deltas if d.regressed]
    if regressions:
        names = ", ".join(d.name for d in regressions)
        print(f"\nFAIL: {len(regressions)} benchmark(s) regressed "
              f">{args.threshold:.0%} wall-clock: {names}", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
