"""Figure 15 — average FCT vs load on the Abilene topology.

Shortest-path routing vs Contra (MU) vs SPAIN with four fixed sender/receiver
pairs.  The paper's shape: static shortest paths perform worst once the shared
links congest, SPAIN's static multipath helps, and Contra's utilization-aware
routing does best.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments import report
from repro.experiments.fct import run_abilene_fct

from conftest import run_once


def _check_shape(points, workload):
    by_key = {(p.load, p.system): p for p in points if p.workload == workload}
    loads = sorted({load for load, _system in by_key})
    for point in by_key.values():
        assert point.completed > 0
        assert not math.isnan(point.avg_fct_ms)
    top = max(loads)
    sp = by_key[(top, "shortest-path")]
    contra = by_key[(top, "contra")]
    # At the highest load Contra does not lose to static shortest paths.
    assert contra.avg_fct_ms <= sp.avg_fct_ms * 1.05


@pytest.mark.benchmark(group="fig15")
def test_fig15a_abilene_web_search(benchmark, experiment_config):
    config = experiment_config.scaled(1.0, loads=tuple(
        load for load in experiment_config.loads) + ((0.9,) if 0.9 not in experiment_config.loads else ()))
    points = run_once(benchmark, run_abilene_fct, config, workloads=("web_search",))
    print()
    print(report.format_fct(points, "Figure 15a: Abilene, web search workload"))
    _check_shape(points, "web_search")


@pytest.mark.benchmark(group="fig15")
def test_fig15b_abilene_cache(benchmark, experiment_config):
    config = experiment_config.scaled(1.0, loads=tuple(
        load for load in experiment_config.loads) + ((0.9,) if 0.9 not in experiment_config.loads else ()))
    points = run_once(benchmark, run_abilene_fct, config, workloads=("cache",))
    print()
    print(report.format_fct(points, "Figure 15b: Abilene, cache workload"))
    _check_shape(points, "cache")
