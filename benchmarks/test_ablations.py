"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not figures from the paper, but each corresponds to a refinement of §5:
probe period (§5.2), flowlet timeout (§5.3), versioned probes (§5.1) and the
compiler's tag minimisation (§6.1).
"""

from __future__ import annotations

import pytest

from repro.experiments import report
from repro.experiments.ablations import (
    run_flowlet_timeout_ablation,
    run_probe_period_ablation,
    run_tag_minimization_ablation,
    run_versioning_ablation,
)

from conftest import run_once


@pytest.mark.benchmark(group="ablations")
def test_probe_period_ablation(benchmark, experiment_config):
    points = run_once(benchmark, run_probe_period_ablation, experiment_config,
                      periods=(0.128, 0.256, 1.024), load=0.6)
    print()
    print(report.format_ablation(points, "Probe period ablation (§5.2)"))
    assert all(p.completed > 0 for p in points)
    by_period = {p.value: p for p in points}
    # Longer probe periods send fewer probes, hence lower control overhead.
    assert by_period[1.024].overhead_ratio < by_period[0.128].overhead_ratio


@pytest.mark.benchmark(group="ablations")
def test_flowlet_timeout_ablation(benchmark, experiment_config):
    points = run_once(benchmark, run_flowlet_timeout_ablation, experiment_config,
                      timeouts=(0.05, 0.2, 1.6), load=0.6)
    print()
    print(report.format_ablation(points, "Flowlet timeout ablation (§5.3)"))
    assert all(p.completed > 0 for p in points)


@pytest.mark.benchmark(group="ablations")
def test_versioning_ablation(benchmark, experiment_config):
    points = run_once(benchmark, run_versioning_ablation, experiment_config, load=0.6)
    print()
    print(report.format_ablation(points, "Versioned vs unversioned probes (§5.1)"))
    assert {p.value for p in points} == {0.0, 1.0}
    versioned = next(p for p in points if p.value == 1.0)
    unversioned = next(p for p in points if p.value == 0.0)
    assert versioned.completed / versioned.flows > 0.9
    # The unversioned variant never delivers *more* traffic than the versioned
    # protocol; loops/stale entries can only hurt it.
    assert unversioned.completed <= versioned.completed + 2


@pytest.mark.benchmark(group="ablations")
def test_tag_minimization_ablation(benchmark):
    points = run_once(benchmark, run_tag_minimization_ablation, sizes=(20, 125))
    print()
    rows = [(p.minimize_tags, p.pg_nodes, p.max_tags_per_switch,
             round(p.max_state_kb, 2), round(p.compile_time_s, 4)) for p in points]
    print(report.format_table(
        ("minimize_tags", "pg_nodes", "max_tags/switch", "state_kB", "compile_s"),
        rows, title="Tag minimisation ablation (§6.1 optimisation)"))
    for size_group in (points[:2], points[2:]):
        minimized = next(p for p in size_group if p.minimize_tags)
        raw = next(p for p in size_group if not p.minimize_tags)
        assert minimized.max_tags_per_switch <= raw.max_tags_per_switch
        assert minimized.max_state_kb <= raw.max_state_kb
