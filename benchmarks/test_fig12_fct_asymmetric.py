"""Figure 12 — average FCT vs load on an asymmetric fat-tree (failed agg–core link).

The paper's shape: with one aggregation–core link down, ECMP keeps hashing
flows onto the missing capacity and suffers heavy loss beyond ~50% load, while
Contra and Hula route around the failure and degrade only mildly relative to
the symmetric topology.
"""

from __future__ import annotations

import pytest

from repro.experiments import report
from repro.experiments.fct import run_fattree_fct

from conftest import run_once


def _check_shape(points, workload):
    by_key = {(p.load, p.system): p for p in points if p.workload == workload}
    loads = sorted({load for load, _system in by_key})
    top = max(loads)
    ecmp, contra, hula = (by_key[(top, s)] for s in ("ecmp", "contra", "hula"))
    # ECMP keeps sending into the failed link: more drops, fewer completions.
    assert ecmp.drops > contra.drops
    assert contra.completed >= ecmp.completed
    assert hula.completed >= ecmp.completed
    # The adaptive systems still finish (almost) everything.
    assert contra.completed / contra.flows > 0.9
    assert hula.completed / hula.flows > 0.9


@pytest.mark.benchmark(group="fig12")
def test_fig12a_web_search_fct_asymmetric(benchmark, experiment_config):
    points = run_once(benchmark, run_fattree_fct, experiment_config,
                      workloads=("web_search",), asymmetric=True)
    print()
    print(report.format_fct(points, "Figure 12a: asymmetric fat-tree, web search workload"))
    _check_shape(points, "web_search")


@pytest.mark.benchmark(group="fig12")
def test_fig12b_cache_fct_asymmetric(benchmark, experiment_config):
    points = run_once(benchmark, run_fattree_fct, experiment_config,
                      workloads=("cache",), asymmetric=True)
    print()
    print(report.format_fct(points, "Figure 12b: asymmetric fat-tree, cache workload"))
    _check_shape(points, "cache")
