"""Probe-plane microbenchmark — the control-plane hot path in isolation.

No data traffic at all: a Contra fabric simply floods its periodic probe
waves for a fixed number of rounds.  This isolates exactly the path the
batched probe-plane pipeline optimizes (engine batch lane → coalesced link
delivery → vectorized ``on_probe_batch``), so the ``BENCH_*.json`` artifact
it drops tracks that win — and any future regression of it — independently
of workload noise in the figure benchmarks.

The ``*_vectorized`` variants run the same floods with the array probe
plane (``probe_vectorize=True``) and pin its measured cost in the
``bench_diff`` trajectory next to the scalar baselines.  The array plane is
byte-identical but — by measurement — a net slowdown at fat-tree wave
sizes (see ARCHITECTURE.md, "Array probe plane"), which is exactly why its
wall-clock is tracked as data rather than asserted as a win: if the wave
sizes or the judge's economics ever change, the trajectory shows it.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import compile_policy
from repro.experiments.runner import datacenter_policy
from repro.nputil import np
from repro.protocol import ContraSystem
from repro.simulator import Network, StatsCollector
from repro.topology.fattree import fattree

from conftest import run_once

#: Fabric arity and round count sized so the benchmark exercises a few
#: hundred thousand probe hops in seconds (CI-affordable, still far above
#: timer noise).
PROBE_PLANE_K = 8
PROBE_PLANE_ROUNDS = 20
PROBE_PERIOD_MS = 0.256

#: The k=16 variant floods ~1.5M probe hops in a few rounds: waves there
#: are large enough (tens of probes per (link, tick) run) that the array
#: probe plane actually judges them, which the k=8 flood barely exercises.
PROBE_PLANE_K16 = 16
PROBE_PLANE_K16_ROUNDS = 3


def run_probe_plane(k: int = PROBE_PLANE_K, rounds: int = PROBE_PLANE_ROUNDS,
                    probe_period: float = PROBE_PERIOD_MS,
                    probe_vectorize: "bool | None" = None) -> Network:
    """Run ``rounds`` probe periods of a flow-less Contra fat-tree."""
    topology = fattree(k, capacity=100.0, oversubscription=4.0)
    compiled = compile_policy(datacenter_policy(), topology)
    system = ContraSystem(compiled, probe_period=probe_period,
                          probe_vectorize=probe_vectorize)
    network = Network(topology, system, stats=StatsCollector())
    # Run just past the final round so its whole wave is processed.
    network.run(probe_period * (rounds + 0.5))
    return network


def _assert_flood_converged(network: Network) -> None:
    stats = network.stats
    assert stats.probe_bytes > 0
    assert stats.data_bytes == 0 and stats.ack_bytes == 0
    # The flood must have converged: every switch knows a next hop towards
    # every probe destination (the edge switches).
    destinations = network.destination_switches()
    for switch_name, switch in network.switches.items():
        for destination in destinations:
            if destination == switch_name:
                continue
            assert switch.routing.best_next_hop(destination) is not None, \
                f"{switch_name} has no route towards {destination}"


@pytest.mark.benchmark(group="probe-plane")
def test_probe_plane_flood(benchmark):
    network = run_once(benchmark, run_probe_plane)
    _assert_flood_converged(network)
    print()
    print(f"probe plane: {PROBE_PLANE_ROUNDS} rounds on k={PROBE_PLANE_K}, "
          f"{network.stats.total_packets} probe transmissions, "
          f"{network.sim.events_processed} engine events")


@pytest.mark.benchmark(group="probe-plane")
def test_probe_plane_flood_k16(benchmark):
    network = run_once(benchmark, run_probe_plane,
                       k=PROBE_PLANE_K16, rounds=PROBE_PLANE_K16_ROUNDS)
    _assert_flood_converged(network)
    print()
    print(f"probe plane: {PROBE_PLANE_K16_ROUNDS} rounds on "
          f"k={PROBE_PLANE_K16}, {network.stats.total_packets} probe "
          f"transmissions, {network.sim.events_processed} engine events")


@pytest.mark.benchmark(group="probe-plane")
@pytest.mark.skipif(np is None, reason="array probe plane requires numpy")
def test_probe_plane_flood_vectorized(benchmark):
    network = run_once(benchmark, run_probe_plane, probe_vectorize=True)
    _assert_flood_converged(network)


@pytest.mark.benchmark(group="probe-plane")
@pytest.mark.skipif(np is None, reason="array probe plane requires numpy")
def test_probe_plane_flood_k16_vectorized(benchmark):
    network = run_once(benchmark, run_probe_plane, k=PROBE_PLANE_K16,
                       rounds=PROBE_PLANE_K16_ROUNDS, probe_vectorize=True)
    _assert_flood_converged(network)
