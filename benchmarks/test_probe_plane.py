"""Probe-plane microbenchmark — the control-plane hot path in isolation.

No data traffic at all: a Contra fabric simply floods its periodic probe
waves for a fixed number of rounds.  This isolates exactly the path the
batched probe-plane pipeline optimizes (engine batch lane → coalesced link
delivery → vectorized ``on_probe_batch``), so the ``BENCH_*.json`` artifact
it drops tracks that win — and any future regression of it — independently
of workload noise in the figure benchmarks.
"""

from __future__ import annotations

import pytest

from repro.core.compiler import compile_policy
from repro.experiments.runner import datacenter_policy
from repro.protocol import ContraSystem
from repro.simulator import Network, StatsCollector
from repro.topology.fattree import fattree

from conftest import run_once

#: Fabric arity and round count sized so the benchmark exercises a few
#: hundred thousand probe hops in seconds (CI-affordable, still far above
#: timer noise).
PROBE_PLANE_K = 8
PROBE_PLANE_ROUNDS = 20
PROBE_PERIOD_MS = 0.256


def run_probe_plane(k: int = PROBE_PLANE_K, rounds: int = PROBE_PLANE_ROUNDS,
                    probe_period: float = PROBE_PERIOD_MS) -> Network:
    """Run ``rounds`` probe periods of a flow-less Contra fat-tree."""
    topology = fattree(k, capacity=100.0, oversubscription=4.0)
    compiled = compile_policy(datacenter_policy(), topology)
    system = ContraSystem(compiled, probe_period=probe_period)
    network = Network(topology, system, stats=StatsCollector())
    # Run just past the final round so its whole wave is processed.
    network.run(probe_period * (rounds + 0.5))
    return network


@pytest.mark.benchmark(group="probe-plane")
def test_probe_plane_flood(benchmark):
    network = run_once(benchmark, run_probe_plane)
    stats = network.stats
    assert stats.probe_bytes > 0
    assert stats.data_bytes == 0 and stats.ack_bytes == 0
    # The flood must have converged: every switch knows a next hop towards
    # every probe destination (the edge switches).
    destinations = network.destination_switches()
    for switch_name, switch in network.switches.items():
        for destination in destinations:
            if destination == switch_name:
                continue
            assert switch.routing.best_next_hop(destination) is not None, \
                f"{switch_name} has no route towards {destination}"
    print()
    print(f"probe plane: {PROBE_PLANE_ROUNDS} rounds on k={PROBE_PLANE_K}, "
          f"{stats.total_packets} probe transmissions, "
          f"{network.sim.events_processed} engine events")
