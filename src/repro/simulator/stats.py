"""Statistics collection for simulation runs.

One :class:`StatsCollector` instance is shared by every link, host and switch
of a run.  It gathers exactly the quantities the paper's evaluation reports:

* flow completion times (Figures 11, 12, 15),
* queue-length samples and their CDF (Figure 13),
* delivered goodput over time (Figure 14),
* traffic volume split into data / ACK / probe / tag-overhead bytes
  (Figure 16), and
* loop and drop counters (§6.5).

Delivery accounting separates **goodput** from raw throughput: hosts flag
retransmitted duplicate segments (first-time delivery is deduplicated by
(flow, seq) at the receiver), so ``goodput_bytes`` and the Figure 14 series
count each segment once while ``delivered_bytes`` keeps the raw total
including duplicates.  The invariant ``goodput_bytes <= delivered_bytes``
holds in every run; the two only differ under loss.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.nputil import mean as _mean, percentile_linear as _percentile
from repro.simulator.accumulators import (HyperLogLog, ReservoirSampler,
                                          StreamingHistogram)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.link import SimLink
    from repro.simulator.packet import Packet

__all__ = ["FlowRecord", "StatsCollector"]


@dataclass
class FlowRecord:
    """Lifecycle record of one flow."""

    flow_id: int
    src_host: str
    dst_host: str
    size_packets: int
    start_time: float
    completion_time: Optional[float] = None
    retransmissions: int = 0
    #: Retransmissions triggered by triple duplicate ACKs (subset of
    #: :attr:`retransmissions`; always 0 under the "fixed" transport).
    fast_retransmits: int = 0
    #: Congestion-window summary reported by the sender at completion
    #: (0.0 while in flight or when the run ended first).
    final_cwnd: float = 0.0
    max_cwnd: float = 0.0

    @property
    def completed(self) -> bool:
        return self.completion_time is not None

    @property
    def fct(self) -> Optional[float]:
        """Flow completion time in milliseconds (None while in flight)."""
        if self.completion_time is None:
            return None
        return self.completion_time - self.start_time


class StatsCollector:
    """Aggregates measurements across one simulation run."""

    def __init__(self, throughput_bin_ms: float = 1.0,
                 record_paths: bool = False, path_sample_limit: int = 200_000,
                 fct_percentiles: Sequence[float] = (),
                 flow_sketch: bool = False):
        self.flows: Dict[int, FlowRecord] = {}
        self.completed_count = 0
        self._completion_target = -1
        self._completion_callback = None
        #: Streaming queue-length accumulator: O(1) per sample, bounded memory
        #: (queue lengths are integers bounded by the buffer size), exact
        #: percentiles.
        self.queue_histogram = StreamingHistogram()
        self.throughput_bin_ms = throughput_bin_ms
        #: Per-bin *goodput* (first-time deliveries only; duplicates excluded).
        self._goodput_bytes_per_bin: Dict[int, float] = defaultdict(float)

        # Delivery accounting: raw payload bytes reaching their destination
        # (including go-back-N duplicates) vs goodput (unique seqs only).
        self.delivered_bytes = 0.0
        self.goodput_bytes = 0.0
        self.duplicate_deliveries = 0

        #: When enabled, switches append their name to every data packet and
        #: delivered paths are sampled here (used for the §6.5 loop fraction
        #: and by the policy-compliance tests).  A seeded reservoir keeps the
        #: sample uniform over the whole run in bounded memory.
        self.record_paths = record_paths
        self._path_reservoir = ReservoirSampler(path_sample_limit)

        # Traffic accounting (bytes on the wire across all links).
        self.data_bytes = 0.0
        self.ack_bytes = 0.0
        self.probe_bytes = 0.0
        self.tag_overhead_bytes = 0.0
        self.total_packets = 0

        # Data-plane events.
        self.drops = 0
        self.probe_drops = 0
        self.loop_detections = 0
        self.looped_packets = 0
        self.data_packets_forwarded = 0
        self.flowlet_expirations = 0
        self.failure_detections = 0

        # Opt-in extensions (both default off, keeping the historical summary
        # key set byte-identical; see :meth:`_extension_summary`).
        #: Extra FCT percentiles to report, e.g. ``(50.0,)`` adds
        #: ``"p50_fct_ms"``.
        self.fct_percentiles: Tuple[float, ...] = tuple(fct_percentiles)
        #: Per-switch flow-cardinality HyperLogLog sketches (the fluid-scale
        #: telemetry): exact per-switch flow sets would cost O(flows) memory
        #: per switch at 10^6 flows, the sketch is constant-size.
        self.flow_sketch = flow_sketch
        self._flow_sketches: Dict[str, HyperLogLog] = {}

    # ------------------------------------------------------- sketch extension

    def record_switch_flow(self, switch: str, flow_id: int) -> None:
        """Offer a (switch, flow) observation to the cardinality sketch.

        No-op unless ``flow_sketch`` was requested; callers may invoke it
        unconditionally on every flow placement.
        """
        if not self.flow_sketch:
            return
        sketch = self._flow_sketches.get(switch)
        if sketch is None:
            sketch = self._flow_sketches[switch] = HyperLogLog()
        sketch.add(flow_id)

    def flow_sketch_estimates(self) -> Dict[str, float]:
        """Per-switch distinct-flow estimates, in sorted switch order."""
        return {name: self._flow_sketches[name].estimate()
                for name in sorted(self._flow_sketches)}

    def _extension_summary(self) -> Dict[str, float]:
        """Summary keys contributed by the opt-in extensions.

        Empty when both extensions are off, so the default summary stays
        byte-identical to the historical key set.
        """
        extras: Dict[str, float] = {}
        for q in self.fct_percentiles:
            extras[f"p{q:g}_fct_ms"] = self.percentile_fct(q)
        if self.flow_sketch:
            estimates = list(self.flow_sketch_estimates().values())
            extras["flow_sketch_switches"] = len(estimates)
            extras["flow_sketch_max_flows"] = max(estimates) if estimates else 0.0
            extras["flow_sketch_mean_flows"] = _mean(estimates) if estimates else 0.0
        return extras

    # ------------------------------------------------------------------ flows

    def register_flow(self, flow_id: int, src_host: str, dst_host: str,
                      size_packets: int, start_time: float) -> FlowRecord:
        record = FlowRecord(flow_id, src_host, dst_host, size_packets, start_time)
        self.flows[flow_id] = record
        return record

    def complete_flow(self, flow_id: int, time: float) -> None:
        record = self.flows.get(flow_id)
        if record is not None and record.completion_time is None:
            record.completion_time = time
            self.completed_count += 1
            if self.completed_count == self._completion_target and \
                    self._completion_callback is not None:
                self._completion_callback()

    def watch_completion(self, target: int, callback) -> None:
        """Invoke ``callback`` once ``target`` flows have completed.

        The FCT experiments use this to stop a run as soon as its last flow
        finishes instead of simulating the remaining probe-only tail.
        """
        self._completion_target = target
        self._completion_callback = callback

    def record_retransmission(self, flow_id: int, fast: bool = False) -> None:
        record = self.flows.get(flow_id)
        if record is not None:
            record.retransmissions += 1
            if fast:
                record.fast_retransmits += 1

    def record_transport(self, flow_id: int, final_cwnd: float, max_cwnd: float) -> None:
        """Store the sender's congestion-window summary (called at completion)."""
        record = self.flows.get(flow_id)
        if record is not None:
            record.final_cwnd = final_cwnd
            record.max_cwnd = max_cwnd

    def completed_flows(self) -> List[FlowRecord]:
        return [f for f in self.flows.values() if f.completed]

    def flow_completion_times(self) -> List[float]:
        return [f.fct for f in self.flows.values() if f.completed]

    def average_fct(self) -> float:
        """Mean FCT over completed flows (ms); NaN if nothing completed."""
        fcts = self.flow_completion_times()
        return _mean(fcts) if fcts else float("nan")

    def percentile_fct(self, percentile: float) -> float:
        fcts = self.flow_completion_times()
        return _percentile(fcts, percentile) if fcts else float("nan")

    def completion_ratio(self) -> float:
        """Fraction of flows that finished before the run ended."""
        if not self.flows:
            return 1.0
        return len(self.completed_flows()) / len(self.flows)

    # ------------------------------------------------------------------ links

    def record_transmission(self, link: "SimLink", packet: "Packet") -> None:
        self.total_packets += 1
        kind = packet.kind
        if kind == "data":
            self.data_bytes += packet.size_bytes
            self.tag_overhead_bytes += packet.extra_header_bits * 0.125
        elif kind == "ack":
            self.ack_bytes += packet.wire_bytes
        else:
            self.probe_bytes += packet.wire_bytes

    def record_drop(self, link: "SimLink", packet: "Packet") -> None:
        if packet.kind == "probe":
            self.probe_drops += 1
        else:
            self.drops += 1

    def record_switch_drop(self, packet: "Packet") -> None:
        """A switch discarded a packet it could not forward (TTL expiry, no
        route, no port).  Routed through a method — rather than the switches
        bumping :attr:`drops` inline — so the sanitizer's conservation ledger
        can observe every drop source."""
        self.drops += 1

    def record_queue_length(self, link: "SimLink", length: int) -> None:
        self.queue_histogram.record(length)

    def queue_length_cdf(self, points: Sequence[float] = (0.5, 0.9, 0.99, 1.0)) -> Dict[float, float]:
        """Queue length at the requested CDF points (packets)."""
        return {p: self.queue_histogram.percentile(100.0 * p) for p in points}

    # ------------------------------------------------------------- throughput

    def record_delivery(self, packet: "Packet", time: float,
                        duplicate: bool = False) -> None:
        """Called by hosts when a data packet reaches its destination.

        ``duplicate`` marks a retransmitted segment the receiver had already
        seen: it counts towards raw :attr:`delivered_bytes` but never towards
        :attr:`goodput_bytes` or the Figure 14 series — delivered work must
        not be inflated by go-back-N duplicates in exactly the loss-heavy
        regimes the comparisons care about.
        """
        self.delivered_bytes += packet.size_bytes
        if duplicate:
            self.duplicate_deliveries += 1
        else:
            self.goodput_bytes += packet.size_bytes
            bin_index = int(time / self.throughput_bin_ms)
            self._goodput_bytes_per_bin[bin_index] += packet.size_bytes
        if self.record_paths and packet.path_trace is not None:
            self._path_reservoir.offer((packet.flow_id, tuple(packet.path_trace)))

    @property
    def delivered_paths(self) -> List[Tuple[int, Tuple[str, ...]]]:
        """Sampled (flow id, switch path) pairs of delivered data packets."""
        return self._path_reservoir.samples

    def throughput_series(self) -> List[Tuple[float, float]]:
        """(time ms, delivered Gbps-equivalent) *goodput* samples, one per bin.

        Bins count first-time deliveries only — a retransmitted duplicate is
        not delivered work, and counting it would inflate the baselines in
        lossy regimes.  The "Gbps" unit assumes the scaled convention of 1
        full packet per ms per capacity unit; the absolute numbers are not
        meaningful, the shape around a failure event is (Figure 14).
        """
        if not self._goodput_bytes_per_bin:
            return []
        series = []
        for bin_index in sorted(self._goodput_bytes_per_bin):
            time = bin_index * self.throughput_bin_ms
            bytes_delivered = self._goodput_bytes_per_bin[bin_index]
            # bytes per ms -> packets per ms (one packet == one capacity unit).
            rate = bytes_delivered / 1500.0 / self.throughput_bin_ms
            series.append((time, rate))
        return series

    # --------------------------------------------------------------- overhead

    def total_traffic_bytes(self) -> float:
        return self.data_bytes + self.ack_bytes + self.probe_bytes + self.tag_overhead_bytes

    def overhead_ratio(self) -> float:
        """Probe + tag bytes as a fraction of data bytes."""
        if self.data_bytes == 0:
            return 0.0
        return (self.probe_bytes + self.tag_overhead_bytes) / self.data_bytes

    def loop_fraction(self) -> float:
        """Fraction of forwarded data packets that experienced a loop (§6.5)."""
        if self.data_packets_forwarded == 0:
            return 0.0
        return self.looped_packets / self.data_packets_forwarded

    # ------------------------------------------------------------------ report

    def total_retransmissions(self) -> int:
        return sum(f.retransmissions for f in self.flows.values())

    def total_fast_retransmits(self) -> int:
        return sum(f.fast_retransmits for f in self.flows.values())

    def mean_max_cwnd(self) -> float:
        """Mean peak congestion window over flows that reported one (else 0)."""
        peaks = [f.max_cwnd for f in self.flows.values() if f.max_cwnd > 0]
        return _mean(peaks) if peaks else 0.0

    def per_flow_transport(self) -> List[Dict[str, float]]:
        """Per-flow retransmit/cwnd summaries, in flow-id order."""
        return [
            {
                "flow_id": f.flow_id,
                "retransmissions": f.retransmissions,
                "fast_retransmits": f.fast_retransmits,
                "final_cwnd": f.final_cwnd,
                "max_cwnd": f.max_cwnd,
            }
            for f in sorted(self.flows.values(), key=lambda f: f.flow_id)
        ]

    def summary(self) -> Dict[str, float]:
        """A flat summary dictionary used by the experiment drivers."""
        summary = {
            "flows": len(self.flows),
            "completed_flows": len(self.completed_flows()),
            "completion_ratio": self.completion_ratio(),
            "avg_fct_ms": self.average_fct(),
            "p99_fct_ms": self.percentile_fct(99.0),
            "drops": self.drops,
            "goodput_bytes": self.goodput_bytes,
            "delivered_bytes": self.delivered_bytes,
            "duplicate_deliveries": self.duplicate_deliveries,
            "retransmissions": self.total_retransmissions(),
            "fast_retransmits": self.total_fast_retransmits(),
            "mean_max_cwnd": self.mean_max_cwnd(),
            "data_bytes": self.data_bytes,
            "ack_bytes": self.ack_bytes,
            "probe_bytes": self.probe_bytes,
            "tag_overhead_bytes": self.tag_overhead_bytes,
            "overhead_ratio": self.overhead_ratio(),
            "loop_fraction": self.loop_fraction(),
            "loop_detections": self.loop_detections,
            "flowlet_expirations": self.flowlet_expirations,
            "failure_detections": self.failure_detections,
        }
        summary.update(self._extension_summary())
        return summary
