"""Network assembly: topology + routing system + workload → a runnable simulation.

:class:`Network` wires hosts, switches and directed links together, installs a
routing system (one :class:`~repro.simulator.switchnode.RoutingLogic` per
switch), schedules the workload's flow arrivals, and exposes failure injection
and statistics.  This is the reproduction's stand-in for the paper's ns-3
testbed (DESIGN.md §4).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import SimulationError
from repro.simulator.engine import Simulator
from repro.simulator.flow import TRANSPORT_MODES, Flow
from repro.simulator.host import Host
from repro.simulator.link import SimLink
from repro.simulator.packet import Packet
from repro.simulator.stats import StatsCollector
from repro.simulator.switchnode import RoutingLogic, SwitchNode
from repro.topology.graph import Topology

__all__ = ["RoutingSystem", "Network"]


class RoutingSystem:
    """Factory for per-switch routing logic; one instance per simulation run.

    Subclasses provide :meth:`create_switch_logic`; :meth:`prepare` runs after
    the network is wired (useful for precomputing paths), and :meth:`start`
    after flows are scheduled (useful for kicking off periodic probes).
    """

    name = "routing"

    #: Race-detector hooks (repro.experiments.race).  ``commutable_rounds``
    #: names periodic-round methods whose same-tick relative order is *not*
    #: part of the determinism contract — the race detector may permute
    #: adjacent same-timestamp firings of these, and ``race_rng`` (when
    #: installed) additionally shuffles intra-round iteration orders that are
    #: likewise undocumented.  Both stay inert in normal runs.
    race_rng = None
    commutable_rounds: Tuple[str, ...] = ()

    def prepare(self, network: "Network") -> None:
        """Called once after all nodes and links exist."""

    def create_switch_logic(self, switch: str) -> RoutingLogic:
        raise NotImplementedError

    def start(self, network: "Network") -> None:
        """Called once just before the simulation starts running."""

    #: Extra per-packet header bits this system adds to data packets (overhead
    #: accounting for Figure 16); Contra overrides this.
    def packet_header_bits(self) -> int:
        return 0


class Network:
    """A fully wired simulation of one topology under one routing system."""

    def __init__(
        self,
        topology: Topology,
        routing_system: RoutingSystem,
        buffer_packets: int = 1000,
        host_window: int = 12,
        host_rto: float = 5.0,
        util_window: float = 1.0,
        stats: Optional[StatsCollector] = None,
        transport: str = "fixed",
        host_ack_every: int = 1,
        sanitize: Optional[bool] = None,
    ):
        if transport not in TRANSPORT_MODES:
            raise SimulationError(
                f"unknown transport mode {transport!r}; available: {TRANSPORT_MODES}")
        if host_ack_every < 1:
            raise SimulationError(
                f"host_ack_every must be >= 1, got {host_ack_every}")
        self.topology = topology
        self.routing_system = routing_system
        self.sim = Simulator(sanitize=sanitize)
        #: The sanitizer plane, present only when ``sanitize`` resolved true.
        self.sanitizer = getattr(self.sim, "sanitizer", None)
        self.stats = stats if stats is not None else StatsCollector()
        self.buffer_packets = buffer_packets
        self.util_window = util_window
        self.transport = transport

        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, SwitchNode] = {}
        #: directed links keyed by (src node, dst node).
        self.links: Dict[Tuple[str, str], SimLink] = {}

        self._host_window = host_window
        self._host_rto = host_rto
        self._host_ack_every = host_ack_every
        self._pending_failures: List[Tuple[float, str, str]] = []
        self._scheduled_flows = 0
        self._build()
        if self.sanitizer is not None:
            # After _build so every node and link exists, before anything is
            # scheduled so the probe lane only ever merges on the wrapped
            # delivery callables.
            self.sanitizer.instrument_network(self)

    # ------------------------------------------------------------------ build

    def _build(self) -> None:
        for host_name in self.topology.hosts:
            self.hosts[host_name] = Host(self, host_name,
                                         window=self._host_window, rto=self._host_rto,
                                         transport=self.transport,
                                         ack_every=self._host_ack_every)
        for switch_name in self.topology.switches:
            logic = self.routing_system.create_switch_logic(switch_name)
            self.switches[switch_name] = SwitchNode(self, switch_name, logic)

        for link in self.topology.links:
            # Deliveries call the destination node's receive() directly; the
            # node objects all exist by now, so no per-delivery lookup is paid.
            dst_node = self.switches.get(link.dst) or self.hosts.get(link.dst)
            if dst_node is None:  # pragma: no cover - topology guarantees a node
                raise SimulationError(f"link {link.src}->{link.dst} has no destination node")
            sim_link = SimLink(
                self.sim, link.src, link.dst,
                capacity=link.capacity, latency=link.latency,
                buffer_packets=self.buffer_packets,
                deliver=dst_node.receive,
                stats=self.stats,
                util_window=self.util_window,
                # Coalesced probe runs go straight to the switch's vectorized
                # entry point (hosts never receive probes; the per-packet
                # fallback silently ignores any that reach one).
                deliver_batch=getattr(dst_node, "receive_probe_batch", None),
            )
            # Links towards a wave-judging routing logic accumulate their
            # same-tick probe runs into wave views (array probe plane).
            dst_routing = getattr(dst_node, "routing", None)
            if dst_routing is not None and getattr(dst_routing, "wants_probe_waves", False):
                sim_link.collect_probe_runs = True
            self.links[(link.src, link.dst)] = sim_link
            if link.src in self.switches:
                self.switches[link.src].add_port(link.dst, sim_link)
            elif link.src in self.hosts:
                self.hosts[link.src].uplink = sim_link

        for host_name in self.topology.hosts:
            switch = self.topology.attachment_switch(host_name)
            self.switches[switch].add_host(host_name)

        self.routing_system.prepare(self)

    # ---------------------------------------------------------------- queries

    def is_switch(self, name: str) -> bool:
        return name in self.switches

    def is_host(self, name: str) -> bool:
        return name in self.hosts

    def attachment_switch(self, host: str) -> str:
        return self.topology.attachment_switch(host)

    def link(self, src: str, dst: str) -> SimLink:
        try:
            return self.links[(src, dst)]
        except KeyError:
            raise SimulationError(f"no simulated link {src!r} -> {dst!r}") from None

    def destination_switches(self) -> List[str]:
        """Switches with at least one attached host (the probe destinations)."""
        return sorted({self.topology.attachment_switch(h) for h in self.topology.hosts})

    def link_metric_lookup(self) -> Callable[[str, str], Dict[str, float]]:
        """A ``link_metrics(a, b)`` callable for the compiler's reference oracle."""
        def lookup(a: str, b: str) -> Dict[str, float]:
            return self.link(a, b).metric_values()
        return lookup

    # -------------------------------------------------------------- workloads

    def schedule_flows(self, flows: Iterable[Flow]) -> int:
        """Schedule the arrival of every flow; returns how many were scheduled."""
        count = 0
        for flow in flows:
            if flow.src_host not in self.hosts:
                raise SimulationError(f"flow references unknown source host {flow.src_host!r}")
            if flow.dst_host not in self.hosts:
                raise SimulationError(f"flow references unknown destination host {flow.dst_host!r}")
            self.sim.call_at(flow.start_time, self.hosts[flow.src_host].start_flow, flow)
            count += 1
        self._scheduled_flows += count
        return count

    # ---------------------------------------------------------------- failures

    def fail_link(self, a: str, b: str, at_time: float = 0.0, bidirectional: bool = True) -> None:
        """Schedule a link failure (both directions by default)."""
        def fail() -> None:
            self.link(a, b).fail()
            if bidirectional and (b, a) in self.links:
                self.link(b, a).fail()
            if a in self.switches:
                self.switches[a].routing.on_link_change(b, failed=True)
            if b in self.switches and bidirectional:
                self.switches[b].routing.on_link_change(a, failed=True)
        self.sim.call_at(at_time, fail)

    def recover_link(self, a: str, b: str, at_time: float = 0.0, bidirectional: bool = True) -> None:
        """Schedule a link recovery."""
        def recover() -> None:
            self.link(a, b).recover()
            if bidirectional and (b, a) in self.links:
                self.link(b, a).recover()
            if a in self.switches:
                self.switches[a].routing.on_link_change(b, failed=False)
            if b in self.switches and bidirectional:
                self.switches[b].routing.on_link_change(a, failed=False)
        self.sim.call_at(at_time, recover)

    # --------------------------------------------------------------------- run

    def run(self, duration: float, stop_after_completion: bool = False) -> StatsCollector:
        """Start the routing system and run the simulation for ``duration`` ms.

        With ``stop_after_completion`` the run ends as soon as every scheduled
        flow has completed (FCT experiments spend a large fraction of their
        budget simulating the probe-only tail after the last flow otherwise).
        Runs with incomplete flows still go the full duration.
        """
        if stop_after_completion and self._scheduled_flows > 0:
            self.stats.watch_completion(self._scheduled_flows, self.sim.stop)
        self.routing_system.start(self)
        self.sim.run(until=duration)
        if self.sanitizer is not None:
            self.sanitizer.finish(self)
        return self.stats
