"""Fluid flow model: epoch-driven max-min rate allocation.

Packet-level fidelity caps every grid point at ~10^4 flows because the cost
*is* the per-packet event structure (the PR 6 probe-plane measurements made
that explicit).  This module replaces per-packet events with per-**epoch**
rate recomputation: every in-flight flow is a fluid rate share on its
policy-chosen path, and the allocation — weighted progressive-filling max-min
fairness over path groups, capped per group by the window-limited rate
``host_window / RTT`` — is recomputed only when the set of contenders
changes:

* **flow arrival** — the flow is resolved onto a concrete path (by the fluid
  analogue of its routing system, see :func:`build_path_model`) and joins
  that path's group;
* **flow completion** — computed analytically from the current rates via
  per-group virtual-service finish tags and re-queued as one engine event
  (never one event per flow: same-instant completions coalesce);
* **link fail/recover** — every flow is deterministically re-resolved against
  the new liveness map.

A run therefore costs O(epochs × links) instead of O(packets): one epoch per
arrival, roughly one per completion batch, one per link event.

Finish tags
-----------
Each group tracks a *virtual service* integral ``S(t)`` — the cumulative
per-flow packets served on that path.  A flow joining with ``r`` remaining
packets gets finish tag ``S(join) + r`` and completes exactly when ``S``
reaches its tag; tags live in a per-group min-heap, so the next completion
epoch is ``min over groups of  updated + (top_tag - S) / rate``, one O(1)
formula per group.  At a completion epoch the group's service is snapped to
the due tag (no accumulated float drift decides completion order) and every
tag ``<= due`` pops together.

Byte-stability contract (ARCHITECTURE.md §7)
--------------------------------------------
All allocation arithmetic is pure Python floats over deterministically
ordered structures (sorted link ids, sorted group keys, insertion-ordered
dicts); the solver is exactly permutation-invariant over its input order, and
FCT summaries fold through :mod:`repro.nputil`.  Fluid summaries are
byte-stable run-to-run, serial == parallel == resumed, but are **not**
comparable byte-for-byte with packet summaries — fidelity is validated
statistically by the ``fluid-vs-packet`` scenario instead.

The conservation invariant is adapted for rate integrals: the total service
poured into groups must equal completed sizes plus in-flight progress.  The
check (:meth:`FluidSimulation._check_conservation`) runs at the end of every
run — it is O(flows) once, not per-epoch, so it stays on even without the
sanitizer.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import SimulationError
from repro.nputil import mean as _mean, percentile_linear as _percentile
from repro.protocol.tables import stable_flow_hash
from repro.simulator.engine import Simulator
from repro.simulator.packet import DATA_PACKET_BYTES
from repro.simulator.stats import StatsCollector
from repro.topology.graph import Topology

__all__ = [
    "max_min_rates",
    "build_path_model",
    "FluidPathModel",
    "FluidStats",
    "FluidSimulation",
    "FLUID_SYSTEM_NAMES",
]

#: Routing systems with a fluid path-resolution analogue (all of them).
FLUID_SYSTEM_NAMES = ("ecmp", "shortest-path", "spain", "hula", "contra")


# =============================================================================
# Max-min solver
# =============================================================================

def max_min_rates(
    paths: Mapping,
    capacities: Mapping,
    weights: Optional[Mapping] = None,
    rate_caps: Optional[Mapping] = None,
) -> Dict:
    """Weighted max-min fair rates via progressive filling.

    Parameters
    ----------
    paths:
        group key -> sequence of link ids the group traverses (non-empty).
        Keys and link ids must be mutually sortable (the solver iterates both
        in sorted order so the result is exactly permutation-invariant).
    capacities:
        link id -> capacity (must cover every link referenced by ``paths``).
    weights:
        group key -> positive integer demand weight (default 1); a group's
        consumption on each of its links is ``weight * rate``.
    rate_caps:
        group key -> optional per-group rate ceiling (e.g. the window-limited
        rate); groups without an entry are uncapped.

    Returns the group -> rate dict.  Determinism contract: the result is a
    pure function of the *set* of (group, path, weight, cap) tuples — feeding
    any permutation of the same groups produces bit-identical floats.  Each
    filling round freezes every group at the winning level (the smallest link
    fair share ``remaining / weight_sum`` or the smallest unfrozen cap) and
    debits each link once with a single multiply (``remaining -=
    delta_weight * level``) so no float depends on accumulation order.

    Cost: O(nnz log n) where nnz is the total path length over groups —
    candidate levels live in lazy min-heaps (entries are invalidated by a
    per-link version counter instead of rescanning every link each round),
    which is what keeps the congested epochs of a million-flow fluid run
    affordable.  Keys and link ids are mapped to dense indices up front, so
    the hot loop runs on plain lists.
    """
    group_keys = sorted(paths)
    group_count = len(group_keys)
    link_ids = sorted({link for key in group_keys for link in paths[key]})
    link_index = {link: i for i, link in enumerate(link_ids)}
    link_count = len(link_ids)

    group_paths: List[List[int]] = []
    group_weight: List[int] = []
    for key in group_keys:
        weight = 1 if weights is None else int(weights[key])
        if weight <= 0:
            raise ValueError(f"group {key!r} has non-positive weight {weight}")
        if not paths[key]:
            raise ValueError(f"group {key!r} has an empty path")
        group_weight.append(weight)
        group_paths.append([link_index[link] for link in paths[key]])

    remaining = [float(capacities[link]) for link in link_ids]
    weight_sum = [0] * link_count
    link_groups: List[List[int]] = [[] for _ in range(link_count)]
    for gid in range(group_count):
        weight = group_weight[gid]
        for link in group_paths[gid]:
            weight_sum[link] += weight
            link_groups[link].append(gid)

    # Lazy candidate heaps: (level, id, version) for links, (cap, gid) for
    # groups.  A link entry is current iff its version matches; consumed or
    # superseded entries are discarded on pop.  Tie-breaking by dense id is
    # deterministic, and dense ids follow sorted key order, so permuting the
    # input cannot reorder anything.
    version = [0] * link_count
    share_heap = [(remaining[l] / weight_sum[l], l, 0) for l in range(link_count)]
    heapq.heapify(share_heap)
    cap_heap: List[Tuple[float, int]] = []
    if rate_caps is not None:
        for gid, key in enumerate(group_keys):
            cap = rate_caps.get(key)
            if cap is not None:
                cap_heap.append((float(cap), gid))
        heapq.heapify(cap_heap)

    frozen = [False] * group_count
    rates = [0.0] * group_count
    unfrozen = group_count
    while unfrozen:
        while share_heap and share_heap[0][2] != version[share_heap[0][1]]:
            heapq.heappop(share_heap)
        link_level = share_heap[0][0] if share_heap else None
        while cap_heap and frozen[cap_heap[0][1]]:
            heapq.heappop(cap_heap)
        cap_level = cap_heap[0][0] if cap_heap else None
        if link_level is None and cap_level is None:  # pragma: no cover
            raise ValueError("unfrozen groups left but no candidate level")

        batch: List[int] = []
        if cap_level is not None and (link_level is None or cap_level <= link_level):
            level = cap_level
            while cap_heap and cap_heap[0][0] == level:
                _cap, gid = heapq.heappop(cap_heap)
                if not frozen[gid]:
                    frozen[gid] = True
                    batch.append(gid)
        else:
            level = link_level if link_level > 0.0 else 0.0
            while share_heap and share_heap[0][0] == link_level:
                _share, link, ver = heapq.heappop(share_heap)
                if ver != version[link]:
                    continue
                version[link] += 1  # consumed: no current entry until re-push
                for gid in link_groups[link]:
                    if not frozen[gid]:
                        frozen[gid] = True
                        batch.append(gid)

        delta: Dict[int, int] = {}
        for gid in batch:
            rates[gid] = level
            unfrozen -= 1
            weight = group_weight[gid]
            for link in group_paths[gid]:
                delta[link] = delta.get(link, 0) + weight
        for link, delta_weight in delta.items():
            new_sum = weight_sum[link] - delta_weight
            weight_sum[link] = new_sum
            debited = remaining[link] - delta_weight * level
            remaining[link] = debited if debited > 0.0 else 0.0
            version[link] += 1
            if new_sum > 0:
                heapq.heappush(share_heap,
                               (remaining[link] / new_sum, link, version[link]))
    return {key: rates[gid] for gid, key in enumerate(group_keys)}


# =============================================================================
# Path resolution: fluid analogues of the routing systems
# =============================================================================

class _Fabric:
    """Directed-link index shared by the path models and the simulation."""

    __slots__ = ("topology", "links", "index", "capacity", "latency", "attach")

    def __init__(self, topology: Topology):
        self.topology = topology
        self.links = [link.key for link in topology.links]
        self.index = {key: i for i, key in enumerate(self.links)}
        self.capacity = [link.capacity for link in topology.links]
        self.latency = [link.latency for link in topology.links]
        self.attach = {host: topology.attachment_switch(host)
                       for host in topology.hosts}


class FluidPathModel:
    """Resolves one flow onto a tuple of directed link indices.

    ``resolve`` is a pure function of (flow hash, endpoints, utilization map,
    liveness map): the fluid analogue of a routing system's forwarding state.
    It returns ``None`` when no live path exists — the flow is *blocked* and
    re-resolved at the next link event, mirroring a packet plane that
    blackholes until the protocol reconverges.
    """

    name = "fluid"

    def __init__(self, fabric: _Fabric):
        self.fabric = fabric

    def resolve(self, fhash: int, src_host: str, dst_host: str,
                util: Sequence[float],
                failed: Sequence[bool]) -> Optional[Tuple[int, ...]]:
        raise NotImplementedError

    def _host_edges(self, src_host: str, dst_host: str,
                    failed: Sequence[bool]):
        """(src switch, dst switch, uplink idx, downlink idx) or None."""
        fabric = self.fabric
        src_switch = fabric.attach[src_host]
        dst_switch = fabric.attach[dst_host]
        up = fabric.index[(src_host, src_switch)]
        down = fabric.index[(dst_switch, dst_host)]
        if failed[up] or failed[down]:
            return None
        return src_switch, dst_switch, up, down


class _HashWalkModel(FluidPathModel):
    """ECMP / single shortest path: hash across the equal-cost next hops.

    The walk mirrors the packet plane's per-switch decision exactly: hash
    over the full next-hop set, and only when the chosen link is down re-hash
    over the live subset (so unaffected flows never move when an unrelated
    link fails).  Every hop strictly decreases the distance to the
    destination, so the walk cannot loop.
    """

    def __init__(self, fabric: _Fabric, all_hops: bool):
        super().__init__(fabric)
        self.name = "ecmp" if all_hops else "shortest-path"
        from repro.baselines.ecmp import next_hop_table
        self._table = next_hop_table(fabric.topology, all_hops)

    def resolve(self, fhash, src_host, dst_host, util, failed):
        edges = self._host_edges(src_host, dst_host, failed)
        if edges is None:
            return None
        switch, dst_switch, up, down = edges
        if switch == dst_switch:
            return (up, down)
        index = self.fabric.index
        path = [up]
        while switch != dst_switch:
            hops = self._table[switch].get(dst_switch)
            if not hops:
                return None
            choice = hops[fhash % len(hops)]
            link = index[(switch, choice)]
            if failed[link]:
                usable = [h for h in hops if not failed[index[(switch, h)]]]
                if not usable:
                    return None
                choice = usable[fhash % len(usable)]
                link = index[(switch, choice)]
            path.append(link)
            switch = choice
        path.append(down)
        return tuple(path)


class _GreedyUtilModel(FluidPathModel):
    """Shortest-path DAG walk picking the least-utilized live egress.

    The fluid analogue of both Contra's MU-datacenter policy
    (``minimize((path.len, path.util))``) and HULA's probe-maintained best
    tables: restrict to shortest paths, steer each hop to the neighbour with
    the lowest current utilization, break exact ties by flow hash.  Flowlet
    granularity collapses to per-epoch flow granularity — in a rate model a
    flow *is* its rate, so re-resolution happens at epochs, which is also
    when utilizations change.  Greedy per-hop minimization is how the real
    distributed protocols behave (each switch only knows its local best
    table); it is not guaranteed to find the global min-utilization shortest
    path, and ARCHITECTURE.md §7 records that approximation.
    """

    name = "contra-datacenter"

    def __init__(self, fabric: _Fabric):
        super().__init__(fabric)
        from repro.baselines.ecmp import next_hop_table
        self._table = next_hop_table(fabric.topology, all_hops=True)

    def resolve(self, fhash, src_host, dst_host, util, failed):
        edges = self._host_edges(src_host, dst_host, failed)
        if edges is None:
            return None
        switch, dst_switch, up, down = edges
        if switch == dst_switch:
            return (up, down)
        index = self.fabric.index
        path = [up]
        while switch != dst_switch:
            hops = self._table[switch].get(dst_switch)
            if not hops:
                return None
            best = None
            ties: List[str] = []
            for hop in hops:
                link = index[(switch, hop)]
                if failed[link]:
                    continue
                u = util[link]
                if best is None or u < best:
                    best = u
                    ties = [hop]
                elif u == best:
                    ties.append(hop)
            if not ties:
                return None
            choice = ties[fhash % len(ties)]
            path.append(index[(switch, choice)])
            switch = choice
        path.append(down)
        return tuple(path)


class _BottleneckModel(FluidPathModel):
    """Exact ``minimize(path.util)``: bottleneck-shortest path by Dijkstra.

    The fluid analogue of the MU-wan policy on WAN fabrics, where taking a
    longer detour around a hot link is the whole point.  Labels are
    ``(max link util, hop count, path)`` compared lexicographically, so
    tie-breaking is deterministic without any hashing.  O(E log V) per
    resolution — WAN topologies are small, and fidelity matters more than
    the datacenter-scale fast path here.
    """

    name = "contra-wan"

    def resolve(self, fhash, src_host, dst_host, util, failed):
        edges = self._host_edges(src_host, dst_host, failed)
        if edges is None:
            return None
        switch, dst_switch, up, down = edges
        if switch == dst_switch:
            return (up, down)
        topology = self.fabric.topology
        index = self.fabric.index
        heap: List[Tuple[float, int, Tuple[str, ...]]] = [(0.0, 0, (switch,))]
        visited = set()
        while heap:
            bottleneck, hops, path = heapq.heappop(heap)
            node = path[-1]
            if node in visited:
                continue
            visited.add(node)
            if node == dst_switch:
                links = [up]
                links.extend(index[(a, b)] for a, b in zip(path, path[1:]))
                links.append(down)
                return tuple(links)
            for neighbor in topology.switch_neighbors(node):
                if neighbor in visited:
                    continue
                link = index[(node, neighbor)]
                if failed[link]:
                    continue
                heapq.heappush(
                    heap,
                    (max(bottleneck, util[link]), hops + 1, path + (neighbor,)))
        return None


class _SpainModel(FluidPathModel):
    """Static SPAIN path sets: the flow hash selects a VLAN.

    Paths come from the same :func:`~repro.baselines.spain.compute_spain_paths`
    greedy disjoint-path computation the packet plane installs; a failed VLAN
    falls back to the next live path in hash-rotated order (the packet
    plane's per-flow VLAN reselection).
    """

    name = "spain"

    def __init__(self, fabric: _Fabric):
        super().__init__(fabric)
        from repro.baselines.spain import compute_spain_paths
        self._paths = compute_spain_paths(fabric.topology)

    def resolve(self, fhash, src_host, dst_host, util, failed):
        edges = self._host_edges(src_host, dst_host, failed)
        if edges is None:
            return None
        switch, dst_switch, up, down = edges
        if switch == dst_switch:
            return (up, down)
        options = self._paths.get((switch, dst_switch))
        if not options:
            return None
        index = self.fabric.index
        count = len(options)
        for offset in range(count):
            nodes = options[(fhash + offset) % count]
            links = [index[(a, b)] for a, b in zip(nodes, nodes[1:])]
            if not any(failed[link] for link in links):
                return (up, *links, down)
        return None


def build_path_model(system: str, topology: Topology,
                     policy: str = "datacenter") -> FluidPathModel:
    """The fluid path-resolution analogue of one routing system.

    ``policy`` selects the Contra objective by the same names the spec layer
    uses (``POLICY_BUILDERS``): ``"datacenter"`` maps to the greedy
    least-utilized shortest-path walk, ``"wan"`` to the exact bottleneck
    search.
    """
    fabric = _Fabric(topology)
    name = system.lower()
    if name == "ecmp":
        return _HashWalkModel(fabric, all_hops=True)
    if name == "shortest-path":
        return _HashWalkModel(fabric, all_hops=False)
    if name == "spain":
        return _SpainModel(fabric)
    if name == "hula":
        return _GreedyUtilModel(fabric)
    if name == "contra":
        if policy == "datacenter":
            return _GreedyUtilModel(fabric)
        if policy == "wan":
            return _BottleneckModel(fabric)
        raise SimulationError(
            f"no fluid analogue for contra policy {policy!r}; "
            "available: 'datacenter', 'wan'")
    raise SimulationError(
        f"unknown routing system {system!r}; available: {FLUID_SYSTEM_NAMES}")


# =============================================================================
# Stats
# =============================================================================

class FluidStats(StatsCollector):
    """StatsCollector specialisation for the fluid plane.

    A million-flow run must not hold a million :class:`FlowRecord` objects:
    flows are counted and completion times kept as one flat list.  The
    ``summary()`` key set and order are identical to the packet collector's —
    packet-only quantities (drops, retransmissions, cwnd, ACK/probe bytes)
    are structurally zero because the fluid model has no segments to lose —
    plus one fluid-only key, ``"epochs"``: the number of allocation
    recomputations, the model's native cost unit (the packet plane's
    analogue is its event count).
    """

    def __init__(self, fct_percentiles: Sequence[float] = (),
                 flow_sketch: bool = False):
        super().__init__(fct_percentiles=fct_percentiles,
                         flow_sketch=flow_sketch)
        self.flow_count = 0
        self.fcts: List[float] = []
        self.epochs = 0

    def note_flow(self) -> None:
        self.flow_count += 1

    def note_completion(self, fct: float) -> None:
        self.fcts.append(fct)

    def average_fct(self) -> float:
        return _mean(self.fcts) if self.fcts else float("nan")

    def percentile_fct(self, percentile: float) -> float:
        return _percentile(self.fcts, percentile) if self.fcts else float("nan")

    def completion_ratio(self) -> float:
        if not self.flow_count:
            return 1.0
        return len(self.fcts) / self.flow_count

    def summary(self) -> Dict[str, float]:
        summary = {
            "flows": self.flow_count,
            "completed_flows": len(self.fcts),
            "completion_ratio": self.completion_ratio(),
            "avg_fct_ms": self.average_fct(),
            "p99_fct_ms": self.percentile_fct(99.0),
            "drops": 0,
            "goodput_bytes": self.goodput_bytes,
            "delivered_bytes": self.goodput_bytes,
            "duplicate_deliveries": 0,
            "retransmissions": 0,
            "fast_retransmits": 0,
            "mean_max_cwnd": 0.0,
            "data_bytes": self.goodput_bytes,
            "ack_bytes": 0.0,
            "probe_bytes": 0.0,
            "tag_overhead_bytes": 0.0,
            "overhead_ratio": 0.0,
            "loop_fraction": 0.0,
            "loop_detections": 0,
            "flowlet_expirations": 0,
            "failure_detections": self.failure_detections,
            "epochs": self.epochs,
        }
        summary.update(self._extension_summary())
        return summary


# =============================================================================
# The epoch-driven simulation
# =============================================================================

class _FlowState:
    __slots__ = ("uid", "fhash", "src", "dst", "start", "size",
                 "path", "tag", "remaining")

    def __init__(self, uid: int, fhash: int, src: str, dst: str,
                 start: float, size: float):
        self.uid = uid
        self.fhash = fhash
        self.src = src
        self.dst = dst
        self.start = start
        self.size = size
        self.path: Optional[Tuple[int, ...]] = None
        self.tag = 0.0
        #: Packets still to serve; authoritative only while blocked
        #: (``path is None``) — placed flows carry it implicitly as
        #: ``tag - group.service``.
        self.remaining = size


class _PathGroup:
    """All in-flight flows sharing one exact link path."""

    __slots__ = ("links", "count", "rate", "service", "updated", "tags",
                 "rate_cap", "delay", "gid", "version", "applied")

    def __init__(self, links: Tuple[int, ...], rate_cap: float, delay: float,
                 now: float, gid: int):
        self.links = links
        self.count = 0
        self.rate = 0.0           # per-flow rate, packets/ms
        self.service = 0.0        # cumulative per-flow packets served
        self.updated = now        # time the (service, rate) anchor is valid at
        self.tags: List[Tuple[float, int]] = []  # (finish tag, flow uid) heap
        self.rate_cap = rate_cap
        self.delay = delay        # one-way base path delay, ms
        self.gid = gid            # creation-order id: deterministic heap ties
        self.version = 0          # invalidates stale completion candidates
        self.applied = 0.0        # total load (count*rate) reflected in _load


class FluidSimulation:
    """One fluid-model run: the counterpart of
    :class:`~repro.simulator.network.Network` for ``flow_model="fluid"``.

    The hot path exploits *per-link* locality, so one congested sender never
    slows the other thousand down:

    * An **arrival** whose window cap fits into the residual capacity of every
      link on its path provably leaves the rest of the max-min allocation
      unchanged (nobody's capacity shrank below their bottleneck, and the new
      flow is at its own ceiling), so the epoch costs O(path length).
    * A **completion batch** whose due groups all run at their rate cap and
      cross only unsaturated links frees capacity no other group can claim
      (anyone who could claim it would be bottlenecked on one of those links,
      i.e. the link would be saturated), so it too is O(due × path length).

    Every other epoch falls back to the exact progressive-filling solver.
    Both paths produce the same deterministic floats for the same event
    sequence; saturation is judged against a 1e-9 relative slack so solver
    float dust on a binding link can only force a (harmless) extra solve.

    Completion scheduling is a lazy candidate heap of ``(due, gid, version)``
    triples — one valid entry per group, invalidated by bumping
    ``group.version`` — so an epoch never scans the full group table.
    """

    def __init__(self, topology: Topology, path_model: FluidPathModel,
                 stats: Optional[FluidStats] = None, host_window: int = 16,
                 sanitize: Optional[bool] = None,
                 force_global_solve: bool = False):
        self.topology = topology
        self.model = path_model
        self.fabric = path_model.fabric
        self.stats = stats if stats is not None else FluidStats()
        self.sim = Simulator(sanitize=sanitize)
        self.host_window = max(1, int(host_window))
        link_count = len(self.fabric.links)
        self._failed = [False] * link_count
        self._util = [0.0] * link_count
        self._load = [0.0] * link_count  # packets/ms currently allocated
        #: Saturation slack threshold per link (absolute, 1e-9 relative).
        self._eps = [1e-9 * cap for cap in self.fabric.capacity]
        self._groups: Dict[Tuple[int, ...], _PathGroup] = {}
        self._by_gid: Dict[int, Tuple[Tuple[int, ...], _PathGroup]] = {}
        #: Per-link group membership (gid -> group, join order) for the
        #: region-local solver's saturated-link BFS.
        self._link_members: List[Dict[int, _PathGroup]] = [
            {} for _ in range(link_count)]
        self._gid_counter = 0
        #: Verification hook: route every congested epoch through the global
        #: solver instead of the region-local one.  The two solve the same
        #: exact max-min problem, so summaries agree to float round-off
        #: (residual-capacity arithmetic differs at the ulp level).
        self._force_global = bool(force_global_solve)
        self._flows: Dict[int, _FlowState] = {}
        self._flow_iter = None
        self._exhausted = True
        self._generation = 0
        self._cand: List[Tuple[float, int, int]] = []  # (due, gid, version)
        self._sched: Optional[float] = None  # time of the live engine event
        self._service_total = 0.0
        self._completed_service = 0.0
        self._stop_after = False
        topo = self.fabric.topology
        #: link index -> traversed switch (the link's head end) or None for
        #: host-terminating links; feeds the per-switch cardinality sketch.
        self._link_switch = [dst if topo.is_switch(dst) else None
                             for (_src, dst) in self.fabric.links]

    # -------------------------------------------------------------- workload

    def add_flows(self, flows) -> None:
        """Accept the run's flows: an eager list or a lazy time-ordered
        iterator (the streaming workload path).  Arrival order must be
        non-decreasing in ``start_time``; only one flow is scheduled into the
        engine at a time, so a 10^6-flow stream never materializes."""
        self._flow_iter = iter(flows)
        self._exhausted = False

    def fail_link(self, a: str, b: str, at_time: float = 0.0,
                  bidirectional: bool = True) -> None:
        self.sim.call_at(at_time, self._apply_link_event, a, b, True,
                         bidirectional)

    def recover_link(self, a: str, b: str, at_time: float = 0.0,
                     bidirectional: bool = True) -> None:
        self.sim.call_at(at_time, self._apply_link_event, a, b, False,
                         bidirectional)

    # ------------------------------------------------------------------- run

    def run(self, duration: float, stop_after_completion: bool = False) -> FluidStats:
        self._stop_after = stop_after_completion
        self._pump()
        self._maybe_stop()
        self.sim.run(until=duration)
        self._settle_all(self.sim.now)
        stats = self.stats
        stats.goodput_bytes = self._service_total * DATA_PACKET_BYTES
        stats.delivered_bytes = stats.goodput_bytes
        stats.data_bytes = stats.goodput_bytes
        self._check_conservation()
        return stats

    # ------------------------------------------------------------ event pump

    def _pump(self) -> None:
        if self._flow_iter is None:
            return
        try:
            flow = next(self._flow_iter)
        except StopIteration:
            self._flow_iter = None
            self._exhausted = True
            return
        self.sim.call_at(flow.start_time, self._on_arrival, flow)

    def _maybe_stop(self) -> None:
        if self._stop_after and self._exhausted and not self._flows:
            self.sim.stop()

    # --------------------------------------------------------------- service

    def _settle(self, group: _PathGroup, now: float) -> None:
        dt = now - group.updated
        if dt > 0.0:
            if group.rate > 0.0 and group.count:
                advance = group.rate * dt
                group.service += advance
                self._service_total += group.count * advance
            group.updated = now

    def _settle_all(self, now: float) -> None:
        for group in self._groups.values():
            self._settle(group, now)

    def _new_group(self, path: Tuple[int, ...], now: float) -> _PathGroup:
        fabric = self.fabric
        delay = 0.0
        for link in path:
            delay += fabric.latency[link] + 1.0 / fabric.capacity[link]
        # Window-limited per-flow ceiling: host_window packets per RTT, the
        # fluid image of the packet plane's fixed-window ACK clock.
        gid = self._gid_counter
        self._gid_counter = gid + 1
        return _PathGroup(path, self.host_window / (2.0 * delay), delay, now,
                          gid)

    # ---------------------------------------------------------------- epochs

    def _on_arrival(self, flow) -> None:
        now = self.sim.now
        stats = self.stats
        stats.epochs += 1
        stats.note_flow()
        state = _FlowState(flow.flow_id,
                           stable_flow_hash((flow.src_host, flow.dst_host,
                                             flow.flow_id)),
                           flow.src_host, flow.dst_host, now,
                           float(flow.size_packets))
        self._flows[state.uid] = state
        self._pump()

        path = self.model.resolve(state.fhash, state.src, state.dst,
                                  self._util, self._failed)
        if path is None:
            # Blocked: no live path. Holds its remaining size until a link
            # event re-resolves it; contributes no load.
            return

        group = self._groups.get(path)
        if group is None:
            group = self._new_group(path, now)
        if self._cap_fits(group):
            # Local exactness: the current allocation is max-min; giving the
            # arrival its cap saturates no link below anyone's bottleneck and
            # the arrival itself is at its ceiling, so old rates + cap *is*
            # the max-min allocation of the new contender set.  (A group
            # running below its cap is link-frozen on a saturated link, where
            # the cap cannot fit — such arrivals always reach the solver.)
            self._join(state, group, path, now)
            self._fast_arrival(group, now)
        else:
            self._join(state, group, path, now)
            if self._force_global:
                self._reallocate(now)
            else:
                self._local_reallocate(now, [group], ())
        self._resched(now)

    def _cap_fits(self, group: _PathGroup) -> bool:
        load = self._load
        capacity = self.fabric.capacity
        cap = group.rate_cap
        for link in group.links:
            if load[link] + cap > capacity[link]:
                return False
        return True

    def _join(self, state: _FlowState, group: _PathGroup,
              path: Tuple[int, ...], now: float) -> None:
        if group.count:
            self._settle(group, now)
        else:
            self._groups[path] = group
            self._by_gid[group.gid] = (path, group)
            members = self._link_members
            for link in path:
                members[link][group.gid] = group
            group.updated = now
        state.path = path
        state.tag = group.service + state.remaining
        heapq.heappush(group.tags, (state.tag, state.uid))
        group.count += 1
        if self.stats.flow_sketch:
            link_switch = self._link_switch
            record = self.stats.record_switch_flow
            for link in path:
                switch = link_switch[link]
                if switch is not None:
                    record(switch, state.uid)

    def _apply_total(self, group: _PathGroup, new_total: float) -> None:
        """Move the group's reflected load (``count * rate``) to ``new_total``."""
        diff = new_total - group.applied
        if diff:
            load = self._load
            util = self._util
            capacity = self.fabric.capacity
            for link in group.links:
                updated = load[link] + diff
                if updated < 0.0:
                    updated = 0.0
                load[link] = updated
                util[link] = updated / capacity[link]
            group.applied = new_total

    def _drop_group(self, path: Tuple[int, ...], group: _PathGroup) -> None:
        del self._groups[path]
        del self._by_gid[group.gid]
        members = self._link_members
        for link in group.links:
            del members[link][group.gid]
        group.version += 1
        self._apply_total(group, 0.0)

    def _fast_arrival(self, group: _PathGroup, now: float) -> None:
        """Cap-fitting arrival: everyone else stays put, only ``group`` moves."""
        cap = group.rate_cap
        group.rate = cap
        self._apply_total(group, group.count * cap)
        self._push_candidate(group)

    def _push_candidate(self, group: _PathGroup) -> None:
        """Refresh ``group``'s completion candidate (older entries go stale)."""
        group.version += 1
        if group.rate > 0.0 and group.tags:
            due = group.updated + (group.tags[0][0] - group.service) / group.rate
            heapq.heappush(self._cand, (due, group.gid, group.version))

    def _resched(self, now: float) -> None:
        """Point the single live engine event at the earliest valid candidate.

        Every epoch handler ends here.  Stale heap entries (version mismatch
        or deleted gid) are discarded lazily; a superseded engine event is
        killed by bumping the generation.
        """
        cand = self._cand
        by_gid = self._by_gid
        while cand:
            due, gid, version = cand[0]
            entry = by_gid.get(gid)
            if entry is not None and entry[1].version == version:
                if due < now:
                    due = now
                if due != self._sched:
                    self._generation += 1
                    self._sched = due
                    self.sim.call_at(due, self._on_completions, self._generation)
                return
            heapq.heappop(cand)
        if self._sched is not None:
            self._generation += 1
            self._sched = None

    def _on_completions(self, generation: int) -> None:
        if generation != self._generation:
            return
        now = self.sim.now
        stats = self.stats
        stats.epochs += 1
        self._sched = None
        # Pop every group whose candidate is due.  Candidate times are exact
        # (any rate/tag change re-pushed a fresh entry), so pop order —
        # (time, creation id) — is deterministic.
        cand = self._cand
        by_gid = self._by_gid
        due: List[Tuple[Tuple[int, ...], _PathGroup, int]] = []
        while cand and cand[0][0] <= now:
            _due, gid, version = heapq.heappop(cand)
            entry = by_gid.get(gid)
            if entry is not None and entry[1].version == version:
                due.append((entry[0], entry[1], 0))
        flows = self._flows
        fast = True
        capacity = self.fabric.capacity
        load = self._load
        eps = self._eps
        for index, (path, group, _none) in enumerate(due):
            # A due group off its cap is link-frozen (freed share must
            # redistribute); a due group crossing a saturated link may be
            # what somebody else is bottlenecked on.  Either forces a solve.
            if fast:
                if group.rate != group.rate_cap:
                    fast = False
                else:
                    for link in path:
                        if capacity[link] - load[link] <= eps[link]:
                            fast = False
                            break
            # Snap the service integral to the due tag: completion identity
            # is decided by tag arithmetic, never by accumulated drift.
            due_tag = group.tags[0][0]
            delta = due_tag - group.service
            if delta > 0.0:
                group.service = due_tag
                self._service_total += group.count * delta
            group.updated = now
            tags = group.tags
            removed = 0
            while tags and tags[0][0] <= due_tag:
                _tag, uid = heapq.heappop(tags)
                state = flows.pop(uid)
                group.count -= 1
                removed += 1
                self._completed_service += state.size
                stats.note_completion(now - state.start + group.delay)
            due[index] = (path, group, removed)
        if fast:
            for path, group, _removed in due:
                if not group.count:
                    self._drop_group(path, group)
                else:
                    self._apply_total(group, group.count * group.rate_cap)
                    self._push_candidate(group)
        elif self._force_global:
            self._reallocate(now)
        else:
            # Freed capacity on a *pre-free* saturated link must be offered
            # to that link's other groups even when the freeing group empties
            # out, so collect those links before dropping anything.
            dirty_links: List[int] = []
            survivors: List[_PathGroup] = []
            eps_ = eps
            for path, group, _removed in due:
                if not group.count:
                    for link in path:
                        if capacity[link] - load[link] <= eps_[link]:
                            dirty_links.append(link)
                    self._drop_group(path, group)
                else:
                    survivors.append(group)
            self._local_reallocate(now, survivors, dirty_links)
        self._resched(now)
        self._maybe_stop()

    def _apply_link_event(self, a: str, b: str, down: bool,
                          bidirectional: bool) -> None:
        now = self.sim.now
        self.stats.epochs += 1
        index = self.fabric.index
        pairs = ((a, b), (b, a)) if bidirectional else ((a, b),)
        for key in pairs:
            link = index.get(key)
            if link is not None:
                self._failed[link] = down
        if down:
            # One detection per event: the fluid model has no per-switch
            # probe convergence, so this counter is not comparable with the
            # packet plane's per-switch detections (ARCHITECTURE.md §7).
            self.stats.failure_detections += 1
        self._reroute_all(now)
        self._resched(now)
        self._maybe_stop()

    def _reroute_all(self, now: float) -> None:
        """Re-resolve every flow against the new liveness map.

        Paths are chosen against the pre-event utilizations (the information
        a just-reconverged protocol would have), in flow-uid order; remaining
        work carries over exactly as ``tag - service``.
        """
        self._settle_all(now)
        old_groups = self._groups
        states = sorted(self._flows.values(), key=lambda s: s.uid)
        self._groups = {}
        self._by_gid = {}
        self._link_members = [{} for _ in self._link_members]
        finished: List[_FlowState] = []
        for state in states:
            if state.path is not None:
                state.remaining = state.tag - old_groups[state.path].service
            if state.remaining <= 0.0:
                finished.append(state)
                continue
            state.path = None
            path = self.model.resolve(state.fhash, state.src, state.dst,
                                      self._util, self._failed)
            if path is None:
                continue
            group = self._groups.get(path)
            if group is None:
                group = self._new_group(path, now)
            self._join_rerouted(state, group, path)
        for state in finished:
            del self._flows[state.uid]
            self._completed_service += state.size
            assert state.path is not None
            self.stats.note_completion(now - state.start
                                       + old_groups[state.path].delay)
        self._reallocate(now)

    def _join_rerouted(self, state: _FlowState, group: _PathGroup,
                       path: Tuple[int, ...]) -> None:
        if not group.count:
            self._groups[path] = group
            self._by_gid[group.gid] = (path, group)
            members = self._link_members
            for link in path:
                members[link][group.gid] = group
        state.path = path
        state.tag = group.service + state.remaining
        heapq.heappush(group.tags, (state.tag, state.uid))
        group.count += 1
        if self.stats.flow_sketch:
            link_switch = self._link_switch
            record = self.stats.record_switch_flow
            for link in path:
                switch = link_switch[link]
                if switch is not None:
                    record(switch, state.uid)

    # ------------------------------------------------------------ allocation

    def _reallocate(self, now: float) -> None:
        """Full exact solve: settle changed groups, re-run progressive filling.

        Groups whose rate survives the solve unchanged keep their service
        anchor (the due formula is time-invariant while the rate holds), so
        the settle cost tracks how much of the allocation actually moved.
        Scheduling is the caller's job (every epoch handler ends in
        ``_resched``).
        """
        groups = self._groups
        empties = [(path, group) for path, group in groups.items()
                   if not group.count]
        for path, group in empties:
            self._drop_group(path, group)
        link_count = len(self._load)
        if not groups:
            self._load = [0.0] * link_count
            self._util = [0.0] * link_count
            return
        capacity = self.fabric.capacity
        capacities: Dict[int, float] = {}
        weights: Dict[Tuple[int, ...], int] = {}
        caps: Dict[Tuple[int, ...], float] = {}
        for path, group in groups.items():
            weights[path] = group.count
            caps[path] = group.rate_cap
            for link in path:
                capacities[link] = capacity[link]
        rates = max_min_rates({path: path for path in groups}, capacities,
                              weights, caps)
        load = [0.0] * link_count
        util = [0.0] * link_count
        for path, group in groups.items():
            rate = rates[path]
            if rate != group.rate:
                self._settle(group, now)
                group.rate = rate
            total = group.count * rate
            group.applied = total
            for link in path:
                load[link] += total
        for link, total in enumerate(load):
            if total:
                util[link] = total / capacity[link]
        self._load = load
        self._util = util
        # Tag heaps may have changed even where rates did not (the epoch's
        # join or pops), so refresh every candidate; compact the heap when
        # stale entries pile up.
        for group in groups.values():
            self._push_candidate(group)
        self._compact_candidates()

    def _compact_candidates(self) -> None:
        if len(self._cand) > 4 * len(self._groups) + 64:
            by_gid = self._by_gid
            fresh = [entry for entry in self._cand
                     if (pair := by_gid.get(entry[1])) is not None
                     and pair[1].version == entry[2]]
            heapq.heapify(fresh)
            self._cand = fresh

    def _local_reallocate(self, now: float, seed_groups: List[_PathGroup],
                          seed_links: Sequence[int]) -> None:
        """Exact max-min re-solve restricted to the bottleneck-coupled region.

        The groups whose rates can change after a local perturbation (a join,
        or a completion batch) are exactly those reachable from the perturbed
        groups through **saturated** links: slack on an unsaturated link is
        free by definition — nobody is bottlenecked there — so the max-min
        certificate of every group outside the closure is untouched when the
        region is re-solved against the residual capacities (link capacity
        minus the frozen outside load).  If the region solve *newly* saturates
        a link, that link's outside groups lose their certificate headroom, so
        they are pulled in and the region is re-solved; the loop terminates
        because the region only grows.  In a fat-tree this makes a congested
        epoch cost O(one sender's flows), not O(all groups).
        """
        load = self._load
        capacity = self.fabric.capacity
        eps = self._eps
        members = self._link_members
        region: Dict[int, _PathGroup] = {}
        scanned = set()
        pending: List[_PathGroup] = [g for g in seed_groups if g.count]
        for link in seed_links:
            if link not in scanned:
                scanned.add(link)
                pending.extend(members[link].values())
        while True:
            # Closure: admit pending groups, expanding through every
            # saturated link they touch.
            while pending:
                group = pending.pop()
                if group.gid in region:
                    continue
                region[group.gid] = group
                for link in group.links:
                    if link not in scanned \
                            and capacity[link] - load[link] <= eps[link]:
                        scanned.add(link)
                        pending.extend(members[link].values())
            if not region:
                return
            if 2 * len(region) >= len(self._groups):
                # The coupled component spans most of the allocation: the
                # global solve is cheaper than the residual bookkeeping.
                self._reallocate(now)
                return
            # Residual sub-problem: region loads come off, outside loads stay.
            order = sorted(region)
            paths: Dict[Tuple[int, ...], Tuple[int, ...]] = {}
            weights: Dict[Tuple[int, ...], int] = {}
            caps: Dict[Tuple[int, ...], float] = {}
            region_load: Dict[int, float] = {}
            for gid in order:
                group = region[gid]
                path = group.links
                paths[path] = path
                weights[path] = group.count
                caps[path] = group.rate_cap
                applied = group.applied
                for link in path:
                    region_load[link] = region_load.get(link, 0.0) + applied
            residual: Dict[int, float] = {}
            for link, taken in region_load.items():
                free = capacity[link] - load[link] + taken
                residual[link] = free if free > 0.0 else 0.0
            rates = max_min_rates(paths, residual, weights, caps)
            for gid in order:
                group = region[gid]
                rate = rates[group.links]
                if rate != group.rate:
                    self._settle(group, now)
                    group.rate = rate
                self._apply_total(group, group.count * rate)
            # Expansion check: links the region solve just saturated.
            pending = []
            for link in region_load:
                if link not in scanned \
                        and capacity[link] - load[link] <= eps[link]:
                    scanned.add(link)
                    for member in members[link].values():
                        if member.gid not in region:
                            pending.append(member)
            if not pending:
                break
        for gid in sorted(region):
            self._push_candidate(region[gid])
        self._compact_candidates()

    # ---------------------------------------------------------- verification

    def _check_conservation(self) -> None:
        """Rate-integral conservation: service poured into groups must equal
        completed sizes plus in-flight progress.  The fluid adaptation of the
        sanitizer's packet-conservation ledger (ARCHITECTURE.md §7)."""
        expected = self._completed_service
        groups = self._groups
        for state in self._flows.values():
            if state.path is None:
                expected += state.size - state.remaining
            else:
                expected += state.size - (state.tag - groups[state.path].service)
        tolerance = 1e-6 * max(1.0, self._service_total) + 1e-3
        if abs(self._service_total - expected) > tolerance:
            raise SimulationError(
                "fluid conservation violated: served "
                f"{self._service_total!r} packets but flow progress accounts "
                f"for {expected!r}")
