"""End hosts: traffic sources and sinks.

Hosts implement the cwnd-based transport described in
:mod:`repro.simulator.flow` — a ``transport`` mode of ``"fixed"`` (full
window from the first segment, the historical default), ``"slowstart"``
(slow start + AIMD congestion avoidance + fast retransmit on triple
duplicate ACKs) or ``"paced"`` (slow start plus packet pacing at one cwnd
per smoothed RTT) — plus an optional constant-rate (UDP-like) stream mode
used by the failure-recovery experiment (Figure 14).  The cwnd modes run
their RTO timers at each flow's srtt-derived timeout
(:meth:`~repro.simulator.flow.SenderState.current_rto`); ``"fixed"`` keeps
the host-level constant.

Delivery accounting distinguishes *goodput* from raw throughput: the host
asks the receiver state whether a data segment is a first-time delivery
before recording it, so go-back-N duplicates never inflate the goodput
series (see :meth:`repro.simulator.stats.StatsCollector.record_delivery`).

ACK generation supports opt-in **coalescing** (``ack_every > 1``, the
delayed-ACK analogue): back-to-back in-order deliveries of one flow
accumulate until ``ack_every`` new segments are covered, then one cumulative
ACK acknowledges the whole run.  Anything that transport correctness depends
on still ACKs immediately — an out-of-order or duplicate segment (duplicate
ACKs drive fast retransmit) and flow completion — and a held ACK is flushed
by a short timer so a stalled sender window cannot deadlock.  The default
``ack_every=1`` keeps the historical one-ACK-per-segment wire behaviour
byte-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional

from repro.exceptions import SimulationError
from repro.simulator.flow import Flow, ReceiverState, SenderState
from repro.simulator.packet import ACK_PACKET_BYTES, DATA_PACKET_BYTES, Packet, PacketKind

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.network import Network

__all__ = ["Host"]


class Host:
    """A traffic endpoint attached to one edge switch."""

    #: Delay (ms) before a held coalesced ACK is flushed if no further
    #: delivery triggers it — a few serialization times, so a sender whose
    #: window stalls on a held ACK resumes well before any RTO fires.
    ACK_FLUSH_DELAY = 0.2

    def __init__(
        self,
        network: "Network",
        name: str,
        window: int = 12,
        rto: float = 5.0,
        transport: str = "fixed",
        ack_every: int = 1,
    ):
        self.network = network
        self.sim = network.sim
        self.stats = network.stats
        self.name = name
        self.window = window
        self.rto = rto
        self.transport = transport
        self.ack_every = max(1, int(ack_every))

        self.uplink = None  # type: ignore[assignment]  # set by Network wiring
        self._senders: Dict[int, SenderState] = {}
        self._receivers: Dict[int, ReceiverState] = {}
        #: Coalesced-ACK state per receiving flow: [last acked seq sent on the
        #: wire, flush-timer armed?].  Only populated when ``ack_every > 1``.
        self._held_acks: Dict[int, list] = {}
        self._streams: Dict[int, dict] = {}
        self._stream_counter = 0

    # ------------------------------------------------------------------ flows

    def start_flow(self, flow: Flow) -> None:
        """Begin transmitting a flow (called by the network at the arrival time)."""
        if flow.src_host != self.name:
            raise SimulationError(f"flow {flow.flow_id} does not originate at host {self.name}")
        sender = SenderState(flow, self.window, self.rto, transport=self.transport)
        self._senders[flow.flow_id] = sender
        self.stats.register_flow(flow.flow_id, flow.src_host, flow.dst_host,
                                 flow.size_packets, self.sim.now)
        self._pump(flow.flow_id)
        self.sim.call_later(sender.first_check_delay(), self._check_timeout,
                            flow.flow_id)

    def _pump(self, flow_id: int) -> None:
        """Send as many new segments as the (congestion) window allows."""
        sender = self._senders.get(flow_id)
        if sender is None or sender.completed:
            return
        if sender.transport == "paced":
            self._pump_paced(flow_id, sender)
            return
        while sender.can_send():
            self._send_segment(sender)

    def _pump_paced(self, flow_id: int, sender: SenderState) -> None:
        """Send one segment and arm a pacing tick for the next."""
        if sender.pacing_armed or not sender.can_send():
            return
        self._send_segment(sender)
        sender.pacing_armed = True
        self.sim.call_later(sender.pacing_interval(), self._pace_tick, flow_id)

    def _pace_tick(self, flow_id: int) -> None:
        sender = self._senders.get(flow_id)
        if sender is None or sender.completed:
            return
        sender.pacing_armed = False
        self._pump_paced(flow_id, sender)

    def _send_segment(self, sender: SenderState) -> None:
        seq = sender.next_seq
        sender.note_sent(seq, self.sim.now)
        sender.next_seq = seq + 1
        self._transmit(self._data_packet(sender, seq))

    def _data_packet(self, sender: SenderState, seq: int) -> Packet:
        return Packet(
            kind=PacketKind.DATA,
            src_host=self.name,
            dst_host=sender.flow.dst_host,
            flow_id=sender.flow.flow_id,
            seq=seq,
            size_bytes=DATA_PACKET_BYTES,
            created_at=self.sim.now,
        )

    def _transmit(self, packet: Packet) -> None:
        packet.src_switch = self.network.attachment_switch(packet.src_host)
        packet.dst_switch = self.network.attachment_switch(packet.dst_host)
        if self.uplink is None:
            raise SimulationError(f"host {self.name} has no uplink")
        self.uplink.enqueue(packet)

    def _check_timeout(self, flow_id: int) -> None:
        sender = self._senders.get(flow_id)
        if sender is None:
            return
        if sender.completed:
            self._finish_sender(flow_id, sender)
            return
        if sender.timeout_expired(self.sim.now):
            sender.retransmit(self.sim.now)
            self.stats.record_retransmission(flow_id)
            self._pump(flow_id)
        # Re-arm at the earliest instant the flow could possibly time out
        # (last_progress + rto), so no check ever fires before an expiry is
        # possible.  In the cwnd modes the cadence is the srtt-derived
        # per-flow RTO — faster loss detection inherently means more checks
        # per flow, bounded by the flow's (short) lifetime.  "fixed" mode
        # keeps the host-constant cadence, leaving its event schedule
        # unchanged.
        delay = sender.current_rto()
        if sender.transport != "fixed":
            remaining = sender.last_progress_time + delay - self.sim.now
            if remaining > 0:
                delay = remaining
        self.sim.call_later(delay, self._check_timeout, flow_id)

    def _finish_sender(self, flow_id: int, sender: SenderState) -> None:
        """Report transport summaries and drop sender state on completion."""
        self.stats.record_transport(flow_id, final_cwnd=sender.cwnd,
                                    max_cwnd=sender.max_cwnd)
        del self._senders[flow_id]

    # --------------------------------------------------------------- streams

    def start_constant_stream(self, dst_host: str, rate: float, duration: float) -> int:
        """Send full-size packets to ``dst_host`` at ``rate`` packets/ms for ``duration`` ms.

        Used by the failure-recovery experiment; no ACKs or retransmissions
        (so every delivered packet counts as goodput).  Returns a stream id;
        the stream's state is dropped when it ends.
        """
        if rate <= 0:
            raise SimulationError("stream rate must be positive")
        self._stream_counter += 1
        stream_id = self._stream_counter
        self._streams[stream_id] = {
            "dst": dst_host,
            "interval": 1.0 / rate,
            "end": self.sim.now + duration,
            "seq": 0,
        }
        self.sim.call_later(0.0, self._stream_tick, stream_id)
        return stream_id

    def _stream_tick(self, stream_id: int) -> None:
        stream = self._streams.get(stream_id)
        if stream is None:
            return
        if self.sim.now > stream["end"]:
            del self._streams[stream_id]
            return
        packet = Packet(
            kind=PacketKind.DATA,
            src_host=self.name,
            dst_host=stream["dst"],
            flow_id=-stream_id,           # negative ids mark unreliable streams
            seq=stream["seq"],
            size_bytes=DATA_PACKET_BYTES,
            created_at=self.sim.now,
        )
        stream["seq"] += 1
        self._transmit(packet)
        self.sim.call_later(stream["interval"], self._stream_tick, stream_id)

    # ---------------------------------------------------------------- receive

    def receive(self, packet: Packet, inport: str) -> None:
        """Entry point for packets delivered by the attachment switch."""
        if packet.is_data:
            self._receive_data(packet)
        elif packet.is_ack:
            self._receive_ack(packet)
        # Probes terminating at a host are silently ignored (should not happen).

    def _receive_data(self, packet: Packet) -> None:
        if packet.flow_id < 0:
            # Unreliable stream: no retransmissions, every delivery is unique;
            # no ACKs, no completion tracking.
            self.stats.record_delivery(packet, self.sim.now)
            return
        flow_id = packet.flow_id
        receiver = self._receivers.get(flow_id)
        if receiver is None:
            receiver = ReceiverState(flow_id, packet.src_host)
            self._receivers[flow_id] = receiver
        self.stats.record_delivery(packet, self.sim.now,
                                   duplicate=receiver.has_seen(packet.seq))
        total = self.stats.flows[flow_id].size_packets if flow_id in self.stats.flows \
            else packet.seq + 1
        previous_ack = receiver.cumulative_ack
        ack_seq = receiver.on_data(packet.seq, total)
        if receiver.completed:
            self.stats.complete_flow(flow_id, self.sim.now)
        if self.ack_every > 1:
            # Coalescing applies only to in-order progress on an incomplete
            # flow; out-of-order and duplicate segments must produce their
            # duplicate ACK immediately (fast retransmit depends on them) and
            # the completing segment must not wait on a flush timer.
            if ack_seq > previous_ack and not receiver.completed:
                state = self._held_acks.get(flow_id)
                if state is None:
                    state = self._held_acks[flow_id] = [previous_ack, False]
                if ack_seq - state[0] < self.ack_every:
                    if not state[1]:
                        state[1] = True
                        self.sim.call_later(self.ACK_FLUSH_DELAY,
                                            self._flush_held_ack, flow_id)
                    return
                state[0] = ack_seq
            elif receiver.completed:
                self._held_acks.pop(flow_id, None)
            else:
                state = self._held_acks.get(flow_id)
                if state is not None:
                    # The immediate (duplicate) ACK also covers any held run.
                    state[0] = ack_seq
        self._send_ack(flow_id, packet.src_host, ack_seq)

    def _send_ack(self, flow_id: int, dst_host: str, ack_seq: int) -> None:
        self._transmit(Packet(
            kind=PacketKind.ACK,
            src_host=self.name,
            dst_host=dst_host,
            flow_id=flow_id,
            ack_seq=ack_seq,
            size_bytes=ACK_PACKET_BYTES,
            created_at=self.sim.now,
        ))

    def _flush_held_ack(self, flow_id: int) -> None:
        """Send a held coalesced ACK if no later delivery already covered it."""
        state = self._held_acks.get(flow_id)
        if state is None:
            return
        state[1] = False
        receiver = self._receivers.get(flow_id)
        if receiver is None:
            return
        ack_seq = receiver.cumulative_ack
        if ack_seq > state[0] and not receiver.completed:
            state[0] = ack_seq
            self._send_ack(flow_id, receiver.src_host, ack_seq)

    def _receive_ack(self, packet: Packet) -> None:
        sender = self._senders.get(packet.flow_id)
        if sender is None:
            return
        if sender.on_ack(packet.ack_seq, self.sim.now):
            if sender.completed:
                self._finish_sender(packet.flow_id, sender)
            else:
                self._pump(packet.flow_id)
        elif sender.on_duplicate_ack(packet.ack_seq):
            # Fast retransmit: resend only the first unacked segment — the
            # receiver caches out-of-order segments, so one resend advances
            # the cumulative ACK past the cached tail.
            self.stats.record_retransmission(packet.flow_id, fast=True)
            self._transmit(self._data_packet(sender, sender.cumulative_ack))
            self._pump(packet.flow_id)

    def __repr__(self) -> str:
        return f"Host({self.name})"
