"""Discrete-event simulation engine.

A minimal, deterministic event loop.  Heap entries are plain
``(time, sequence, callback, args)`` tuples: the sequence number is unique, so
tuple comparison never reaches the callback and runs entirely in C.  The
sequence number also breaks ties so that events scheduled earlier run earlier,
which keeps runs bit-for-bit reproducible for a given seed — a property every
experiment in EXPERIMENTS.md relies on.

Four scheduling tiers exist, from hottest to most featureful:

* :meth:`Simulator.call_batched` — the batch lane: same-timestamp
  registrations coalesce under **one** heap entry whose members run in exact
  FIFO registration order.  The probe control plane uses this tier — a probe
  wave of thousands of same-tick deliveries costs one heap push and one pop
  instead of one each per probe.  Ordering contract: scheduling any
  *non-lane* event at the open batch's timestamp seals the batch (later lane
  registrations at that time start a new entry), so the relative order of
  lane and non-lane events at one timestamp is exactly what per-event
  scheduling would have produced.
* :meth:`Simulator.call_later` / :meth:`Simulator.call_at` — the fast path:
  no per-event wrapper object is allocated and the event cannot be cancelled.
  The per-packet machinery (link serialization, delivery) uses this tier.
* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` — returns an
  :class:`Event` handle supporting :meth:`Event.cancel`.  Cancellation marks
  the handle inactive and the heap entry expires when popped (no heap scan).
* :meth:`Simulator.schedule_periodic` — a recurring event that re-arms itself
  without allocating a new handle per round; periodic probe floods coalesce
  their per-round work under a single recurring entry.

Times are floats in **milliseconds** throughout the simulator.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.exceptions import SimulationError

__all__ = ["Simulator", "Event", "PeriodicEvent", "BATCH_LANE_DEFAULT"]

#: Process-wide default for the batch lane.  Tests force-disable it (each
#: lane registration then becomes its own heap entry, reproducing the
#: pre-batching event schedule exactly) to prove batching changes nothing.
BATCH_LANE_DEFAULT = True


class Event:
    """A cancellable scheduled callback (the featureful scheduling tier).

    ``active`` means *pending*: it turns False when the event fires or is
    cancelled, so cancelling an already-fired event is a harmless no-op.
    """

    __slots__ = ("time", "callback", "args", "active", "_sim")

    def __init__(self, sim: "Simulator", time: float, callback: Callable[..., None],
                 args: Tuple):
        self._sim = sim
        self.time = time
        self.callback = callback
        self.args = args
        self.active = True

    def cancel(self) -> None:
        """Prevent a pending event from firing (it expires in the heap; no scan)."""
        if self.active:
            self.active = False
            self._sim._cancelled += 1

    def _fire(self) -> None:
        self.active = False  # fired: a later cancel() must not touch counters
        self.callback(*self.args)


class PeriodicEvent:
    """A recurring callback that re-arms itself every ``period`` milliseconds.

    One handle serves every round: re-arming pushes a fresh heap tuple but
    allocates no new wrapper, so periodic floods (probe rounds, failure
    checks) cost one heap operation per round regardless of how much work the
    callback batches.
    """

    __slots__ = ("period", "callback", "args", "active", "_sim")

    def __init__(self, sim: "Simulator", period: float, callback: Callable[..., None],
                 args: Tuple):
        self._sim = sim
        self.period = period
        self.callback = callback
        self.args = args
        self.active = True

    def cancel(self) -> None:
        """Stop the recurrence; the pending firing expires silently."""
        if self.active:
            self.active = False
            self._sim._cancelled += 1

    def _fire(self) -> None:
        self.callback(*self.args)
        if self.active:  # the callback may have cancelled the recurrence
            self._sim._push(self._sim._now + self.period, _fire_handle, (self,))
        else:
            # Cancelled from within its own callback: the entry that cancel()
            # accounted for was already popped and none will be re-armed, so
            # undo the bookkeeping to keep pending_events exact.
            self._sim._cancelled -= 1


class Simulator:
    """The event loop shared by every component of one simulation run.

    ``sanitize=True`` constructs a
    :class:`~repro.simulator.sanitizer.SanitizingSimulator` instead — same
    schedule, same clock, plus provenance tags and invariant checks.  With
    sanitize off (the default) this class is byte-for-byte the engine it
    always was: the sanitizer module is not even imported unless requested,
    so the hot loop carries zero overhead (ARCHITECTURE.md §6).
    """

    def __new__(cls, batching: Optional[bool] = None,
                sanitize: Optional[bool] = None) -> "Simulator":
        if cls is Simulator:
            if sanitize is None:
                from repro.simulator.sanitizer import SANITIZE_DEFAULT
                sanitize = SANITIZE_DEFAULT
            if sanitize:
                from repro.simulator.sanitizer import SanitizingSimulator
                return super().__new__(SanitizingSimulator)
        return super().__new__(cls)

    def __init__(self, batching: Optional[bool] = None,
                 sanitize: Optional[bool] = None) -> None:
        self._now = 0.0
        #: heap of (time, seq, callback, args); seq is unique so comparisons
        #: never inspect the callback.
        self._queue: List[Tuple[float, int, Callable[..., None], Tuple]] = []
        self._sequence = 0
        self._events_processed = 0
        self._stopped = False
        #: heap entries whose handle was cancelled but that still await expiry.
        self._cancelled = 0
        #: Batch lane state: the timestamp of the currently open batch (-1.0
        #: when none), its member list (shared with the heap entry), and the
        #: member/entry counters that keep ``pending_events`` exact.
        self._batching = BATCH_LANE_DEFAULT if batching is None else batching
        self._batch_time = -1.0
        self._batch: Optional[List] = None
        self._batch_pending = 0
        self._batch_entries = 0

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Events executed so far (cancelled expiries are not counted)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events scheduled and not cancelled (O(1); no heap scan).

        A coalesced batch entry counts once per member, so the number is
        identical with the batch lane on or off.
        """
        return (len(self._queue) - self._cancelled - self._batch_entries
                + self._batch_pending)

    # ------------------------------------------------------------- scheduling

    def _push(self, time: float, callback: Callable[..., None], args: Tuple) -> None:
        if time == self._batch_time:
            self._batch_time = -1.0     # seal: preserve order vs lane members
        seq = self._sequence
        self._sequence = seq + 1
        heapq.heappush(self._queue, (time, seq, callback, args))

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast path: schedule a non-cancellable ``callback(*args)`` after ``delay`` ms."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} ms in the past")
        time = self._now + delay
        if time == self._batch_time:
            self._batch_time = -1.0
        seq = self._sequence
        self._sequence = seq + 1
        heapq.heappush(self._queue, (time, seq, callback, args))

    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast path: schedule a non-cancellable ``callback(*args)`` at an absolute time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} ms, current time is {self._now} ms")
        if time == self._batch_time:
            self._batch_time = -1.0
        seq = self._sequence
        self._sequence = seq + 1
        heapq.heappush(self._queue, (time, seq, callback, args))

    def call_batched(self, time: float, callback: Callable[..., None], key: Any,
                     arg: Any) -> None:
        """Batch lane: schedule ``callback(key, args)`` at an absolute time.

        Same-timestamp lane registrations coalesce under one heap entry and
        execute in exact FIFO registration order when it pops.  Consecutive
        registrations with the same ``(callback, key)`` additionally merge
        into a single call receiving the list of their ``arg`` values — the
        links use this to turn a same-arrival-time probe wave into one
        delivery call per ``(link, tick)`` run.  ``key`` rides along so a
        callback can version its batch (links pass their fail epoch: a
        mid-tick failure naturally splits the run).

        Ordering contract: scheduling any *non-lane* event at the open
        batch's timestamp seals it, so relative order against non-lane events
        is exactly what per-event scheduling produces.  With the lane
        disabled each registration is its own heap entry carrying a
        single-member list — byte-identical schedules either way.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} ms, current time is {self._now} ms")
        if not self._batching:
            self._push(time, callback, (key, [arg]))
            return
        if time != self._batch_time:
            members: List = []
            self._batch = members
            self._batch_time = time
            seq = self._sequence
            self._sequence = seq + 1
            heapq.heappush(self._queue, (time, seq, _fire_batch, (self, members)))
            self._batch_entries += 1
        else:
            members = self._batch
            tail = members[-1]
            if tail[0] is callback and tail[1] == key:
                tail[2].append(arg)
                self._batch_pending += 1
                return
        members.append((callback, key, [arg]))
        self._batch_pending += 1

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule a cancellable ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} ms in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule a cancellable ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} ms, current time is {self._now} ms")
        event = Event(self, time, callback, args)
        self._push(time, _fire_handle, (event,))
        return event

    def schedule_periodic(self, period: float, callback: Callable[..., None],
                          *args: Any, start_delay: float = 0.0) -> PeriodicEvent:
        """Run ``callback(*args)`` every ``period`` ms, first after ``start_delay``."""
        if period <= 0:
            raise SimulationError(f"periodic events need a positive period, got {period}")
        if start_delay < 0:
            raise SimulationError(f"cannot schedule an event {start_delay} ms in the past")
        event = PeriodicEvent(self, period, callback, args)
        self._push(self._now + start_delay, _fire_handle, (event,))
        return event

    # ---------------------------------------------------------------- running

    def stop(self) -> None:
        """Stop the run after the currently executing event returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the simulation time afterwards.

        The boundary is inclusive: ``run(until=t)`` processes every event with
        time ``<= t`` and leaves the clock at exactly ``t`` (never beyond).

        ``max_events`` counts heap entries, so a coalesced batch-lane entry —
        however many registrations it carries — consumes one unit; it is a
        debugging stepper, not part of the batching equivalence contract
        (``events_processed``/``pending_events`` stay per-registration).
        """
        self._stopped = False
        queue = self._queue
        processed_this_call = 0
        while queue and not self._stopped:
            entry = queue[0]
            if until is not None and entry[0] > until:
                self._now = until
                return self._now
            heapq.heappop(queue)
            callback = entry[2]
            if callback is _fire_handle and not entry[3][0].active:
                # Cancelled handle expiring: consume the tombstone without
                # advancing the clock or counting an event (one pointer
                # comparison per pop keeps the fast path fast).
                self._cancelled -= 1
                continue
            self._now = entry[0]
            callback(*entry[3])
            self._events_processed += 1
            processed_this_call += 1
            if max_events is not None and processed_this_call >= max_events:
                break
        if self._stopped:
            # A stop during a batch member re-queues the unrun tail; make sure
            # a stale open-batch pointer cannot absorb later registrations
            # ahead of it.
            self._batch_time = -1.0
        if until is not None and not queue:
            self._now = max(self._now, until)
        return self._now


def _fire_handle(handle: "Event | PeriodicEvent") -> None:
    """Shared trampoline for cancellable and periodic handles.

    The run loop recognizes this function by identity to expire cancelled
    entries without executing, advancing the clock, or counting an event.
    """
    handle._fire()


def _fire_batch(sim: "Simulator", members: List) -> None:
    """Execute one coalesced batch entry's members in FIFO order.

    Each member is ``(callback, key, args)`` and fires as ``callback(key,
    args)``; ``args`` holds every merged registration of a consecutive
    ``(callback, key)`` run, so event accounting counts registrations, not
    members — ``events_processed`` and ``pending_events`` read identically
    with the lane on or off.  A ``stop()`` raised by a member re-queues the
    unrun tail at the same timestamp (exactly the entries per-event
    scheduling would have left in the heap).
    """
    if members is sim._batch:
        sim._batch_time = -1.0
        sim._batch = None
    sim._batch_entries -= 1
    fired = 0
    for index, (callback, key, args) in enumerate(members):
        callback(key, args)
        fired += len(args)
        if sim._stopped and index + 1 < len(members):
            rest = members[index + 1:]
            seq = sim._sequence
            sim._sequence = seq + 1
            heapq.heappush(sim._queue, (sim._now, seq, _fire_batch, (sim, rest)))
            sim._batch_entries += 1
            break
    sim._batch_pending -= fired
    sim._events_processed += fired - 1      # the run loop adds the final 1
