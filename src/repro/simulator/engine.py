"""Discrete-event simulation engine.

A minimal, deterministic event loop.  Heap entries are plain
``(time, sequence, callback, args)`` tuples: the sequence number is unique, so
tuple comparison never reaches the callback and runs entirely in C.  The
sequence number also breaks ties so that events scheduled earlier run earlier,
which keeps runs bit-for-bit reproducible for a given seed — a property every
experiment in EXPERIMENTS.md relies on.

Three scheduling tiers exist, from hottest to most featureful:

* :meth:`Simulator.call_later` / :meth:`Simulator.call_at` — the fast path:
  no per-event wrapper object is allocated and the event cannot be cancelled.
  The per-packet machinery (link serialization, delivery) uses this tier.
* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` — returns an
  :class:`Event` handle supporting :meth:`Event.cancel`.  Cancellation marks
  the handle inactive and the heap entry expires when popped (no heap scan).
* :meth:`Simulator.schedule_periodic` — a recurring event that re-arms itself
  without allocating a new handle per round; periodic probe floods coalesce
  their per-round work under a single recurring entry.

Times are floats in **milliseconds** throughout the simulator.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.exceptions import SimulationError

__all__ = ["Simulator", "Event", "PeriodicEvent"]


class Event:
    """A cancellable scheduled callback (the featureful scheduling tier).

    ``active`` means *pending*: it turns False when the event fires or is
    cancelled, so cancelling an already-fired event is a harmless no-op.
    """

    __slots__ = ("time", "callback", "args", "active", "_sim")

    def __init__(self, sim: "Simulator", time: float, callback: Callable[..., None],
                 args: Tuple):
        self._sim = sim
        self.time = time
        self.callback = callback
        self.args = args
        self.active = True

    def cancel(self) -> None:
        """Prevent a pending event from firing (it expires in the heap; no scan)."""
        if self.active:
            self.active = False
            self._sim._cancelled += 1

    def _fire(self) -> None:
        self.active = False  # fired: a later cancel() must not touch counters
        self.callback(*self.args)


class PeriodicEvent:
    """A recurring callback that re-arms itself every ``period`` milliseconds.

    One handle serves every round: re-arming pushes a fresh heap tuple but
    allocates no new wrapper, so periodic floods (probe rounds, failure
    checks) cost one heap operation per round regardless of how much work the
    callback batches.
    """

    __slots__ = ("period", "callback", "args", "active", "_sim")

    def __init__(self, sim: "Simulator", period: float, callback: Callable[..., None],
                 args: Tuple):
        self._sim = sim
        self.period = period
        self.callback = callback
        self.args = args
        self.active = True

    def cancel(self) -> None:
        """Stop the recurrence; the pending firing expires silently."""
        if self.active:
            self.active = False
            self._sim._cancelled += 1

    def _fire(self) -> None:
        self.callback(*self.args)
        if self.active:  # the callback may have cancelled the recurrence
            self._sim._push(self._sim._now + self.period, _fire_handle, (self,))
        else:
            # Cancelled from within its own callback: the entry that cancel()
            # accounted for was already popped and none will be re-armed, so
            # undo the bookkeeping to keep pending_events exact.
            self._sim._cancelled -= 1


class Simulator:
    """The event loop shared by every component of one simulation run."""

    def __init__(self) -> None:
        self._now = 0.0
        #: heap of (time, seq, callback, args); seq is unique so comparisons
        #: never inspect the callback.
        self._queue: List[Tuple[float, int, Callable[..., None], Tuple]] = []
        self._sequence = 0
        self._events_processed = 0
        self._stopped = False
        #: heap entries whose handle was cancelled but that still await expiry.
        self._cancelled = 0

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Events executed so far (cancelled expiries are not counted)."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events scheduled and not cancelled (O(1); no heap scan)."""
        return len(self._queue) - self._cancelled

    # ------------------------------------------------------------- scheduling

    def _push(self, time: float, callback: Callable[..., None], args: Tuple) -> None:
        seq = self._sequence
        self._sequence = seq + 1
        heapq.heappush(self._queue, (time, seq, callback, args))

    def call_later(self, delay: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast path: schedule a non-cancellable ``callback(*args)`` after ``delay`` ms."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} ms in the past")
        seq = self._sequence
        self._sequence = seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, callback, args))

    def call_at(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Fast path: schedule a non-cancellable ``callback(*args)`` at an absolute time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} ms, current time is {self._now} ms")
        seq = self._sequence
        self._sequence = seq + 1
        heapq.heappush(self._queue, (time, seq, callback, args))

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule a cancellable ``callback(*args)`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} ms in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule a cancellable ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} ms, current time is {self._now} ms")
        event = Event(self, time, callback, args)
        self._push(time, _fire_handle, (event,))
        return event

    def schedule_periodic(self, period: float, callback: Callable[..., None],
                          *args: Any, start_delay: float = 0.0) -> PeriodicEvent:
        """Run ``callback(*args)`` every ``period`` ms, first after ``start_delay``."""
        if period <= 0:
            raise SimulationError(f"periodic events need a positive period, got {period}")
        if start_delay < 0:
            raise SimulationError(f"cannot schedule an event {start_delay} ms in the past")
        event = PeriodicEvent(self, period, callback, args)
        self._push(self._now + start_delay, _fire_handle, (event,))
        return event

    # ---------------------------------------------------------------- running

    def stop(self) -> None:
        """Stop the run after the currently executing event returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the simulation time afterwards.

        The boundary is inclusive: ``run(until=t)`` processes every event with
        time ``<= t`` and leaves the clock at exactly ``t`` (never beyond).
        """
        self._stopped = False
        queue = self._queue
        processed_this_call = 0
        while queue and not self._stopped:
            entry = queue[0]
            if until is not None and entry[0] > until:
                self._now = until
                return self._now
            heapq.heappop(queue)
            callback = entry[2]
            if callback is _fire_handle and not entry[3][0].active:
                # Cancelled handle expiring: consume the tombstone without
                # advancing the clock or counting an event (one pointer
                # comparison per pop keeps the fast path fast).
                self._cancelled -= 1
                continue
            self._now = entry[0]
            callback(*entry[3])
            self._events_processed += 1
            processed_this_call += 1
            if max_events is not None and processed_this_call >= max_events:
                break
        if until is not None and not queue:
            self._now = max(self._now, until)
        return self._now


def _fire_handle(handle) -> None:
    """Shared trampoline for cancellable and periodic handles.

    The run loop recognizes this function by identity to expire cancelled
    entries without executing, advancing the clock, or counting an event.
    """
    handle._fire()
