"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are ``(time, sequence, callback)``
triples in a binary heap.  The sequence number breaks ties so that events
scheduled earlier run earlier, which keeps runs bit-for-bit reproducible for a
given seed — a property every experiment in EXPERIMENTS.md relies on.

Times are floats in **milliseconds** throughout the simulator.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.exceptions import SimulationError

__all__ = ["Simulator", "Event"]


class Event:
    """A scheduled callback; cancellation simply marks it inactive."""

    __slots__ = ("time", "seq", "callback", "args", "active")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: Tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.active = True

    def cancel(self) -> None:
        """Prevent the event from firing (it stays in the heap but is skipped)."""
        self.active = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class Simulator:
    """The event loop shared by every component of one simulation run."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._stopped = False

    @property
    def now(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._queue if e.active)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` milliseconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule an event {delay} ms in the past")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule an event at {time} ms, current time is {self._now} ms")
        event = Event(time, next(self._sequence), callback, args)
        heapq.heappush(self._queue, event)
        return event

    def stop(self) -> None:
        """Stop the run after the currently executing event returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Process events until the queue drains, ``until`` is reached, or
        ``max_events`` have run.  Returns the simulation time afterwards."""
        self._stopped = False
        processed_this_call = 0
        while self._queue and not self._stopped:
            event = self._queue[0]
            if until is not None and event.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            if not event.active:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._events_processed += 1
            processed_this_call += 1
            if max_events is not None and processed_this_call >= max_events:
                break
        if until is not None and not self._queue:
            self._now = max(self._now, until)
        return self._now
