"""Discrete-event network simulator substrate (the reproduction's ns-3 stand-in)."""

from repro.simulator.accumulators import ReservoirSampler, StreamingHistogram
from repro.simulator.engine import Event, PeriodicEvent, Simulator
from repro.simulator.flow import TRANSPORT_MODES, Flow, ReceiverState, SenderState
from repro.simulator.host import Host
from repro.simulator.link import SimLink
from repro.simulator.network import Network, RoutingSystem
from repro.simulator.packet import (
    ACK_PACKET_BYTES,
    BASE_PROBE_BYTES,
    DATA_PACKET_BYTES,
    Packet,
    PacketKind,
)
from repro.simulator.stats import FlowRecord, StatsCollector
from repro.simulator.switchnode import RoutingLogic, SwitchNode

__all__ = [
    "Simulator",
    "Event",
    "PeriodicEvent",
    "Flow",
    "TRANSPORT_MODES",
    "SenderState",
    "ReceiverState",
    "Host",
    "SimLink",
    "Network",
    "RoutingSystem",
    "Packet",
    "PacketKind",
    "DATA_PACKET_BYTES",
    "ACK_PACKET_BYTES",
    "BASE_PROBE_BYTES",
    "StatsCollector",
    "FlowRecord",
    "StreamingHistogram",
    "ReservoirSampler",
    "RoutingLogic",
    "SwitchNode",
]
