"""Streaming statistical accumulators.

The per-packet measurement hooks of :class:`~repro.simulator.stats
.StatsCollector` must be O(1) time and O(1) memory per sample so that stats
collection never dominates a run (the seed implementation kept every queue
sample in an unbounded Python list).  Two accumulators cover the needs of the
paper's figures:

* :class:`StreamingHistogram` — exact percentiles for small-integer-valued
  streams (queue lengths are bounded by the buffer size), using a counts
  dictionary.  Percentiles interpolate exactly like ``numpy.percentile``'s
  default *linear* method, so refactoring the collector onto it changed no
  reported number.
* :class:`ReservoirSampler` — uniform fixed-size sample of an unbounded
  stream, for quantities without a small discrete domain (e.g. sampled
  delivered paths).  Deterministic: the reservoir is driven by its own seeded
  PRNG, never the global one.
* :class:`HyperLogLog` — approximate distinct-count sketch for flow
  cardinality at million-flow scale, where an exact per-switch flow set would
  cost O(flows) memory per switch.  Deterministic: items are hashed with
  blake2b (never Python's salted ``hash``), so two identically fed sketches
  agree register-for-register and the estimate is a pure function of the
  offered multiset.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Dict, Iterable, List, Sequence, Tuple

__all__ = ["StreamingHistogram", "ReservoirSampler", "HyperLogLog"]


class StreamingHistogram:
    """Exact streaming percentiles over a discrete (integer-valued) stream."""

    __slots__ = ("_counts", "_total", "_min", "_max")

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._total = 0
        self._min = 0
        self._max = 0

    def record(self, value: int) -> None:
        """Add one observation. O(1)."""
        counts = self._counts
        counts[value] = counts.get(value, 0) + 1
        if self._total == 0:
            self._min = self._max = value
        else:
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
        self._total += 1

    @property
    def count(self) -> int:
        return self._total

    @property
    def max(self) -> int:
        return self._max

    @property
    def min(self) -> int:
        return self._min

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100), matching numpy's linear method.

        Returns 0.0 for an empty histogram.
        """
        if self._total == 0:
            return 0.0
        # numpy's linear interpolation: virtual index h = (n-1) * q / 100.
        h = (self._total - 1) * (q / 100.0)
        lower_index = int(h)
        fraction = h - lower_index
        lower = self._value_at(lower_index)
        if fraction == 0.0:
            return float(lower)
        upper = self._value_at(lower_index + 1)
        return lower + (upper - lower) * fraction

    def percentiles(self, qs: Sequence[float]) -> List[float]:
        return [self.percentile(q) for q in qs]

    def _value_at(self, index: int) -> int:
        """The value at ``index`` of the (virtual) sorted sample array."""
        remaining = index
        for value in sorted(self._counts):
            bucket = self._counts[value]
            if remaining < bucket:
                return value
            remaining -= bucket
        return self._max

    def items(self) -> List[Tuple[int, int]]:
        """(value, count) pairs in increasing value order."""
        return sorted(self._counts.items())


class HyperLogLog:
    """Flajolet's HyperLogLog distinct-count estimator, pure Python.

    ``2**precision`` one-byte registers (the default 1024 gives a standard
    error of ``1.04 / sqrt(1024)`` ≈ 3.3%), fed from a 64-bit blake2b digest:
    the top ``precision`` bits select a register, the remaining bits supply
    the leading-zero rank.  ``add`` is O(1); memory is constant.  The
    small-range correction (linear counting while registers are mostly empty)
    makes the estimate near-exact for the cardinalities unit tests use.

    Determinism contract: ``repr`` of the item keys the hash, so offer only
    values with stable reprs (ints, strings, tuples thereof) — never objects
    whose repr embeds an ``id()``.
    """

    __slots__ = ("precision", "_registers", "_tail_bits")

    def __init__(self, precision: int = 10):
        if not 4 <= precision <= 16:
            raise ValueError(f"HyperLogLog precision must be in [4, 16], got {precision}")
        self.precision = precision
        self._registers = bytearray(1 << precision)
        self._tail_bits = 64 - precision

    def add(self, item) -> None:
        """Offer one item. O(1); duplicates never change the estimate."""
        digest = hashlib.blake2b(repr(item).encode("utf-8"), digest_size=8).digest()
        value = int.from_bytes(digest, "big")
        index = value >> self._tail_bits
        tail = value & ((1 << self._tail_bits) - 1)
        rank = self._tail_bits - tail.bit_length() + 1
        if rank > self._registers[index]:
            self._registers[index] = rank

    def estimate(self) -> float:
        """Approximate number of distinct items offered so far."""
        m = len(self._registers)
        alpha = 0.7213 / (1.0 + 1.079 / m)
        raw = alpha * m * m / sum(2.0 ** -r for r in self._registers)
        zeros = self._registers.count(0)
        if raw <= 2.5 * m and zeros:
            return m * math.log(m / zeros)
        return raw

    def merge(self, other: "HyperLogLog") -> None:
        """Fold another sketch in (register-wise max): the union estimate."""
        if other.precision != self.precision:
            raise ValueError("cannot merge HyperLogLog sketches of different precision")
        registers = self._registers
        for index, rank in enumerate(other._registers):
            if rank > registers[index]:
                registers[index] = rank


class ReservoirSampler:
    """Fixed-size uniform sample of an unbounded stream (Vitter's algorithm R).

    Bounded memory regardless of stream length; every element has equal
    probability ``capacity / n`` of being retained.  Sampling decisions come
    from a private seeded PRNG, so two identically fed reservoirs agree
    element-for-element — run-to-run determinism never depends on global
    random state.
    """

    __slots__ = ("capacity", "_samples", "_seen", "_rng")

    def __init__(self, capacity: int, seed: int = 0):
        if capacity <= 0:
            raise ValueError(f"reservoir capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._samples: List = []
        self._seen = 0
        self._rng = random.Random(seed)

    def offer(self, item) -> None:
        """Consider one stream element for inclusion. O(1)."""
        self._seen += 1
        if len(self._samples) < self.capacity:
            self._samples.append(item)
            return
        slot = self._rng.randrange(self._seen)
        if slot < self.capacity:
            self._samples[slot] = item

    @property
    def seen(self) -> int:
        """Total stream elements offered so far."""
        return self._seen

    @property
    def samples(self) -> List:
        """The current sample (at most ``capacity`` elements, arrival order not preserved)."""
        return list(self._samples)

    def __len__(self) -> int:
        return len(self._samples)

    def extend(self, items: Iterable) -> None:
        for item in items:
            self.offer(item)
