"""Flow abstraction and endpoint transport state.

Flows are unidirectional transfers of ``size_packets`` full-size segments.
Senders run a simple window-based, ACK-clocked transport with go-back-N
retransmission on timeout — deliberately simpler than TCP, but sufficient to
make flow completion times respond to queueing, loss and path choice, which is
what the FCT comparisons in the paper measure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Set

__all__ = ["Flow", "SenderState", "ReceiverState"]

_flow_ids = itertools.count()


@dataclass
class Flow:
    """A single flow request produced by the workload generator."""

    src_host: str
    dst_host: str
    size_packets: int
    start_time: float
    flow_id: int = field(default_factory=lambda: next(_flow_ids))

    def __post_init__(self) -> None:
        if self.size_packets < 1:
            self.size_packets = 1


class SenderState:
    """Transport state kept by the sending host for one flow."""

    def __init__(self, flow: Flow, window: int, rto: float):
        self.flow = flow
        self.window = max(1, window)
        self.rto = rto
        self.cumulative_ack = 0          # all seqs < this are acknowledged
        self.next_seq = 0                # next new seq to transmit
        self.last_progress_time = flow.start_time
        self.completed = False
        self.retransmissions = 0

    @property
    def in_flight(self) -> int:
        return self.next_seq - self.cumulative_ack

    def can_send(self) -> bool:
        return (not self.completed
                and self.next_seq < self.flow.size_packets
                and self.in_flight < self.window)

    def on_ack(self, ack_seq: int, now: float) -> bool:
        """Process a cumulative ACK; returns True if it made progress."""
        if ack_seq > self.cumulative_ack:
            self.cumulative_ack = ack_seq
            self.last_progress_time = now
            if self.cumulative_ack >= self.flow.size_packets:
                self.completed = True
            return True
        return False

    def timeout_expired(self, now: float) -> bool:
        return (not self.completed
                and self.in_flight > 0
                and now - self.last_progress_time >= self.rto)

    def retransmit(self, now: float) -> None:
        """Go-back-N: rewind transmission to the first unacknowledged segment."""
        self.next_seq = self.cumulative_ack
        self.last_progress_time = now
        self.retransmissions += 1


class ReceiverState:
    """Transport state kept by the receiving host for one flow."""

    def __init__(self, flow_id: int, src_host: str, size_packets: Optional[int] = None):
        self.flow_id = flow_id
        self.src_host = src_host
        self.size_packets = size_packets
        self.received: Set[int] = set()
        self._cumulative = 0
        self.completed = False

    def on_data(self, seq: int, total_size: int) -> int:
        """Record a data segment; returns the new cumulative ACK value."""
        self.size_packets = total_size
        self.received.add(seq)
        while self._cumulative in self.received:
            self._cumulative += 1
        if self.size_packets is not None and self._cumulative >= self.size_packets:
            self.completed = True
        return self._cumulative

    @property
    def cumulative_ack(self) -> int:
        return self._cumulative
