"""Flow abstraction and endpoint transport state.

Flows are unidirectional transfers of ``size_packets`` full-size segments.
Senders run a window-based, ACK-clocked transport with go-back-N
retransmission on timeout — deliberately simpler than TCP, but sufficient to
make flow completion times respond to queueing, loss and path choice, which is
what the FCT comparisons in the paper measure.

Three transport modes exist (:data:`TRANSPORT_MODES`), selected per host via
the ``transport`` knob on :class:`~repro.simulator.network.Network`:

* ``"fixed"`` — the historical behaviour: the full configured window is
  available from the first segment (hosts blast a window-sized burst at flow
  start).  This is the default and is byte-identical to the pre-cwnd sender.
* ``"slowstart"`` — a congestion window (``cwnd``) governs the send window:
  slow start (cwnd += 1 per newly ACKed segment) up to ``ssthresh``, then
  AIMD congestion avoidance (cwnd += 1/cwnd per ACKed segment, i.e. roughly
  one segment per RTT).  The configured window acts as the receive-window
  cap (TCP's min(cwnd, rwnd)): cwnd never exceeds it, so the cwnd modes are
  never burstier than ``"fixed"``.  A retransmission timeout halves ``ssthresh`` and
  collapses ``cwnd`` to 1; three duplicate ACKs trigger a fast retransmit of
  the first unacknowledged segment and halve ``cwnd`` (the receiver caches
  out-of-order segments, so a single resend advances the cumulative ACK past
  the cached tail).
* ``"paced"`` — ``"slowstart"`` plus packet pacing: instead of bursting the
  whole window, the host spaces transmissions by ``srtt / cwnd`` (one
  RTT-smoothed window per round trip).  RTT is estimated with one outstanding
  timing sample at a time and Karn's rule (retransmitted segments are never
  sampled).

In the cwnd modes the retransmission timeout is **per flow**: once an RTT
sample exists, the RTO follows RFC 6298 (``srtt + 4·rttvar``, floored at
1 ms in the scaled regime, doubled per back-to-back timeout and reset on ACK
progress) and is capped at the host-level constant — so loss recovery reacts
at the flow's own RTT scale instead of a fabric-wide worst case.  ``"fixed"``
mode always uses the host constant, byte-identical to the historical sender.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional, Set

__all__ = ["Flow", "SenderState", "ReceiverState", "TRANSPORT_MODES"]

_flow_ids = itertools.count()

#: Selectable sender behaviours (see the module docstring).
TRANSPORT_MODES = ("fixed", "slowstart", "paced")

#: Slow-start threshold before any loss has been observed (effectively
#: unbounded — standard TCP semantics).
_INITIAL_SSTHRESH = float(1 << 30)

#: RTT estimate used for pacing before the first sample arrives (ms).  One
#: probe period's worth of transit is a reasonable prior in the scaled regime.
_INITIAL_RTT_ESTIMATE = 0.5

#: Lower bound on the srtt-derived per-flow RTO (ms).  RFC 6298 floors the
#: RTO at 1 s against spurious timeouts from delay variance; in the scaled
#: regime (packets serialize in ~10 µs, RTTs are fractions of a millisecond)
#: one millisecond plays the same role.
_MIN_RTO = 1.0

#: Cap on the exponential RTO backoff multiplier applied after repeated
#: timeouts (Karn's backoff); the host-level RTO bounds the result anyway.
_MAX_RTO_BACKOFF = 64.0


@dataclass
class Flow:
    """A single flow request produced by the workload generator."""

    src_host: str
    dst_host: str
    size_packets: int
    start_time: float
    flow_id: int = field(default_factory=lambda: next(_flow_ids))

    def __post_init__(self) -> None:
        if self.size_packets < 1:
            self.size_packets = 1


class SenderState:
    """Transport state kept by the sending host for one flow.

    The sender is a small state machine over ``(cumulative_ack, next_seq,
    cwnd, ssthresh, dup_acks)``; the host drives it from ACK arrivals and RTO
    timer checks.  In ``"fixed"`` mode ``cwnd`` is pinned to the configured
    window and never moves, which preserves the historical behaviour exactly.
    """

    def __init__(self, flow: Flow, window: int, rto: float, transport: str = "fixed"):
        if transport not in TRANSPORT_MODES:
            raise ValueError(
                f"unknown transport mode {transport!r}; available: {TRANSPORT_MODES}")
        self.flow = flow
        self.window = max(1, window)
        self.rto = rto
        self.transport = transport
        self.cwnd = float(self.window) if transport == "fixed" else 1.0
        self.ssthresh = _INITIAL_SSTHRESH
        self.max_cwnd = self.cwnd
        self.cumulative_ack = 0          # all seqs < this are acknowledged
        self.next_seq = 0                # next new seq to transmit
        self.last_progress_time = flow.start_time
        self.completed = False
        self.retransmissions = 0
        self.fast_retransmits = 0
        self.dup_acks = 0
        self.pacing_armed = False        # a pacing tick is already scheduled
        # RTT estimation: one outstanding (seq, send time) sample, Karn's rule.
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._rto_backoff = 1.0          # doubled per RTO, reset on progress
        self._rtt_seq: Optional[int] = None
        self._rtt_sent = 0.0
        self._highest_sent = -1          # highest seq ever transmitted

    @property
    def in_flight(self) -> int:
        return self.next_seq - self.cumulative_ack

    @property
    def effective_window(self) -> int:
        """Segments the sender may keep in flight right now."""
        if self.transport == "fixed":
            return self.window
        return max(1, int(self.cwnd))

    def can_send(self) -> bool:
        return (not self.completed
                and self.next_seq < self.flow.size_packets
                and self.in_flight < self.effective_window)

    # ------------------------------------------------------------------- RTT

    def note_sent(self, seq: int, now: float) -> None:
        """Record the send time of a new segment for RTT estimation.

        Karn's rule: a seq at or below the highest ever transmitted is a
        go-back-N resend — its ACK may belong to the original copy, so it
        must never arm an RTT sample.
        """
        if seq <= self._highest_sent:
            return
        self._highest_sent = seq
        if self._rtt_seq is None:
            self._rtt_seq = seq
            self._rtt_sent = now

    def _sample_rtt(self, ack_seq: int, now: float) -> None:
        if self._rtt_seq is not None and ack_seq > self._rtt_seq:
            sample = now - self._rtt_sent
            if self.srtt is None:
                # RFC 6298 initialisation: SRTT = R, RTTVAR = R/2.
                self.srtt = sample
                self.rttvar = sample / 2.0
            else:
                # RTTVAR before SRTT (the deviation is against the old SRTT).
                self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
                self.srtt = 0.875 * self.srtt + 0.125 * sample
            self._rtt_seq = None

    def current_rto(self) -> float:
        """The retransmission timeout in force for this flow right now.

        ``"fixed"`` mode — and any flow without an RTT sample yet — uses the
        host-level constant, preserving the historical schedule exactly.  The
        cwnd modes derive the RTO from the flow's own Karn-sampled smoothed
        RTT (``srtt + 4·rttvar``, RFC 6298), floored at :data:`_MIN_RTO`
        against spurious timeouts, doubled per back-to-back RTO (Karn's
        backoff, reset on ACK progress) and capped at the host constant so a
        per-flow RTO never reacts *slower* than the old host-level one.
        """
        if self.transport == "fixed" or self.srtt is None:
            return self.rto
        rto = max(_MIN_RTO, self.srtt + 4.0 * (self.rttvar or 0.0))
        return min(self.rto, rto * self._rto_backoff)

    def first_check_delay(self) -> float:
        """When to schedule the first timeout check after flow start.

        The cwnd modes arm at the RTO floor rather than the host constant:
        the flow has no RTT sample yet, but by the time the check fires it
        usually does — so the *first* loss is already detected at the
        per-flow RTO instead of waiting out the host constant (checks chase
        ``last_progress + current_rto()`` from then on).  ``"fixed"`` keeps
        the host constant, preserving its schedule exactly.
        """
        if self.transport == "fixed":
            return self.rto
        return min(self.rto, _MIN_RTO)

    def pacing_interval(self) -> float:
        """Gap between paced transmissions: one cwnd spread over one SRTT."""
        rtt = self.srtt if self.srtt is not None else _INITIAL_RTT_ESTIMATE
        return max(rtt, 1e-6) / max(self.cwnd, 1.0)

    # ------------------------------------------------------------------ ACKs

    def on_ack(self, ack_seq: int, now: float) -> bool:
        """Process a cumulative ACK; returns True if it made progress."""
        if ack_seq > self.cumulative_ack:
            newly_acked = ack_seq - self.cumulative_ack
            self._sample_rtt(ack_seq, now)
            self.cumulative_ack = ack_seq
            # After an RTO rewind a single resend can fill the hole and the
            # receiver's cached out-of-order tail jumps the ACK past
            # next_seq; without this clamp in_flight goes negative and the
            # sender would re-send already-ACKed segments.
            if self.next_seq < ack_seq:
                self.next_seq = ack_seq
            self.last_progress_time = now
            self.dup_acks = 0
            self._rto_backoff = 1.0
            if self.transport != "fixed":
                self._grow_cwnd(newly_acked)
            if self.cumulative_ack >= self.flow.size_packets:
                self.completed = True
            return True
        return False

    def _grow_cwnd(self, newly_acked: int) -> None:
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked                 # slow start: +1 per ACKed segment
        else:
            self.cwnd += newly_acked / self.cwnd     # AIMD: ~+1 segment per RTT
        # The configured window is the receive-window stand-in: like TCP's
        # min(cwnd, rwnd), the congestion window never exceeds it, so the
        # cwnd modes are never burstier than "fixed" and the receiver's
        # out-of-order cache stays O(window).
        if self.cwnd > self.window:
            self.cwnd = float(self.window)
        if self.cwnd > self.max_cwnd:
            self.max_cwnd = self.cwnd

    def on_duplicate_ack(self, ack_seq: int) -> bool:
        """Count a duplicate ACK; True when fast retransmit should fire.

        Only an ACK for exactly the current cumulative ACK is a duplicate —
        a stale reordered ACK (``ack_seq < cumulative_ack``, e.g. overtaken
        on a longer path after a reroute) signals nothing about loss and
        must not count toward the trigger.  ``"fixed"`` mode never
        fast-retransmits (preserving the historical go-back-N-on-timeout-only
        behaviour); the cwnd modes trigger on the third duplicate, halving
        ``cwnd`` and asking the host to resend the first unacknowledged
        segment.
        """
        if (self.completed or self.in_flight == 0 or self.transport == "fixed"
                or ack_seq != self.cumulative_ack):
            return False
        self.dup_acks += 1
        if self.dup_acks == 3:
            self.ssthresh = max(2.0, self.cwnd / 2.0)
            self.cwnd = self.ssthresh
            self.fast_retransmits += 1
            self.retransmissions += 1
            self._rtt_seq = None                     # Karn: never sample a resend
            return True
        return False

    # -------------------------------------------------------------- timeouts

    def timeout_expired(self, now: float) -> bool:
        return (not self.completed
                and self.in_flight > 0
                and now - self.last_progress_time >= self.current_rto())

    def retransmit(self, now: float) -> None:
        """Go-back-N on RTO: rewind transmission to the first unacked segment."""
        if self.transport != "fixed":
            self.ssthresh = max(2.0, self.cwnd / 2.0)
            self.cwnd = 1.0
            self._rto_backoff = min(self._rto_backoff * 2.0, _MAX_RTO_BACKOFF)
        self.dup_acks = 0
        self._rtt_seq = None
        self.next_seq = self.cumulative_ack
        self.last_progress_time = now
        self.retransmissions += 1


class ReceiverState:
    """Transport state kept by the receiving host for one flow.

    Out-of-order segments are cached in :attr:`received` so a single
    (fast-)retransmission can advance the cumulative ACK past the cached
    tail.  Seqs below the cumulative ACK are pruned as the ACK advances, so
    the set holds only the out-of-order window — O(window) memory, not
    O(flow size).
    """

    def __init__(self, flow_id: int, src_host: str, size_packets: Optional[int] = None):
        self.flow_id = flow_id
        self.src_host = src_host
        self.size_packets = size_packets
        self.received: Set[int] = set()
        self._cumulative = 0
        self.completed = False

    def has_seen(self, seq: int) -> bool:
        """Whether this seq was already delivered (a duplicate delivery)."""
        return seq < self._cumulative or seq in self.received

    def on_data(self, seq: int, total_size: int) -> int:
        """Record a data segment; returns the new cumulative ACK value."""
        self.size_packets = total_size
        if seq >= self._cumulative:
            self.received.add(seq)
        while self._cumulative in self.received:
            self.received.remove(self._cumulative)
            self._cumulative += 1
        if self.size_packets is not None and self._cumulative >= self.size_packets:
            self.completed = True
        return self._cumulative

    @property
    def cumulative_ack(self) -> int:
        return self._cumulative
