"""Switch nodes and the routing-logic interface.

A :class:`SwitchNode` owns the egress links of one physical switch and
delegates every forwarding decision to a :class:`RoutingLogic` instance —
ECMP, shortest-path, SPAIN, Hula or the compiled Contra program.  This mirrors
the paper's architecture: the simulator provides the substrate, the routing
system provides the per-switch data-plane program.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.exceptions import SimulationError
from repro.simulator.packet import Packet
from repro.simulator.probe_wave import ProbeWave

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.link import SimLink
    from repro.simulator.network import Network

__all__ = ["RoutingLogic", "SwitchNode"]


class RoutingLogic:
    """Per-switch data-plane program interface.

    Concrete routing systems subclass this; the switch calls
    :meth:`on_data_packet` for every data/ACK packet that is not destined to a
    locally attached host, and :meth:`on_probe` for control probes.
    """

    def attach(self, switch: "SwitchNode", network: "Network") -> None:
        """Bind this logic to its switch; called once during network build."""
        self.switch = switch
        self.network = network

    def start(self) -> None:
        """Start periodic activities (probe generation, timers).  Optional."""

    def on_data_packet(self, packet: Packet, inport: str) -> Optional[str]:
        """Return the next-hop node name for a transit packet, or None to drop."""
        raise NotImplementedError

    def on_probe(self, packet: Packet, inport: str) -> None:
        """Handle a control probe.  Optional (static systems ignore probes)."""

    def on_probe_batch(self, packets: Sequence[Packet], inport: str) -> None:
        """Handle one same-arrival-tick probe run from ``inport``, in FIFO order.

        The links hand over coalesced ``(link, tick)`` probe runs; protocols
        with a vectorized fast path (Contra) override this to hoist per-run
        invariants out of the per-probe loop.  The default preserves exact
        per-probe semantics.
        """
        on_probe = self.on_probe
        for packet in packets:
            on_probe(packet, inport)

    #: Set True (with an :meth:`on_probe_wave` override) by logics that judge
    #: whole ``(link, tick)`` probe runs through the struct-of-arrays
    #: :class:`~repro.simulator.probe_wave.ProbeWave` view.  Read at switch
    #: wiring time: links towards such a switch accumulate their runs.
    wants_probe_waves = False

    def on_probe_wave(self, packets: Sequence[Packet], inport: str,
                      wave: Optional[ProbeWave] = None) -> None:
        """Handle one member of a run, with the full run's wave view along.

        Only called when :attr:`wants_probe_waves` is True.  ``wave`` is the
        whole ``(link, tick)`` run (None when the link did not collect one);
        ``packets`` is this member's FIFO slice of it.  Implementations must
        be observably identical to ``on_probe_batch(packets, inport)`` — the
        wave view changes how a run is *read* and which no-op members get
        skipped, never what the run means.
        """
        self.on_probe_batch(packets, inport)

    def on_link_change(self, neighbor: str, failed: bool) -> None:
        """Notification that the link towards ``neighbor`` failed or recovered."""


class SwitchNode:
    """One physical switch in the simulation."""

    def __init__(self, network: "Network", name: str, routing: RoutingLogic):
        self.network = network
        self.sim = network.sim
        self.stats = network.stats
        self.name = name
        self.routing = routing
        #: egress links keyed by neighbor node name (switches and hosts).
        self.ports: Dict[str, "SimLink"] = {}
        #: hosts attached directly to this switch.
        self.attached_hosts: List[str] = []
        routing.attach(self, network)
        #: Wave-view sink, bound once at wiring time: coalesced probe runs go
        #: to the routing logic's array fast path when it asked for one, and
        #: straight to the per-packet-list entry point otherwise.
        self._wave_sink = routing.on_probe_wave if routing.wants_probe_waves else None

    # ------------------------------------------------------------------ wiring

    def add_port(self, neighbor: str, link: "SimLink") -> None:
        self.ports[neighbor] = link

    def add_host(self, host: str) -> None:
        self.attached_hosts.append(host)

    def egress(self, neighbor: str) -> "SimLink":
        try:
            return self.ports[neighbor]
        except KeyError:
            raise SimulationError(f"switch {self.name} has no port towards {neighbor!r}") from None

    def switch_neighbors(self) -> List[str]:
        """Neighbouring switches (hosts excluded), sorted for determinism."""
        return sorted(n for n in self.ports if self.network.is_switch(n))

    def link_metrics(self, neighbor: str) -> Dict[str, float]:
        """Metric values of the egress link towards ``neighbor`` (traffic direction)."""
        return self.egress(neighbor).metric_values()

    def link_failed(self, neighbor: str) -> bool:
        link = self.ports.get(neighbor)
        return link is None or link.failed

    # ----------------------------------------------------------------- receive

    def receive_probe_batch(self, packets: Sequence[Packet], inport: str,
                            wave: Optional[ProbeWave] = None) -> None:
        """Entry point for one batch-lane member of a same-tick probe run.

        ``wave`` is the link's accumulated run view (built once per
        ``(link, tick)`` run at enqueue time); a wave-judging routing logic
        uses it to judge the run at its first member and annotate the rest.
        """
        wave_sink = self._wave_sink
        if wave_sink is not None:
            wave_sink(packets, inport, wave)
        else:
            self.routing.on_probe_batch(packets, inport)

    def receive(self, packet: Packet, inport: str) -> None:
        """Entry point for packets delivered by an ingress link."""
        if packet.kind == "probe":
            self.routing.on_probe(packet, inport)
            return

        # Measurement only: record the path and spot revisits (loops).
        if self.stats.record_paths and packet.kind == "data":
            if packet.path_trace is None:
                packet.path_trace = []
            if self.name in packet.path_trace and not packet.looped:
                packet.looped = True
                self.stats.looped_packets += 1
            packet.path_trace.append(self.name)

        # Local delivery to an attached host.
        if packet.dst_host in self.ports and packet.dst_switch == self.name:
            self.ports[packet.dst_host].enqueue(packet)
            return

        packet.ttl -= 1
        if packet.ttl <= 0:
            self.stats.record_switch_drop(packet)
            return

        next_hop = self.routing.on_data_packet(packet, inport)
        if next_hop is None:
            self.stats.record_switch_drop(packet)
            return
        link = self.ports.get(next_hop)
        if link is None:
            self.stats.record_switch_drop(packet)
            return
        if packet.kind == "data":
            self.stats.data_packets_forwarded += 1
        link.enqueue(packet)

    # ------------------------------------------------------------------- misc

    def send_probe(self, packet: Packet, neighbor: str) -> None:
        """Transmit a probe towards a neighbouring switch (if the link is up)."""
        link = self.ports.get(neighbor)
        if link is not None and not link.failed:
            link.enqueue(packet)

    def __repr__(self) -> str:
        return f"SwitchNode({self.name}, ports={len(self.ports)})"
