"""Struct-of-arrays view of one coalesced probe run (the "wave view").

A *run* is every probe a link delivers at one arrival tick.  The engine's
batch lane already coalesces those deliveries under one heap entry, but its
members stay per-probe (multicasts interleave links, so consecutive-merge
rarely applies); the link therefore accumulates the run **at enqueue time**
into one :class:`ProbeWave` and hands it to the receiving switch alongside
every member delivery.  The wave turns the run into parallel numpy columns —
``tag``, ``origin_id``, ``pid``, ``version`` plus an N×M metrics matrix — so
a vectorizing routing logic (Contra) can judge the whole run with array
passes at its first member, instead of N per-payload attribute reads
scattered through a branchy loop.

Ordering contract: member deliveries still fire one by one in exact FIFO
registration order; the wave only changes what a delivery can *see* (the
whole run) and carries the judging verdicts between members:

* ``dead`` — per-probe drop mask written by the receiving logic after
  judging.  A flagged probe is one whose processing is provably a no-op, so
  the link skips its member delivery outright.  ``None`` until judged.
* ``cond_dead`` / ``guard_link`` / ``guard_value`` — conditionally dead
  probes: no-ops **while** the guard link's congestion is at least the
  value the receiver's metric fold used (the receiver proves the verdict
  monotone in congestion).  The link skips their members under the same
  check; if the guard fails the member is delivered and the receiver
  re-decides.
* ``scalar`` — the receiving logic declined to judge this run (ineligible
  payloads, below the vectorization threshold); the link then delivers every
  member plainly, exactly as if no wave existed.
* ``cursor`` / ``member_base`` — position bookkeeping: members arrive in the
  same FIFO order the run was accumulated in, so the link advances ``cursor``
  by each member's length and stamps ``member_base`` with the member's start
  index before delivering it.
* ``context`` — opaque receiver-owned state (the Contra logic stores its
  scalar-fallthrough data here).  The link never reads it.

Layering: this is simulator-level code, so it reads the probe payloads
duck-typed (``tag``/``origin_id``/``pid``/``version``/``metrics`` slots of
:class:`~repro.protocol.probe.ProbePayload`) and never imports the protocol
package.  The columns are built **once per run**, lazily, on first request:
runs below the vectorization threshold, or handled by a scalar logic, never
pay for the build.

A wave can be *ineligible* for column form — a payload without an interned
``origin_id``, a metrics vector with unexpected attribute names, or no numpy
at all.  ``columns()`` then returns None and the caller falls back to the
per-packet scalar path; eligibility is a performance property, never a
correctness one.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.nputil import np

__all__ = ["ProbeWave"]

#: Column indices into the integer matrix returned by ``columns()``.
COL_TAG = 0
COL_ORIGIN = 1
COL_PID = 2
COL_VERSION = 3


class ProbeWave:
    """One same-(link, tick) probe run, with lazily built SoA columns."""

    __slots__ = ("packets", "dead", "cond_dead", "guard_link", "guard_value",
                 "scalar", "cursor", "member_base", "context",
                 "_built", "_ints", "_metrics")

    def __init__(self, packets: Optional[List] = None):
        #: The run's packets in FIFO (enqueue == delivery) order.  The link
        #: appends to this list while the run accumulates; it is complete
        #: before the first member fires (probe flight times are positive).
        self.packets: List = [] if packets is None else packets
        self.dead: Optional[List[bool]] = None
        self.cond_dead: Optional[List[bool]] = None
        self.guard_link = None
        self.guard_value = 0.0
        self.scalar = False
        self.cursor = 0
        self.member_base = 0
        self.context = None
        self._built = False
        self._ints = None
        self._metrics = None

    def __len__(self) -> int:
        return len(self.packets)

    def columns(self, expected_names: Tuple[str, ...]):
        """``(ints, metrics)`` column form of the run, or None if ineligible.

        ``ints`` is an N×4 int64 matrix of (tag, origin_id, pid, version) and
        ``metrics`` an N×M float64 matrix of the carried metric vectors, rows
        in exact FIFO order.  ``expected_names`` pins the metric layout: every
        payload must carry exactly those attribute names (a run mixing
        layouts cannot be a rectangular matrix, and folding a column under
        the wrong attribute op would corrupt the reject decision).  Built at
        most once; the result is cached on the wave.
        """
        if not self._built:
            self._built = True
            if np is not None and self.packets:
                self._build(expected_names)
        if self._ints is None:
            return None
        return self._ints, self._metrics

    def _build(self, expected_names: Tuple[str, ...]) -> None:
        packets = self.packets
        n = len(packets)
        width = 4 + len(expected_names)
        rows = []
        append = rows.append
        try:
            for packet in packets:
                payload = packet.probe
                vector = payload.metrics
                names = vector.names
                if names is not expected_names and names != expected_names:
                    return              # mixed metric layouts in one wave
                row = payload.row
                if row is None:
                    # Built once per payload (a non-numeric field is a hard
                    # error here, making the wave ineligible); the multicast
                    # fan-out then reuses the bytes at every other receiving
                    # link.
                    row = payload.row = np.array(
                        (payload.tag, payload.origin_id, payload.pid,
                         payload.version) + vector.values,
                        dtype=np.float64).tobytes()
                append(row)
            # ``reshape`` makes a row of the wrong width (a foreign metric
            # layout that happens to hash-match ``expected_names``... or a
            # payload whose cached row predates a layout change) a hard
            # error instead of a silently misaligned matrix.
            matrix = np.frombuffer(b"".join(rows), dtype=np.float64) \
                .reshape(n, width)
        except (TypeError, ValueError, AttributeError):
            return
        if np.isnan(matrix).any():
            # numpy quietly converts ``None`` to nan (an uninterned
            # ``origin_id``), and nan metrics would fold under IEEE rules
            # that differ from Python's ``max`` tie-breaking — both make
            # the wave ineligible rather than silently misjudged.
            return
        # The int columns are exact: tags/ids/pids/versions are small
        # integers, far inside float64's 2**53 exact range.
        self._ints = matrix[:, :4].astype(np.int64)
        self._metrics = matrix[:, 4:]
