"""Directed link model: FIFO queue, finite buffer, serialization and propagation.

Each :class:`SimLink` models one direction of a physical link.  Packets are
serialized at the link capacity (``packets/ms`` scaled by packet size relative
to a full data segment), queued in a drop-tail buffer, and delivered after the
propagation latency.  The link also maintains the data-plane *utilization*
estimate that Contra and Hula probes read: an exponentially weighted moving
average of the transmitted load over the link capacity, the standard
data-plane estimator both systems use.

Event budget: the link uses the engine's non-cancellable fast path and keeps
its event count minimal.  Each transmitted packet costs exactly one delivery
event (serialization delay and propagation are folded into its timestamp);
only when a backlog exists does the link additionally keep a single *drain*
event alive that pulls the next packet off the queue when the serializer
frees up — so an uncongested link schedules one event per packet, and a
congested one two, regardless of how many packets pile up behind.

Probes ride the engine's **batch lane**: a whole same-arrival-time probe wave
coalesces under one heap entry, and consecutive same-``(link, tick)`` probes
merge into one delivery call carrying the packet run (the registered fail
epoch rides in the batch key, so a mid-tick failure splits the run).  FIFO
order — within a link and across links — is exactly the per-event order; the
lane only removes heap traffic, never reorders (see the engine's ordering
contract).

When the receiving switch's routing logic asks for probe waves
(``collect_probe_runs``, set at wiring time), the link additionally
accumulates each same-``(link, tick)`` run into one
:class:`~repro.simulator.probe_wave.ProbeWave` **at enqueue time** — the one
most recently started run is remembered, and a same-arrival enqueue appends
to it — and the wave itself rides in the batch key next to the fail epoch,
so every member delivery carries its run with no lookup.  Member deliveries
still fire one by one in exact FIFO order — the wave never reorders
anything — but it lets the receiver judge the whole run once at its first
member and annotate the wave with a per-probe ``dead`` mask: a flagged probe
is one whose processing the receiver proved to be a no-op, so the link drops
its member delivery outright instead of paying the full delivery chain.  The
link reads only the wave's generic annotation slots (``dead``/``cond_dead``
and its guard/``scalar``/``cursor``); it stays payload-agnostic and only
guarantees the run's shape: same link, same tick, same fail epoch, FIFO
order.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Sequence, TYPE_CHECKING

from repro.simulator.packet import DATA_PACKET_BYTES, Packet
from repro.simulator.probe_wave import ProbeWave

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.engine import Simulator
    from repro.simulator.stats import StatsCollector

__all__ = ["SimLink"]


class SimLink:
    """One direction of a link between two simulation nodes."""

    def __init__(
        self,
        sim: "Simulator",
        src: str,
        dst: str,
        capacity: float,
        latency: float,
        buffer_packets: int = 1000,
        deliver: Optional[Callable[[Packet, str], None]] = None,
        stats: Optional["StatsCollector"] = None,
        util_window: float = 1.0,
        deliver_batch: Optional[Callable[[Sequence[Packet], str], None]] = None,
    ):
        self.sim = sim
        self.src = src
        self.dst = dst
        self.capacity = float(capacity)          # full-size packets per ms
        self.latency = float(latency)            # ms
        self.buffer_packets = int(buffer_packets)
        self.deliver = deliver                   # callback(packet, inport=src)
        #: Optional vectorized probe sink — callback(packets, inport=src) for
        #: one same-tick probe run; None falls back to per-packet ``deliver``.
        self.deliver_batch = deliver_batch
        #: Stable bound-method reference for the engine's batch lane (the lane
        #: merges consecutive registrations by callback *identity*).
        self._deliver_probe_run = self._deliver_probe_batch
        #: Accumulate same-arrival probe runs into ProbeWave objects for the
        #: receiver's array fast path.  Set at wiring time iff the receiving
        #: switch's routing logic wants waves; off by default so scalar
        #: systems pay nothing.
        self.collect_probe_runs = False
        #: The run currently accumulating, as (arrival time, wave).  Probe
        #: flight time is constant per link, so enqueue order is arrival
        #: order and only the newest run can ever grow; older waves ride to
        #: delivery inside their members' batch-lane keys and need no
        #: link-side registry at all.
        self._last_probe_run = None
        self.stats = stats
        self.util_window = float(util_window)    # ms, EWMA window for utilization

        self._queue: Deque[Packet] = deque()
        #: absolute time at which the serializer frees up.
        self._busy_until = 0.0
        #: whether a drain event is already scheduled for ``_busy_until``.
        self._drain_pending = False
        self.failed = False
        #: incremented on every failure; packets in flight (serializing or
        #: propagating) when the epoch changes are lost even if the link
        #: recovers before their delivery time.
        self._fail_epoch = 0

        # Utilization estimator state.
        self._util = 0.0
        self._last_util_update = 0.0
        #: Congestion memo: probe waves read the same link's congestion many
        #: times within one tick.  The quantized value is a pure function of
        #: (now, transmissions so far, queue length) along a deterministic
        #: run, so caching on that key returns bit-identical floats while
        #: skipping the EWMA decay + quantization arithmetic.
        self._congestion_now = -1.0
        self._congestion_sent = -1
        self._congestion_qlen = -1
        self._congestion_value = 0.0

        # Counters.
        self.packets_sent = 0
        self.bytes_sent = 0.0
        self.packets_dropped = 0

    # ------------------------------------------------------------------ queue

    @property
    def queue_length(self) -> int:
        """Data packets currently queued (excluding the one being serialized)."""
        return len(self._queue)

    def enqueue(self, packet: Packet) -> bool:
        """Accept a packet for transmission; returns False if it was dropped."""
        if self.failed:
            self.packets_dropped += 1
            if self.stats is not None:
                self.stats.record_drop(self, packet)
            return False
        if packet.kind == "probe":
            # Control lane: probes have strict priority over data (the
            # standard treatment for in-band control traffic — Hula and
            # Contra both assume probes are not delayed behind full data
            # queues).  They are modelled as never occupying the data
            # serializer: the delivery fires after the probe's own
            # serialization + propagation delay, and its wire time still
            # feeds the utilization estimator and the byte accounting.  The
            # whole same-tick probe wave shares one engine heap entry (batch
            # lane), with this link's consecutive probes merged into a single
            # delivery call.
            sim = self.sim
            wire_bytes = packet.size_bytes + packet.extra_header_bits * 0.125
            tx_time = wire_bytes / DATA_PACKET_BYTES / self.capacity
            self._record_probe_transmission(tx_time, wire_bytes)
            arrival = sim._now + tx_time + self.latency
            if self.collect_probe_runs:
                # The wave rides inside the batch-lane key: every member of
                # a run carries (epoch, wave), so delivery needs no lookup,
                # and a mid-tick failure (epoch bump + run reset) still
                # splits the run exactly like the epoch alone used to.
                last = self._last_probe_run
                if last is not None and last[0] == arrival:
                    wave = last[1]
                    wave.packets.append(packet)
                else:
                    wave = ProbeWave([packet])
                    self._last_probe_run = (arrival, wave)
                sim.call_batched(arrival, self._deliver_probe_run,
                                 (self._fail_epoch, wave), packet)
            else:
                sim.call_batched(arrival, self._deliver_probe_run,
                                 self._fail_epoch, packet)
            return True
        if len(self._queue) >= self.buffer_packets:
            self.packets_dropped += 1
            if self.stats is not None:
                self.stats.record_drop(self, packet)
            return False
        self._queue.append(packet)
        if self.stats is not None:
            self.stats.record_queue_length(self, len(self._queue))
        if not self._drain_pending:
            if self.sim.now >= self._busy_until:
                self._transmit_next()
            else:
                # Serializer busy with an earlier packet: one drain event
                # covers every packet queued behind it (batch scheduling).
                self._drain_pending = True
                self.sim.call_at(self._busy_until, self._drain)
        return True

    def _drain(self) -> None:
        self._drain_pending = False
        # fail() clears the queue; a pending drain then expires harmlessly.
        if self._queue:
            self._transmit_next()

    def _transmit_next(self) -> None:
        packet = self._queue.popleft()
        wire_bytes = packet.size_bytes + packet.extra_header_bits * 0.125
        tx_time = wire_bytes / DATA_PACKET_BYTES / self.capacity
        self._record_transmission(packet, tx_time, wire_bytes)
        self._busy_until = self.sim.now + tx_time
        # One event delivers the packet after serialization + propagation; the
        # epoch guard loses it if the link fails while it is in flight.
        self.sim.call_at(self._busy_until + self.latency,
                         self._deliver_packet, packet, self._fail_epoch)
        if self._queue:
            self._drain_pending = True
            self.sim.call_at(self._busy_until, self._drain)

    def _deliver_packet(self, packet: Packet, epoch: int) -> None:
        if self.deliver is not None and not self.failed and epoch == self._fail_epoch:
            self.deliver(packet, self.src)

    def _deliver_probe_batch(self, key, packets: List[Packet]) -> None:
        """Deliver one batch-lane member of a ``(link, tick)`` probe run.

        ``key`` is the lane's batch key: the registered fail epoch, or —
        when this link collects probe runs — ``(epoch, wave)``, the member's
        run riding along so the receiver can judge the whole run at its
        first member.  One epoch check covers the member (all its packets
        registered under the same key).  Once the wave carries a ``dead``
        mask, members made up entirely of flagged probes are dropped here —
        the receiver proved their processing is a no-op — which is what
        removes the per-probe delivery chain from the reject path.  The
        guard link's congestion is only read when a conditional flag is
        actually the deciding bit.  Without a vectorized ``deliver_batch``
        sink, delivery degrades to the per-packet callback in the same
        order.
        """
        wave = None
        if self.collect_probe_runs:
            epoch, wave = key
            if self.failed or epoch != self._fail_epoch:
                return
            if wave.scalar:
                # The receiver declined to judge this run: plain per-member
                # delivery, exactly as if no wave existed.
                wave = None
            elif wave.dead is not None:
                # Judged run: advance the member window and drop the member
                # when every probe in it is flagged dead — unconditionally,
                # or conditionally while the guard link's congestion is at
                # least the value the verdict was computed against (the
                # receiver proved the verdict monotone in congestion).
                base = wave.cursor
                count = len(packets)
                wave.cursor = base + count
                dead = wave.dead
                if count == 1:
                    if dead[base]:
                        return
                    cond = wave.cond_dead
                    if cond is not None and cond[base] and \
                            wave.guard_link.congestion >= wave.guard_value:
                        return
                else:
                    cond = wave.cond_dead
                    if cond is not None and \
                            wave.guard_link.congestion < wave.guard_value:
                        cond = None
                    if cond is None:
                        if all(dead[base:base + count]):
                            return
                    elif all(dead[i] or cond[i]
                             for i in range(base, base + count)):
                        return
                wave.member_base = base
        elif self.failed or key != self._fail_epoch:
            return
        deliver_batch = self.deliver_batch
        if deliver_batch is not None:
            if wave is not None:
                deliver_batch(packets, self.src, wave)
            else:
                deliver_batch(packets, self.src)
            return
        deliver = self.deliver
        if deliver is not None:
            src = self.src
            for packet in packets:
                deliver(packet, src)

    # ----------------------------------------------------------- utilization

    def _record_transmission(self, packet: Packet, tx_time: float,
                             wire_bytes: float) -> None:
        self.packets_sent += 1
        self.bytes_sent += wire_bytes
        stats = self.stats
        if stats is not None:
            # Inlined StatsCollector.record_transmission: the byte accounting
            # runs once per transmitted packet and the call frame showed up in
            # profiles.
            stats.total_packets += 1
            kind = packet.kind
            if kind == "data":
                stats.data_bytes += packet.size_bytes
                stats.tag_overhead_bytes += packet.extra_header_bits * 0.125
            elif kind == "ack":
                stats.ack_bytes += wire_bytes
            else:
                stats.probe_bytes += wire_bytes
        self._decay_util()
        # Each transmission contributes its busy time over the averaging window.
        self._util = min(1.5, self._util + tx_time / self.util_window)

    def _record_probe_transmission(self, tx_time: float, wire_bytes: float) -> None:
        """Probe-lane variant of :meth:`_record_transmission` (no kind dispatch).

        Identical arithmetic in identical order; the EWMA decay is inlined so
        the per-probe cost is one clock read plus the accumulator updates.
        """
        self.packets_sent += 1
        self.bytes_sent += wire_bytes
        stats = self.stats
        if stats is not None:
            stats.total_packets += 1
            stats.probe_bytes += wire_bytes
        now = self.sim._now
        elapsed = now - self._last_util_update
        if elapsed > 0:
            decay = 1.0 - elapsed / self.util_window
            self._util *= decay if decay > 0.0 else 0.0
            self._last_util_update = now
        self._util = min(1.5, self._util + tx_time / self.util_window)

    def _decay_util(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_util_update
        if elapsed > 0:
            decay = max(0.0, 1.0 - elapsed / self.util_window)
            self._util *= decay
            self._last_util_update = now

    @property
    def utilization(self) -> float:
        """Current utilization estimate in [0, ~1.5] (decayed to *now*)."""
        self._decay_util()
        return min(1.0, self._util)

    # ---------------------------------------------------------------- failure

    def fail(self) -> None:
        """Bring the link down: queued and in-flight packets are lost."""
        self.failed = True
        self._fail_epoch += 1
        self._queue.clear()
        # In-flight probe runs die with their epoch; their member deliveries
        # are dropped by the epoch check, so the waves are garbage.  Resetting
        # the accumulator keeps a post-recovery enqueue at the same arrival
        # tick from growing a dead wave (its members would never fire, and
        # the run's member bookkeeping assumes every member does).
        self._last_probe_run = None

    def recover(self) -> None:
        """Bring the link back up."""
        self.failed = False

    #: Probe-visible utilization is quantized to this many steps, modelling
    #: the n-bit utilization register a real switch pipeline carries.  The
    #: quantization is what lets near-equal paths tie *exactly*, so switches
    #: keep ECMP groups over them instead of chasing microscopic utilization
    #: differences — without it, every fresh flowlet of a ToR steers to the
    #: single momentarily-least-utilized uplink and the tail queue overshoots
    #: ECMP's (the Figure 13 interaction).
    UTIL_QUANTUM = 16

    @property
    def congestion(self) -> float:
        """Quantized utilization estimate plus standing-queue pressure.

        The transmit EWMA alone saturates at 1.0 and decays within one
        ``util_window`` regardless of backlog, so two uplinks — one idle, one
        with 50 queued packets — can look identical to a probe a quarter
        millisecond later.  Adding the queue's time-to-drain (in units of the
        averaging window) keeps a congested link's rank elevated until its
        queue actually empties; this is local data-plane state every switch
        has, exactly like the utilization register (cf. the
        flowlet-timeout/util-window tail interaction of Figure 13).
        """
        now = self.sim._now
        sent = self.packets_sent
        qlen = len(self._queue)
        if now == self._congestion_now and sent == self._congestion_sent \
                and qlen == self._congestion_qlen:
            return self._congestion_value
        backlog = qlen / (self.capacity * self.util_window)
        value = min(1.0, self._util_now()) + backlog
        quantum = self.UTIL_QUANTUM
        value = round(value * quantum) / quantum
        self._congestion_now = now
        self._congestion_sent = sent
        self._congestion_qlen = qlen
        self._congestion_value = value
        return value

    def _util_now(self) -> float:
        self._decay_util()
        return self._util

    def metric_values(self) -> dict:
        """The per-link metric values probes fold into their metric vectors."""
        return {"util": self.congestion, "lat": self.latency, "len": 1.0}

    def __repr__(self) -> str:
        return (f"SimLink({self.src}->{self.dst}, cap={self.capacity}, "
                f"lat={self.latency}, q={len(self._queue)})")
