"""Directed link model: FIFO queue, finite buffer, serialization and propagation.

Each :class:`SimLink` models one direction of a physical link.  Packets are
serialized at the link capacity (``packets/ms`` scaled by packet size relative
to a full data segment), queued in a drop-tail buffer, and delivered after the
propagation latency.  The link also maintains the data-plane *utilization*
estimate that Contra and Hula probes read: an exponentially weighted moving
average of the transmitted load over the link capacity, the standard
data-plane estimator both systems use.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, TYPE_CHECKING

from repro.simulator.packet import DATA_PACKET_BYTES, Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.engine import Simulator
    from repro.simulator.stats import StatsCollector

__all__ = ["SimLink"]


class SimLink:
    """One direction of a link between two simulation nodes."""

    def __init__(
        self,
        sim: "Simulator",
        src: str,
        dst: str,
        capacity: float,
        latency: float,
        buffer_packets: int = 1000,
        deliver: Optional[Callable[[Packet, str], None]] = None,
        stats: Optional["StatsCollector"] = None,
        util_window: float = 1.0,
    ):
        self.sim = sim
        self.src = src
        self.dst = dst
        self.capacity = float(capacity)          # full-size packets per ms
        self.latency = float(latency)            # ms
        self.buffer_packets = int(buffer_packets)
        self.deliver = deliver                   # callback(packet, inport=src)
        self.stats = stats
        self.util_window = float(util_window)    # ms, EWMA window for utilization

        self._queue: Deque[Packet] = deque()
        # Control probes are transmitted with strict priority over data, the
        # standard treatment for in-band control traffic (Hula and Contra both
        # assume probes are not delayed behind full data queues).
        self._probe_queue: Deque[Packet] = deque()
        self._busy = False
        self.failed = False

        # Utilization estimator state.
        self._util = 0.0
        self._last_util_update = 0.0

        # Counters.
        self.packets_sent = 0
        self.bytes_sent = 0.0
        self.packets_dropped = 0

    # ------------------------------------------------------------------ queue

    @property
    def queue_length(self) -> int:
        """Data packets currently queued (excluding the one being serialized)."""
        return len(self._queue)

    def enqueue(self, packet: Packet) -> bool:
        """Accept a packet for transmission; returns False if it was dropped."""
        if self.failed:
            self.packets_dropped += 1
            if self.stats is not None:
                self.stats.record_drop(self, packet)
            return False
        if packet.is_probe:
            self._probe_queue.append(packet)
        else:
            if len(self._queue) >= self.buffer_packets:
                self.packets_dropped += 1
                if self.stats is not None:
                    self.stats.record_drop(self, packet)
                return False
            self._queue.append(packet)
            if self.stats is not None:
                self.stats.record_queue_length(self, len(self._queue))
        if not self._busy:
            self._transmit_next()
        return True

    def _transmission_time(self, packet: Packet) -> float:
        """Serialization delay for one packet (scaled by its wire size)."""
        relative_size = packet.wire_bytes / DATA_PACKET_BYTES
        return relative_size / self.capacity

    def _transmit_next(self) -> None:
        if not self._probe_queue and not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._probe_queue.popleft() if self._probe_queue else self._queue.popleft()
        tx_time = self._transmission_time(packet)
        self._record_transmission(packet, tx_time)
        self.sim.schedule(tx_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        # Propagation happens in parallel with the next serialization.
        if not self.failed:
            self.sim.schedule(self.latency, self._deliver_packet, packet)
        self._transmit_next()

    def _deliver_packet(self, packet: Packet) -> None:
        if self.deliver is not None and not self.failed:
            self.deliver(packet, self.src)

    # ----------------------------------------------------------- utilization

    def _record_transmission(self, packet: Packet, tx_time: float) -> None:
        self.packets_sent += 1
        self.bytes_sent += packet.wire_bytes
        if self.stats is not None:
            self.stats.record_transmission(self, packet)
        self._decay_util()
        # Each transmission contributes its busy time over the averaging window.
        self._util = min(1.5, self._util + tx_time / self.util_window)

    def _decay_util(self) -> None:
        now = self.sim.now
        elapsed = now - self._last_util_update
        if elapsed > 0:
            decay = max(0.0, 1.0 - elapsed / self.util_window)
            self._util *= decay
            self._last_util_update = now

    @property
    def utilization(self) -> float:
        """Current utilization estimate in [0, ~1.5] (decayed to *now*)."""
        self._decay_util()
        return min(1.0, self._util)

    # ---------------------------------------------------------------- failure

    def fail(self) -> None:
        """Bring the link down: queued and in-flight packets are lost."""
        self.failed = True
        self._queue.clear()
        self._probe_queue.clear()

    def recover(self) -> None:
        """Bring the link back up."""
        self.failed = False

    def metric_values(self) -> dict:
        """The per-link metric values probes fold into their metric vectors."""
        return {"util": self.utilization, "lat": self.latency, "len": 1.0}

    def __repr__(self) -> str:
        return (f"SimLink({self.src}->{self.dst}, cap={self.capacity}, "
                f"lat={self.latency}, q={len(self._queue)})")
