"""Runtime sanitizer plane: opt-in invariant checking with event provenance.

``Simulator(sanitize=True)`` (or ``Network(sanitize=True)``, ``contra
run-grid --sanitize``, ``CONTRA_SANITIZE=1``) swaps the engine for a
:class:`SanitizingSimulator` and installs wrap-based instrumentation over the
link, host/transport and protocol-table layers.  The checks are the repo's
hardest *runtime* invariants — the ones integration tests can only observe
after the fact:

* **engine** — event-time monotonicity (the clock never runs backwards),
  batch-lane counter coherence at quiesce, and a provenance tag on every
  heap entry (an untagged entry means something scheduled outside the
  Simulator API);
* **link** — per-(link, tick) probe FIFO (delivery order is enqueue order),
  per-link monotone probe delivery times, and fail-epoch staleness (a probe
  registered under a dead epoch must never reach ``deliver``);
* **transport** — packet conservation at quiesce per kind
  (``injected == received + dropped + lost + queued + in-flight``),
  ``goodput_bytes <= delivered_bytes``, non-negative ``in_flight`` / cwnd
  floor per ACK, and RTO timer-chain liveness (every incomplete reliable
  flow has a pending ``_check_timeout``);
* **protocol tables** (Contra) — FwdT version monotonicity per key (under
  versioning), every BestT choice resolves in FwdT, and the
  ``ForwardingShadow`` mirror lags-but-never-leads the symbolic table
  (the runtime sibling of the PR 7 lowered-table cross-check).

Every scheduled event carries a cheap provenance tag — ``(callback
qualname, scheduling site)`` — so a violation names its culprit.  Tags are
elided entirely when sanitize is off: the default :class:`~repro.simulator.
engine.Simulator` is untouched and byte-identical to before this module
existed (the zero-cost-when-off contract, see ARCHITECTURE.md §6).

The same plane powers the **race detector** (`repro.experiments.race`):
seeded permutations of same-timestamp events *outside* the documented FIFO
contracts — adjacent commutable periodic rounds in the heap, and the
per-switch iteration order inside a failure-check round — with a schedule
trace for pinpointing the first divergence when summaries differ.
"""

from __future__ import annotations

import functools
import heapq
import random
import sys
from collections import deque
from types import FrameType
from dataclasses import dataclass
from typing import (TYPE_CHECKING, Any, Callable, Deque, Dict, FrozenSet,
                    List, Optional, Tuple)

import repro.simulator.engine as _engine
from repro.exceptions import SimulationError
from repro.nputil import np
from repro.simulator.engine import (PeriodicEvent, Simulator, _fire_batch,
                                    _fire_handle)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulator.host import Host
    from repro.simulator.link import SimLink
    from repro.simulator.network import Network
    from repro.simulator.packet import Packet
    from repro.simulator.stats import StatsCollector

__all__ = [
    "SANITIZE_DEFAULT",
    "Violation",
    "SanitizerError",
    "Sanitizer",
    "SanitizingSimulator",
]

#: Process-wide default consulted by ``Simulator(sanitize=None)``.  Kept a
#: plain module constant (no environment read at import time — the simulator
#: package must stay free of ``os.environ``, see tools/lint_determinism.py);
#: the experiment layer resolves ``CONTRA_SANITIZE`` in
#: ``repro.experiments.config.sanitize_from_env`` and passes the result down.
SANITIZE_DEFAULT = False

#: Conserved packet kinds.  Probes are excluded: multicast shares one packet
#: object across links, so per-object conservation is not defined for them
#: (their FIFO/staleness contracts are checked on the probe lane instead).
_CONSERVED_KINDS = ("data", "ack")

#: Schedule-trace cap: race-check reruns short grid points, but a runaway
#: trace must never dominate memory; past the cap the trace marks itself
#: truncated instead of growing.
_TRACE_LIMIT = 500_000

_SKIP_FILES = frozenset(
    f for f in (_engine.__file__, __file__) if f is not None)


def _qualname(obj: Any) -> str:
    name = getattr(obj, "__qualname__", None)
    if isinstance(name, str):
        return name
    return type(obj).__name__


def _site() -> str:
    """Qualname of the nearest calling frame outside the engine/sanitizer."""
    frame: Optional[FrameType] = sys._getframe(1)
    while frame is not None:
        code = frame.f_code
        if code.co_filename not in _SKIP_FILES:
            # co_qualname needs Python 3.11+; co_name is close enough below.
            return str(getattr(code, "co_qualname", code.co_name))
        frame = frame.f_back
    return "<unknown>"


@dataclass
class Violation:
    """One detected invariant violation, with the culprit's provenance."""

    time: float
    rule: str
    message: str
    #: (callback qualname, scheduling site) of the event executing when the
    #: violation was detected; None for quiesce-time checks.
    tag: Optional[Tuple[str, str]] = None

    def render(self) -> str:
        where = f" (provenance: {self.tag[0]} @ {self.tag[1]})" if self.tag else ""
        return f"[{self.rule}] t={self.time:.6f}: {self.message}{where}"

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "time": self.time,
            "rule": self.rule,
            "message": self.message,
            "tag": list(self.tag) if self.tag is not None else None,
        }


class SanitizerError(SimulationError):
    """Raised on the first violation when the sanitizer runs in raise mode."""

    def __init__(self, violation: Violation):
        super().__init__(violation.render())
        self.violation = violation


class Sanitizer:
    """Violation collector + network instrumentation for one sanitized run.

    ``mode="raise"`` (the default) aborts the run on the first violation;
    ``mode="collect"`` records them all and lets :meth:`report` summarize —
    the race detector uses collect mode so a diff sees complete runs.
    """

    def __init__(self, mode: str = "raise"):
        self.mode = mode
        self.sim: Optional[Simulator] = None
        self.violations: List[Violation] = []
        self.notes: List[str] = []
        self.checks_run = 0
        #: Provenance of the event currently executing (run-loop maintained).
        self.current_tag: Optional[Tuple[str, str]] = None

        # Race-detector hooks (installed by repro.experiments.race).
        self.race_rng: Optional[random.Random] = None
        self.race_commutable: FrozenSet[Any] = frozenset()

        # Schedule trace (race divergence pinpointing).
        self.trace_enabled = False
        self.trace: List[Tuple[float, Tuple[str, str]]] = []
        self.trace_truncated = False

        # Conservation ledger, per conserved kind.
        self._injected: Dict[str, int] = {k: 0 for k in _CONSERVED_KINDS}
        self._received: Dict[str, int] = {k: 0 for k in _CONSERVED_KINDS}
        self._dropped: Dict[str, int] = {k: 0 for k in _CONSERVED_KINDS}
        self._lost: Dict[str, int] = {k: 0 for k in _CONSERVED_KINDS}
        self._inflight: Dict[str, int] = {k: 0 for k in _CONSERVED_KINDS}

        # Probe-lane FIFO state.
        self._probe_fifo = True
        self._probe_sizes: set = set()
        self._expect_drop = 0

        self._network: Optional["Network"] = None
        #: (switch name, contra logic) pairs instrumented for table checks.
        self._contra: List[Tuple[str, Any]] = []

    # ------------------------------------------------------------- reporting

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def violate(self, rule: str, message: str,
                tag: Optional[Tuple[str, str]] = None) -> None:
        if tag is None:
            tag = self.current_tag
        now = self.sim._now if self.sim is not None else 0.0
        violation = Violation(now, rule, message, tag)
        self.violations.append(violation)
        if self.mode == "raise":
            raise SanitizerError(violation)

    def trace_event(self, time: float, tag: Tuple[str, str]) -> None:
        if len(self.trace) < _TRACE_LIMIT:
            self.trace.append((time, tag))
        else:
            self.trace_truncated = True

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "checks_run": self.checks_run,
            "violations": [v.to_json_dict() for v in self.violations],
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [f"sanitizer: {self.checks_run} check(s): "
                 + ("OK" if self.ok else f"{len(self.violations)} violation(s)")]
        lines.extend(f"  VIOLATION: {v.render()}" for v in self.violations)
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)

    # -------------------------------------------------------- instrumentation

    def instrument_network(self, network: "Network") -> None:
        """Wrap the network's links, hosts, stats and protocol tables.

        Called by ``Network.__init__`` right after ``_build()`` — before
        anything is scheduled, so the batch lane only ever sees the wrapped
        ``_deliver_probe_run`` (the lane merges by callback *identity*).
        Wrapping is instance-attribute shadowing: behaviour is unchanged
        (inner methods run verbatim), classes are untouched, and in
        particular ``metric_values`` never lands in a link's ``__dict__``
        (the probe plane's ``plain_link`` fast-path test).
        """
        self._network = network
        for key in sorted(network.links):
            self._instrument_link(network.links[key], network)
        for name in sorted(network.hosts):
            self._instrument_host(network.hosts[name])
        self._instrument_stats(network.stats)
        for name in sorted(network.switches):
            self._instrument_routing(name, network.switches[name].routing)

    def _note_probe_size(self, packet: "Packet") -> None:
        sizes = self._probe_sizes
        wire = packet.size_bytes + packet.extra_header_bits * 0.125
        if wire not in sizes:
            sizes.add(wire)
            if len(sizes) > 1 and self._probe_fifo:
                # Heterogeneous probe sizes → heterogeneous tx times → arrival
                # order can legitimately differ from enqueue order per link.
                self._probe_fifo = False
                self.notes.append(
                    "probe FIFO check disabled: probes with distinct wire "
                    f"sizes observed ({sorted(sizes)})")

    def _instrument_link(self, link: "SimLink", network: "Network") -> None:
        pending: Deque["Packet"] = deque()
        last_delivery = [0.0]
        dst_host: Optional["Host"] = network.hosts.get(link.dst)

        inner_enqueue = link.enqueue

        @functools.wraps(inner_enqueue)
        def enqueue(packet: "Packet") -> bool:
            accepted = inner_enqueue(packet)
            if accepted and packet.kind == "probe":
                self._note_probe_size(packet)
                if self._probe_fifo:
                    pending.append(packet)
            return accepted

        link.enqueue = enqueue  # type: ignore[method-assign]

        # The probe-run inner stays reachable as an instance attribute so the
        # violation-injection tests can substitute a deliberately buggy
        # implementation underneath the checks.
        inner_probe = link._deliver_probe_run
        link._sanitizer_probe_inner = inner_probe  # type: ignore[attr-defined]

        @functools.wraps(inner_probe)
        def deliver_probe_run(key: Any, packets: List["Packet"]) -> None:
            epoch = key[0] if link.collect_probe_runs else key
            now = link.sim._now
            self.checks_run += 1
            if now < last_delivery[0]:
                self.violate(
                    "link-fifo",
                    f"probe run on {link.src}->{link.dst} delivered at "
                    f"t={now} after a delivery at t={last_delivery[0]}")
            last_delivery[0] = now
            if self._probe_fifo:
                for packet in packets:
                    head = pending.popleft() if pending else None
                    if head is not packet:
                        self._probe_fifo = False
                        self.violate(
                            "link-fifo",
                            f"per-(link,tick) FIFO violated on "
                            f"{link.src}->{link.dst}: delivered {packet!r}, "
                            f"expected {head!r}")
                        break
            stale = link.failed or epoch != link._fail_epoch
            if stale:
                self._expect_drop += 1
                try:
                    link._sanitizer_probe_inner(key, packets)  # type: ignore[attr-defined]
                finally:
                    self._expect_drop -= 1
            else:
                link._sanitizer_probe_inner(key, packets)  # type: ignore[attr-defined]

        link._deliver_probe_run = deliver_probe_run  # type: ignore[method-assign]

        if link.deliver is not None:
            inner_deliver = link.deliver

            @functools.wraps(inner_deliver)
            def deliver(packet: "Packet", inport: str) -> None:
                if self._expect_drop:
                    self.violate(
                        "stale-probe",
                        f"stale-epoch probe delivered on "
                        f"{link.src}->{link.dst} (registered epoch is dead)")
                kind = packet.kind
                if dst_host is not None and kind in self._received:
                    self._received[kind] += 1
                inner_deliver(packet, inport)
                if dst_host is not None and kind == "ack":
                    self._check_sender(dst_host, packet)

            link.deliver = deliver  # type: ignore[method-assign]

        if link.deliver_batch is not None:
            inner_batch = link.deliver_batch

            @functools.wraps(inner_batch)
            def deliver_batch(packets: List["Packet"], inport: str,
                              wave: Any = None) -> None:
                if self._expect_drop:
                    self.violate(
                        "stale-probe",
                        f"stale-epoch probe batch delivered on "
                        f"{link.src}->{link.dst} (registered epoch is dead)")
                if wave is None:
                    inner_batch(packets, inport)
                else:
                    inner_batch(packets, inport, wave)

            link.deliver_batch = deliver_batch  # type: ignore[method-assign]

        inner_transmit = link._transmit_next

        @functools.wraps(inner_transmit)
        def transmit_next() -> None:
            if link._queue:
                kind = link._queue[0].kind
                if kind in self._inflight:
                    self._inflight[kind] += 1
            inner_transmit()

        link._transmit_next = transmit_next  # type: ignore[method-assign]

        inner_deliver_packet = link._deliver_packet

        @functools.wraps(inner_deliver_packet)
        def deliver_packet(packet: "Packet", epoch: int) -> None:
            kind = packet.kind
            if kind in self._inflight:
                self._inflight[kind] -= 1
                if link.failed or epoch != link._fail_epoch:
                    self._lost[kind] += 1
            inner_deliver_packet(packet, epoch)

        link._deliver_packet = deliver_packet  # type: ignore[method-assign]

        inner_fail = link.fail

        @functools.wraps(inner_fail)
        def fail() -> None:
            for packet in link._queue:
                if packet.kind in self._lost:
                    self._lost[packet.kind] += 1
            inner_fail()

        link.fail = fail  # type: ignore[method-assign]

    def _check_sender(self, host: "Host", packet: "Packet") -> None:
        """Post-ACK transport sanity: in-flight never negative, cwnd >= 1."""
        sender = host._senders.get(packet.flow_id)
        if sender is None:
            return
        self.checks_run += 1
        if sender.in_flight < 0:
            self.violate(
                "sender-sanity",
                f"flow {packet.flow_id}: in_flight={sender.in_flight} < 0 "
                f"after ACK {packet.ack_seq}")
        if sender.cwnd < 1.0:
            self.violate(
                "sender-sanity",
                f"flow {packet.flow_id}: cwnd={sender.cwnd} collapsed below "
                f"the 1-segment floor")

    def _instrument_host(self, host: "Host") -> None:
        inner_transmit = host._transmit

        @functools.wraps(inner_transmit)
        def transmit(packet: "Packet") -> None:
            if packet.kind in self._injected:
                self._injected[packet.kind] += 1
            inner_transmit(packet)

        host._transmit = transmit  # type: ignore[method-assign]

    def _instrument_stats(self, stats: "StatsCollector") -> None:
        inner_drop = stats.record_drop

        @functools.wraps(inner_drop)
        def record_drop(link: "SimLink", packet: "Packet") -> None:
            if packet.kind in self._dropped:
                self._dropped[packet.kind] += 1
            inner_drop(link, packet)

        stats.record_drop = record_drop  # type: ignore[method-assign]

        inner_switch_drop = stats.record_switch_drop

        @functools.wraps(inner_switch_drop)
        def record_switch_drop(packet: "Packet") -> None:
            if packet.kind in self._dropped:
                self._dropped[packet.kind] += 1
            inner_switch_drop(packet)

        stats.record_switch_drop = record_switch_drop  # type: ignore[method-assign]

    def _instrument_routing(self, switch: str, logic: Any) -> None:
        """Contra table coherence (duck-typed: Hula has no FwdT/BestT)."""
        fwdt = getattr(logic, "fwdt", None)
        bestt = getattr(logic, "bestt", None)
        if fwdt is None or bestt is None:
            return
        self._contra.append((switch, logic))
        versioned = bool(getattr(getattr(logic, "system", None),
                                 "use_versioning", False))

        inner_install = fwdt.install

        @functools.wraps(inner_install)
        def install(key: Any, entry: Any) -> None:
            if versioned:
                self.checks_run += 1
                old = fwdt.lookup(key)
                if old is not None and entry.version < old.version:
                    self.violate(
                        "fwdt-version",
                        f"switch {switch}: FwdT install for {key} decreased "
                        f"version {old.version} -> {entry.version}")
            inner_install(key, entry)

        fwdt.install = install  # type: ignore[method-assign]
        if hasattr(logic, "_fwdt_install"):
            # The probe loop binds this cached alias per run; repoint it so
            # the hot path routes through the check too.
            logic._fwdt_install = install

        inner_set = bestt.set

        @functools.wraps(inner_set)
        def best_set(destination: str, keys: Any) -> None:
            self.checks_run += 1
            for key in keys:
                if fwdt.lookup(key) is None:
                    self.violate(
                        "bestt-coherence",
                        f"switch {switch}: BestT for {destination!r} points "
                        f"at FwdT key {key} which does not resolve")
            inner_set(destination, keys)

        bestt.set = best_set  # type: ignore[method-assign]

    # ------------------------------------------------------------- quiesce

    def finish(self, network: "Network") -> None:
        """Quiesce-time checks, run by ``Network.run`` after the event loop."""
        if self._network is not network:
            return
        self.current_tag = None
        self._check_conservation(network)
        self._check_goodput(network)
        self._check_rto_liveness(network)
        self._check_shadows()

    def _check_conservation(self, network: "Network") -> None:
        queued: Dict[str, int] = {k: 0 for k in _CONSERVED_KINDS}
        for key in sorted(network.links):
            for packet in network.links[key]._queue:
                if packet.kind in queued:
                    queued[packet.kind] += 1
        for kind in _CONSERVED_KINDS:
            self.checks_run += 1
            accounted = (self._received[kind] + self._dropped[kind]
                         + self._lost[kind] + queued[kind]
                         + self._inflight[kind])
            if self._inflight[kind] < 0 or accounted != self._injected[kind]:
                self.violate(
                    "conservation",
                    f"{kind}: injected {self._injected[kind]} != received "
                    f"{self._received[kind]} + dropped {self._dropped[kind]} "
                    f"+ lost {self._lost[kind]} + queued {queued[kind]} "
                    f"+ in-flight {self._inflight[kind]}")

    def _check_goodput(self, network: "Network") -> None:
        stats = network.stats
        self.checks_run += 1
        if stats.goodput_bytes > stats.delivered_bytes:
            self.violate(
                "goodput",
                f"goodput_bytes {stats.goodput_bytes} exceeds "
                f"delivered_bytes {stats.delivered_bytes}")

    def _check_rto_liveness(self, network: "Network") -> None:
        """Every incomplete reliable flow must have a pending timeout check."""
        from repro.simulator.host import Host

        alive = set()
        for entry in network.sim._queue:
            callback = entry[2]
            if getattr(callback, "__func__", None) is Host._check_timeout \
                    and entry[3]:
                owner = getattr(callback, "__self__", None)
                if owner is not None:
                    alive.add((owner.name, entry[3][0]))
        for name in sorted(network.hosts):
            host = network.hosts[name]
            for flow_id in sorted(host._senders):
                sender = host._senders[flow_id]
                if sender.completed:
                    continue
                self.checks_run += 1
                if (name, flow_id) not in alive:
                    self.violate(
                        "rto-liveness",
                        f"flow {flow_id} at host {name} is incomplete but "
                        f"has no pending RTO check event (timer chain lost)")

    def _check_shadows(self) -> None:
        """ForwardingShadow lags-but-never-leads the symbolic FwdT."""
        if np is None:
            return
        for switch, logic in self._contra:
            shadow = getattr(logic, "_shadow", None)
            if shadow is None:
                continue
            switch_ids = logic._switch_ids
            num_tags, num_pids = shadow.num_tags, shadow.num_pids
            size = len(shadow.versions)
            present: Dict[int, int] = {}
            for (origin, tag, pid), entry in logic.fwdt.items():
                origin_id = switch_ids.get(origin)
                if origin_id is None or not (0 <= tag < num_tags
                                             and 0 <= pid < num_pids):
                    continue
                flat = (origin_id * num_tags + tag) * num_pids + pid
                if 0 <= flat < size:
                    present[flat] = entry.version
            self.checks_run += 1
            for index in np.nonzero(shadow.versions >= 0)[0]:
                mirrored = int(shadow.versions[int(index)])
                actual = present.get(int(index))
                if actual is None:
                    self.violate(
                        "shadow-coherence",
                        f"switch {switch}: shadow slot {int(index)} carries "
                        f"version {mirrored} but FwdT has no such entry")
                elif mirrored > actual:
                    self.violate(
                        "shadow-coherence",
                        f"switch {switch}: shadow slot {int(index)} version "
                        f"{mirrored} leads FwdT version {actual}")


class SanitizingSimulator(Simulator):
    """A :class:`Simulator` that tags every event and checks engine invariants.

    Scheduling overrides record a provenance tag per heap entry; the run loop
    is a faithful replica of the parent's (same pops, same clock, same
    counters — sanitized summaries are byte-identical) plus the monotonicity
    / tagging checks, the schedule trace, and the race detector's
    adjacency-guarded swap of commutable same-tick events.
    """

    def __init__(self, batching: Optional[bool] = None,
                 sanitize: Optional[bool] = None) -> None:
        super().__init__(batching)
        self.sanitizer = Sanitizer()
        self.sanitizer.sim = self
        #: heap sequence number -> (callback qualname, scheduling site).
        self._tags: Dict[int, Tuple[str, str]] = {}

    # ----------------------------------------------------- tagged scheduling

    def _push(self, time: float, callback: Callable[..., None],
              args: Tuple) -> None:
        seq = self._sequence
        super()._push(time, callback, args)
        if callback is _fire_handle:
            handle = args[0]
            if sys._getframe(1).f_code is PeriodicEvent._fire.__code__:
                self._tags[seq] = (_qualname(handle.callback), "periodic-rearm")
            else:
                self._tags[seq] = (_qualname(handle.callback), _site())
        else:
            self._tags[seq] = (_qualname(callback), _site())

    def call_later(self, delay: float, callback: Callable[..., None],
                   *args: Any) -> None:
        seq = self._sequence
        super().call_later(delay, callback, *args)
        self._tags[seq] = (_qualname(callback), _site())

    def call_at(self, time: float, callback: Callable[..., None],
                *args: Any) -> None:
        seq = self._sequence
        super().call_at(time, callback, *args)
        self._tags[seq] = (_qualname(callback), _site())

    def call_batched(self, time: float, callback: Callable[..., None],
                     key: Any, arg: Any) -> None:
        if not self._batching:
            # Routes through our _push, which tags the entry.
            super().call_batched(time, callback, key, arg)
            return
        seq = self._sequence
        super().call_batched(time, callback, key, arg)
        if self._sequence != seq:            # a new batch entry was pushed
            self._tags[seq] = (_qualname(callback), "batch-lane")

    # ------------------------------------------------------------- run loop

    def _race_commutable(self,
                         entry: Tuple[float, int, Callable[..., None], Tuple]
                         ) -> bool:
        """Whether this heap entry is a permutable periodic round.

        Only *documented-commutable* rounds qualify (the routing system's
        ``commutable_rounds``, resolved by the race installer): active
        periodic handles whose callback is in the commutable set.  Batch-lane
        entries and packet events never qualify — their same-tick order is
        contractual FIFO (ARCHITECTURE.md §6).
        """
        if entry[2] is not _fire_handle:
            return False
        handle = entry[3][0]
        if not isinstance(handle, PeriodicEvent) or not handle.active:
            return False
        callback = handle.callback
        return getattr(callback, "__func__", callback) in self.sanitizer.race_commutable

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        self._stopped = False
        queue = self._queue
        tags = self._tags
        sanitizer = self.sanitizer
        rng = sanitizer.race_rng
        tracing = sanitizer.trace_enabled
        processed_this_call = 0
        while queue and not self._stopped:
            entry = queue[0]
            if until is not None and entry[0] > until:
                self._now = until
                return self._now
            heapq.heappop(queue)
            callback = entry[2]
            if callback is _fire_handle and not entry[3][0].active:
                self._cancelled -= 1
                tags.pop(entry[1], None)
                if self._cancelled < 0:
                    sanitizer.violate(
                        "counter-coherence",
                        "cancelled-entry counter went negative on expiry")
                continue
            if rng is not None and queue:
                head = queue[0]
                if head[0] == entry[0] and self._race_commutable(entry) \
                        and self._race_commutable(head) \
                        and rng.random() < 0.5:
                    # Swap two adjacent commutable same-tick rounds: the
                    # popped entry goes back (it still has the smaller
                    # sequence, so it pops next) and the head runs first.
                    entry = heapq.heapreplace(queue, entry)
                    callback = entry[2]
            tag = tags.pop(entry[1], None)
            if entry[0] < self._now:
                sanitizer.violate(
                    "time-monotonicity",
                    f"event at t={entry[0]!r} popped with the clock already "
                    f"at t={self._now!r}", tag)
            if tag is None:
                sanitizer.violate(
                    "untagged-event",
                    f"heap entry at t={entry[0]!r} carries no provenance tag "
                    f"(scheduled outside the Simulator API)")
            self._now = entry[0]
            if callback is _fire_batch:
                self._run_batch(entry[3][1], tag)
            else:
                sanitizer.current_tag = tag
                if tracing and tag is not None:
                    sanitizer.trace_event(entry[0], tag)
                callback(*entry[3])
            self._events_processed += 1
            processed_this_call += 1
            if max_events is not None and processed_this_call >= max_events:
                break
        if self._stopped:
            self._batch_time = -1.0
        if until is not None and not queue:
            self._now = max(self._now, until)
        if not queue:
            self._check_drained()
        return self._now

    def _run_batch(self, members: List,
                   batch_tag: Optional[Tuple[str, str]]) -> None:
        """Replica of ``engine._fire_batch`` with per-member provenance."""
        sanitizer = self.sanitizer
        tracing = sanitizer.trace_enabled
        if members is self._batch:
            self._batch_time = -1.0
            self._batch = None
        self._batch_entries -= 1
        fired = 0
        for index, (callback, key, args) in enumerate(members):
            member_tag = (_qualname(callback), "batch-lane")
            sanitizer.current_tag = member_tag
            if tracing:
                sanitizer.trace_event(self._now, member_tag)
            callback(key, args)
            fired += len(args)
            if self._stopped and index + 1 < len(members):
                rest = members[index + 1:]
                seq = self._sequence
                self._sequence = seq + 1
                heapq.heappush(self._queue,
                               (self._now, seq, _fire_batch, (self, rest)))
                self._tags[seq] = ("batch-lane", "stop-requeue")
                self._batch_entries += 1
                break
        self._batch_pending -= fired
        self._events_processed += fired - 1

    def _check_drained(self) -> None:
        """Counter coherence once the heap empties (batch-lane sealing)."""
        sanitizer = self.sanitizer
        sanitizer.checks_run += 1
        if self._cancelled != 0:
            sanitizer.violate(
                "counter-coherence",
                f"queue drained with _cancelled={self._cancelled} "
                f"(tombstones unaccounted)")
        if self._batch_pending != 0 or self._batch_entries != 0:
            sanitizer.violate(
                "counter-coherence",
                f"queue drained with batch counters pending="
                f"{self._batch_pending} entries={self._batch_entries}")
