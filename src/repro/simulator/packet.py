"""Packet model.

The simulator works in units of one MSS-sized data packet.  Three packet
kinds exist:

* ``DATA``  — one segment of a flow,
* ``ACK``   — cumulative acknowledgement flowing back to the sender,
* ``PROBE`` — a Contra/Hula control probe carrying a metric payload.

Contra-specific header fields (tag, probe id, TTL) live directly on the packet
object; routing systems that do not use them simply ignore them.  Header sizes
are tracked in bits so the traffic-overhead experiment (Figure 16) can account
for the extra bytes Contra and Hula place on the wire.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["Packet", "PacketKind", "DATA_PACKET_BYTES", "ACK_PACKET_BYTES", "BASE_PROBE_BYTES"]

#: Nominal wire size of a full data segment (one MSS plus headers).
DATA_PACKET_BYTES = 1500
#: Nominal wire size of an ACK.
ACK_PACKET_BYTES = 64
#: Probe size excluding the Contra metric payload (Ethernet/IP framing).
BASE_PROBE_BYTES = 42

_packet_ids = itertools.count()


class PacketKind:
    DATA = "data"
    ACK = "ack"
    PROBE = "probe"


@dataclass(slots=True)
class Packet:
    """One simulated packet.

    Only the fields relevant to the packet's kind are meaningful; e.g. probe
    payloads live in :attr:`probe`, Contra data-plane tags in :attr:`tag` /
    :attr:`pid`.  The class is slotted: millions of packets are created per
    run and the per-instance dict would dominate allocation cost.
    """

    kind: str
    src_host: str
    dst_host: str
    flow_id: int = -1
    seq: int = -1
    size_bytes: int = DATA_PACKET_BYTES
    created_at: float = 0.0

    # Destination/next-hop bookkeeping filled in by switches.
    dst_switch: str = ""
    src_switch: str = ""

    # Contra data-plane header (also reused by Hula for its best-path tag).
    tag: Optional[int] = None
    pid: int = 0
    ttl: int = 64
    extra_header_bits: int = 0

    # Probe payload (set only for PROBE packets); an arbitrary object so each
    # routing system can stash whatever structure it needs (Hula uses a plain
    # dict, Contra its immutable ProbePayload).
    probe: Optional[Any] = None

    # SPAIN-style source routing: remaining switch path chosen at ingress.
    source_route: Optional[Tuple[str, ...]] = None

    # Cumulative-ACK payload.
    ack_seq: int = -1

    # Cached stable flow hash (computed on first use; the same value is used
    # by every switch the packet traverses for ECMP/flowlet/loop hashing).
    flow_hash: Optional[int] = None

    # Measurement-only fields (not part of any protocol): the switches this
    # packet visited (populated when StatsCollector.record_paths is on) and
    # whether a revisit — i.e. a forwarding loop — was observed.
    path_trace: Optional[List[str]] = None
    looped: bool = False

    packet_id: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def wire_bytes(self) -> float:
        """Bytes this packet occupies on the wire including extra header bits."""
        return self.size_bytes + self.extra_header_bits / 8.0

    @property
    def is_data(self) -> bool:
        return self.kind == PacketKind.DATA

    @property
    def is_ack(self) -> bool:
        return self.kind == PacketKind.ACK

    @property
    def is_probe(self) -> bool:
        return self.kind == PacketKind.PROBE

    def flow_key(self) -> Tuple[str, str, int]:
        """Identifier used for flowlet hashing (stands in for the 5-tuple)."""
        return (self.src_host, self.dst_host, self.flow_id)

    def __repr__(self) -> str:
        if self.is_probe:
            origin = getattr(self.probe, "origin", None)
            if origin is None and isinstance(self.probe, dict):
                origin = self.probe.get("origin")
            return f"Packet(probe origin={origin if origin is not None else '?'} pid={self.pid})"
        return (f"Packet({self.kind} flow={self.flow_id} seq={self.seq} "
                f"{self.src_host}->{self.dst_host})")
