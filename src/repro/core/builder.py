"""Programmatic builder API for Contra policies.

The textual syntax (see :mod:`repro.core.parser`) mirrors the paper exactly;
this module offers an equivalent, IDE-friendly way to construct the same ASTs
from Python::

    from repro.core.builder import path, if_, matches, minimize, inf

    policy = minimize(if_(matches("A .*"), path.util, path.lat))

Numbers are coerced to :class:`~repro.core.ast.Const`, strings in boolean
positions are parsed as path regular expressions, and tuples become
lexicographic tuple ranks.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.core import ast
from repro.core.attributes import ATTRIBUTES
from repro.core.regex import PathRegex, parse_regex
from repro.exceptions import PolicyError

__all__ = [
    "path", "inf", "const", "minimize", "if_", "matches", "rank_tuple",
    "add", "sub", "min_of", "max_of", "lt", "le", "gt", "ge", "eq", "ne",
    "not_", "and_", "or_", "as_expr", "as_bool",
]

ExprLike = Union[ast.Expr, int, float, tuple, list]
BoolLike = Union[ast.BoolExpr, str, PathRegex, bool]


class _PathNamespace:
    """Accessor object so policies can write ``path.util`` literally."""

    def __getattr__(self, name: str) -> ast.Attr:
        if name.startswith("_"):
            raise AttributeError(name)
        if name not in ATTRIBUTES:
            raise PolicyError(f"unknown path attribute {name!r}; supported: {sorted(ATTRIBUTES)}")
        return ast.Attr(name)

    def __repr__(self) -> str:
        return "path"


#: The ``path`` namespace: ``path.util``, ``path.lat``, ``path.len``.
path = _PathNamespace()

#: The infinite rank.
inf = ast.Infinite()


def const(value: float) -> ast.Const:
    """A constant numeric rank."""
    return ast.Const(float(value))


def as_expr(value: ExprLike) -> ast.Expr:
    """Coerce a Python value into a rank expression."""
    if isinstance(value, ast.Expr):
        return value
    if isinstance(value, bool):
        raise PolicyError("a boolean cannot be used as a rank expression")
    if isinstance(value, (int, float)):
        return ast.Const(float(value))
    if isinstance(value, (tuple, list)):
        return rank_tuple(*value)
    raise PolicyError(f"cannot interpret {value!r} as a rank expression")


def as_bool(value: BoolLike) -> ast.BoolExpr:
    """Coerce a Python value into a boolean test (strings become path regexes)."""
    if isinstance(value, ast.BoolExpr):
        return value
    if isinstance(value, bool):
        return ast.BoolConst(value)
    if isinstance(value, PathRegex):
        return ast.RegexTest(value)
    if isinstance(value, str):
        return ast.RegexTest(parse_regex(value))
    raise PolicyError(f"cannot interpret {value!r} as a boolean test")


def rank_tuple(*items: ExprLike) -> ast.Expr:
    """A lexicographic tuple rank; single-item tuples collapse to the item."""
    exprs = [as_expr(i) for i in items]
    if not exprs:
        raise PolicyError("rank_tuple() needs at least one component")
    if len(exprs) == 1:
        return exprs[0]
    return ast.TupleExpr(tuple(exprs))


def if_(condition: BoolLike, then_branch: ExprLike, else_branch: ExprLike) -> ast.If:
    """``if condition then then_branch else else_branch``."""
    return ast.If(as_bool(condition), as_expr(then_branch), as_expr(else_branch))


def matches(pattern: Union[str, PathRegex]) -> ast.RegexTest:
    """A boolean test that the path matches ``pattern``."""
    if isinstance(pattern, str):
        pattern = parse_regex(pattern)
    return ast.RegexTest(pattern)


def add(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return ast.BinOp("+", as_expr(left), as_expr(right))


def sub(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return ast.BinOp("-", as_expr(left), as_expr(right))


def min_of(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return ast.BinOp("min", as_expr(left), as_expr(right))


def max_of(left: ExprLike, right: ExprLike) -> ast.BinOp:
    return ast.BinOp("max", as_expr(left), as_expr(right))


def lt(left: ExprLike, right: ExprLike) -> ast.Compare:
    return ast.Compare("<", as_expr(left), as_expr(right))


def le(left: ExprLike, right: ExprLike) -> ast.Compare:
    return ast.Compare("<=", as_expr(left), as_expr(right))


def gt(left: ExprLike, right: ExprLike) -> ast.Compare:
    return ast.Compare(">", as_expr(left), as_expr(right))


def ge(left: ExprLike, right: ExprLike) -> ast.Compare:
    return ast.Compare(">=", as_expr(left), as_expr(right))


def eq(left: ExprLike, right: ExprLike) -> ast.Compare:
    return ast.Compare("==", as_expr(left), as_expr(right))


def ne(left: ExprLike, right: ExprLike) -> ast.Compare:
    return ast.Compare("!=", as_expr(left), as_expr(right))


def not_(value: BoolLike) -> ast.Not:
    return ast.Not(as_bool(value))


def and_(left: BoolLike, right: BoolLike) -> ast.And:
    return ast.And(as_bool(left), as_bool(right))


def or_(left: BoolLike, right: BoolLike) -> ast.Or:
    return ast.Or(as_bool(left), as_bool(right))


def minimize(expression: ExprLike, name: str = "policy") -> ast.Policy:
    """Build a ``minimize`` policy from a rank expression (or number / tuple)."""
    return ast.Minimize(as_expr(expression), name=name)
