"""P4 code generation backend.

The paper's compiler emits one P4 program per switch; the programs differ only
in the constants baked into them (tag transition entries, multicast groups,
probe origin tag).  This module renders a :class:`~repro.core.device_config
.DeviceConfig` into a P4_16-style source file with the same structure:

* header definitions for the Contra probe and the per-packet tag,
* registers for the forwarding table (FwdT), best-choice table (BestT),
  policy-aware flowlet table and loop-detection table,
* match-action tables for probe tag transitions and probe multicast, and
* an ingress control block implementing PROCESSPROBE / SWIFORWARDPKT
  (Figure 7).

The output is meant to be human-readable and faithful to the structure of the
synthesized programs; it is not fed to an actual P4 compiler in this
reproduction (the simulator interprets the DeviceConfig directly instead).
"""

from __future__ import annotations

import textwrap
import zlib
from typing import Dict, Iterable, List, Optional

from repro.core.compiler import CompiledPolicy
from repro.core.device_config import DeviceConfig

__all__ = ["generate_p4", "generate_all_p4", "P4Program"]


class P4Program:
    """A generated per-switch P4 program plus a few summary statistics."""

    def __init__(self, switch: str, source: str, table_entries: int):
        self.switch = switch
        self.source = source
        self.table_entries = table_entries

    @property
    def lines_of_code(self) -> int:
        return len(self.source.splitlines())

    def __repr__(self) -> str:
        return f"P4Program(switch={self.switch!r}, loc={self.lines_of_code})"


def _header_block(config: DeviceConfig) -> str:
    metric_fields = "\n".join(
        f"    bit<32> metric_{name};" for name in config.carried_attrs) or "    bit<32> metric_len;"
    return f"""\
// ---- Headers -------------------------------------------------------------
header ethernet_t {{
    bit<48> dstAddr;
    bit<48> srcAddr;
    bit<16> etherType;
}}

// Contra probe header (origin, probe id, version, product-graph tag, metrics).
header contra_probe_t {{
    bit<16> origin;
    bit<8>  pid;
    bit<16> version;
    bit<{max(8, config.tag_bits())}>  tag;
{metric_fields}
}}

// Per-packet Contra tag carried by data traffic.
header contra_tag_t {{
    bit<{max(8, config.tag_bits())}>  tag;
    bit<8>  pid;
    bit<16> origin;
    bit<8>  ttl;
}}
"""


def _register_block(config: DeviceConfig) -> str:
    destinations = max(1, config.network_size)
    fwdt_size = destinations * config.num_tags * config.num_probe_ids
    flowlet_size = config.flowlet_slots * max(1, config.num_tags) * config.num_probe_ids
    return f"""\
// ---- State ----------------------------------------------------------------
// Forwarding table FwdT[dst, tag, pid] -> (metrics, next tag, next hop, version)
register<bit<32>>({fwdt_size}) fwdt_metric;
register<bit<16>>({fwdt_size}) fwdt_version;
register<bit<8>>({fwdt_size})  fwdt_ntag;
register<bit<9>>({fwdt_size})  fwdt_nhop;

// Best-choice table BestT[dst] -> (tag, pid)
register<bit<8>>({destinations}) bestt_tag;
register<bit<8>>({destinations}) bestt_pid;

// Policy-aware flowlet table keyed by (tag, pid, flowlet id)
register<bit<9>>({flowlet_size})  flowlet_nhop;
register<bit<8>>({flowlet_size})  flowlet_ntag;
register<bit<48>>({flowlet_size}) flowlet_time;

// Loop detection table keyed by packet hash -> (max ttl, min ttl)
register<bit<8>>({config.loop_table_slots}) loop_max_ttl;
register<bit<8>>({config.loop_table_slots}) loop_min_ttl;
"""


def _probe_transition_table(config: DeviceConfig) -> str:
    entries = []
    for (neighbor, neighbor_tag), local_tag in sorted(config.probe_transition.items()):
        # crc32, not hash(): the builtin is salted per process
        # (PYTHONHASHSEED) and would make the emitted source nondeterministic.
        neighbor_key = zlib.crc32(neighbor.encode("utf-8")) & 0xffff
        entries.append(f"        // probe from {neighbor} tag {neighbor_tag} -> local tag {local_tag}\n"
                       f"        ({neighbor_key}, {neighbor_tag}) : "
                       f"set_local_tag({local_tag});")
    entries_text = "\n".join(entries) if entries else "        // no product-graph edges into this switch"
    return f"""\
// ---- Probe tag transition (NEXTPGNODE) -------------------------------------
action set_local_tag(bit<8> tag) {{
    meta.local_tag = tag;
}}
action drop_probe() {{
    mark_to_drop(standard_metadata);
}}
table probe_transition {{
    key = {{
        meta.ingress_neighbor : exact;
        hdr.probe.tag         : exact;
    }}
    actions = {{ set_local_tag; drop_probe; }}
    default_action = drop_probe();
    const entries = {{
{entries_text}
    }}
}}
"""


def _multicast_table(config: DeviceConfig) -> str:
    entries = []
    for tag, info in sorted(config.tags.items()):
        group = ", ".join(info.multicast_neighbors) if info.multicast_neighbors else "none"
        entries.append(f"        {tag} : set_multicast_group({tag});  // -> {group}")
    entries_text = "\n".join(entries) if entries else "        // no multicast groups"
    return f"""\
// ---- Probe multicast (MULTICASTPROBE) ---------------------------------------
action set_multicast_group(bit<16> group) {{
    standard_metadata.mcast_grp = group;
}}
table probe_multicast {{
    key = {{ meta.local_tag : exact; }}
    actions = {{ set_multicast_group; NoAction; }}
    default_action = NoAction();
    const entries = {{
{entries_text}
    }}
}}
"""


def _control_block(config: DeviceConfig) -> str:
    attrs = ", ".join(config.carried_attrs) if config.carried_attrs else "len"
    update_lines = []
    for name in config.carried_attrs:
        if name == "util":
            update_lines.append("        // util composes by max over the inbound link")
            update_lines.append("        hdr.probe.metric_util = max(hdr.probe.metric_util, "
                                "meta.link_util);")
        elif name == "lat":
            update_lines.append("        hdr.probe.metric_lat = hdr.probe.metric_lat + meta.link_lat;")
        elif name == "len":
            update_lines.append("        hdr.probe.metric_len = hdr.probe.metric_len + 1;")
    update_text = "\n".join(update_lines) or "        // static policy: no metric updates"
    return f"""\
// ---- Ingress control (PROCESSPROBE / SWIFORWARDPKT) ------------------------
control ContraIngress(inout headers hdr, inout metadata meta,
                      inout standard_metadata_t standard_metadata) {{
    apply {{
        if (hdr.probe.isValid()) {{
            // UPDATEMVEC: fold the inbound link's metrics ({attrs}) into the probe.
{update_text}
            probe_transition.apply();
            // f(pid, mv) comparison + FwdT / BestT update, then re-multicast.
            probe_multicast.apply();
        }} else if (hdr.tag.isValid()) {{
            // Policy-aware flowlet switching keyed by (tag, pid, flowlet id),
            // falling back to FwdT on expiry; loop detection by TTL delta.
            // (Populated at runtime; see Figure 7 SWIFORWARDPKT.)
        }}
    }}
}}
"""


def generate_p4(config: DeviceConfig, policy_name: str = "policy") -> P4Program:
    """Render one switch's configuration as a P4_16-style program."""
    sections = [
        f"// Contra synthesized program for switch {config.switch}\n"
        f"// policy: {policy_name}; tags: {config.num_tags}; probe ids: {config.num_probe_ids}\n"
        f"// probe payload: {config.probe_bits()} bits; packet tag overhead: "
        f"{config.packet_tag_bits()} bits\n"
        "#include <core.p4>\n#include <v1model.p4>\n",
        _header_block(config),
        _register_block(config),
        _probe_transition_table(config),
        _multicast_table(config),
        _control_block(config),
        "V1Switch(ContraParser(), ContraVerifyChecksum(), ContraIngress(),\n"
        "         ContraEgress(), ContraComputeChecksum(), ContraDeparser()) main;\n",
    ]
    source = "\n".join(sections)
    table_entries = len(config.probe_transition) + len(config.tags)
    return P4Program(config.switch, source, table_entries)


def generate_all_p4(compiled: CompiledPolicy) -> Dict[str, P4Program]:
    """Generate the per-switch P4 programs for a compiled policy."""
    return {
        switch: generate_p4(cfg, policy_name=compiled.policy.name)
        for switch, cfg in compiled.device_configs.items()
    }
