"""P4 code generation backend for compiled Contra policies."""

from repro.core.p4gen.codegen import P4Program, generate_all_p4, generate_p4

__all__ = ["P4Program", "generate_p4", "generate_all_p4"]
