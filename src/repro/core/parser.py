"""Parser for the textual Contra policy language.

The concrete syntax follows the paper (Figure 2 and the examples in §2), e.g.::

    minimize( if A .* then path.util else path.lat )
    minimize( if .* W .* then 0 else inf )
    minimize( if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util) )
    minimize( (if .* A B .* then 10 else 0) + path.len )

The grammar is ambiguous in boolean positions: ``if A B D then ...`` uses a
path regular expression, while ``if path.util < .8 then ...`` uses a metric
comparison.  The parser resolves this the same way a reader does: it scans the
boolean test up to the enclosing ``then``/``and``/``or``; if the scan finds a
comparison operator at the top nesting level the test is a comparison,
otherwise the raw text of the test is parsed as a path regex.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core import ast
from repro.core.regex import parse_regex
from repro.exceptions import PolicyParseError

__all__ = ["parse_policy", "parse_expression"]

_TOKEN_SPEC = [
    ("number", r"\d+\.\d*|\.\d+|\d+"),
    ("pathattr", r"path\.[A-Za-z_][A-Za-z0-9_]*"),
    ("cmp", r"<=|>=|==|!=|<|>"),
    ("ident", r"[A-Za-z_][A-Za-z0-9_]*"),
    ("infinity", r"∞"),
    ("plus", r"\+"),
    ("minus", r"-"),
    ("star", r"\*"),
    ("dot", r"\."),
    ("lparen", r"\("),
    ("rparen", r"\)"),
    ("comma", r","),
    ("ws", r"\s+"),
]
_TOKEN_RE = re.compile("|".join(f"(?P<{name}>{pattern})" for name, pattern in _TOKEN_SPEC))

_KEYWORDS = {"minimize", "if", "then", "else", "not", "and", "or", "inf", "min", "max"}


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str
    start: int


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise PolicyParseError("unexpected character", pos, text)
        kind = match.lastgroup or ""
        value = match.group()
        if kind != "ws":
            if kind == "ident" and value in _KEYWORDS:
                kind = value
            if kind == "infinity":
                kind = "inf"
                value = "inf"
            tokens.append(_Token(kind, value, match.start()))
        pos = match.end()
    return tokens


class _PolicyParser:
    """Recursive-descent parser over the token stream."""

    _BOOL_STOP = {"then", "and", "or"}

    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # ------------------------------------------------------------- utilities

    def _peek(self, offset: int = 0) -> Optional[_Token]:
        idx = self.index + offset
        return self.tokens[idx] if idx < len(self.tokens) else None

    def _advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._peek()
        if token is None or token.kind != kind:
            where = token.start if token else len(self.text)
            found = token.value if token else "end of input"
            raise PolicyParseError(f"expected {kind!r} but found {found!r}", where, self.text)
        return self._advance()

    def _error(self, message: str) -> PolicyParseError:
        token = self._peek()
        where = token.start if token else len(self.text)
        return PolicyParseError(message, where, self.text)

    # ---------------------------------------------------------------- policy

    def parse_policy(self) -> ast.Policy:
        self._expect("minimize")
        self._expect("lparen")
        expression = self.parse_expr()
        self._expect("rparen")
        if self._peek() is not None:
            raise self._error("trailing input after policy")
        return ast.Minimize(expression)

    def parse_standalone_expr(self) -> ast.Expr:
        expression = self.parse_expr()
        if self._peek() is not None:
            raise self._error("trailing input after expression")
        return expression

    # ----------------------------------------------------------- expressions

    def parse_expr(self) -> ast.Expr:
        token = self._peek()
        if token is not None and token.kind == "if":
            return self.parse_if()
        return self.parse_additive()

    def parse_if(self) -> ast.Expr:
        self._expect("if")
        condition = self.parse_bool()
        self._expect("then")
        then_branch = self.parse_expr()
        self._expect("else")
        else_branch = self.parse_expr()
        return ast.If(condition, then_branch, else_branch)

    def parse_additive(self) -> ast.Expr:
        left = self.parse_term()
        while True:
            token = self._peek()
            if token is None or token.kind not in ("plus", "minus"):
                return left
            op = "+" if token.kind == "plus" else "-"
            self._advance()
            right = self.parse_term()
            left = ast.BinOp(op, left, right)

    def parse_term(self) -> ast.Expr:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of policy expression")
        if token.kind == "number":
            self._advance()
            return ast.Const(float(token.value))
        if token.kind == "inf":
            self._advance()
            return ast.Infinite()
        if token.kind == "pathattr":
            self._advance()
            return ast.Attr(token.value.split(".", 1)[1])
        if token.kind in ("min", "max"):
            self._advance()
            self._expect("lparen")
            left = self.parse_expr()
            self._expect("comma")
            right = self.parse_expr()
            self._expect("rparen")
            return ast.BinOp(token.kind, left, right)
        if token.kind == "if":
            return self.parse_if()
        if token.kind == "lparen":
            return self.parse_paren_expr()
        raise self._error(f"unexpected token {token.value!r} in policy expression")

    def parse_paren_expr(self) -> ast.Expr:
        """A parenthesised expression or a tuple rank ``(e1, e2, ...)``."""
        self._expect("lparen")
        items = [self.parse_expr()]
        while self._peek() is not None and self._peek().kind == "comma":
            self._advance()
            items.append(self.parse_expr())
        self._expect("rparen")
        if len(items) == 1:
            return items[0]
        return ast.TupleExpr(tuple(items))

    # --------------------------------------------------------------- booleans

    def parse_bool(self) -> ast.BoolExpr:
        left = self.parse_bool_and()
        while self._peek() is not None and self._peek().kind == "or":
            self._advance()
            right = self.parse_bool_and()
            left = ast.Or(left, right)
        return left

    def parse_bool_and(self) -> ast.BoolExpr:
        left = self.parse_bool_factor()
        while self._peek() is not None and self._peek().kind == "and":
            self._advance()
            right = self.parse_bool_factor()
            left = ast.And(left, right)
        return left

    def parse_bool_factor(self) -> ast.BoolExpr:
        token = self._peek()
        if token is None:
            raise self._error("unexpected end of boolean test")
        if token.kind == "not":
            self._advance()
            return ast.Not(self.parse_bool_factor())

        kind, stop_index = self._classify_bool_factor()
        if kind == "comparison":
            left = self.parse_additive()
            op_token = self._expect("cmp")
            right = self.parse_additive()
            return ast.Compare(op_token.value, left, right)

        # Path regex: hand the raw text slice to the regex parser.
        start_pos = token.start
        if stop_index < len(self.tokens):
            end_pos = self.tokens[stop_index].start
        else:
            end_pos = len(self.text)
        raw = self.text[start_pos:end_pos]
        pattern = parse_regex(raw)
        self.index = stop_index
        return ast.RegexTest(pattern)

    def _classify_bool_factor(self) -> Tuple[str, int]:
        """Decide whether the upcoming boolean factor is a comparison or a regex.

        Returns ``(kind, stop_index)`` where ``stop_index`` is the token index
        of the terminator (``then`` / ``and`` / ``or`` / an unbalanced ``)`` /
        end of input).
        """
        depth = 0
        idx = self.index
        saw_cmp = False
        while idx < len(self.tokens):
            token = self.tokens[idx]
            if token.kind == "lparen":
                depth += 1
            elif token.kind == "rparen":
                if depth == 0:
                    break
                depth -= 1
            elif depth == 0:
                if token.kind in self._BOOL_STOP:
                    break
                if token.kind == "cmp":
                    saw_cmp = True
            idx += 1
        return ("comparison" if saw_cmp else "regex"), idx


def parse_policy(text: str) -> ast.Policy:
    """Parse a full ``minimize(...)`` policy written in the paper's syntax."""
    if not isinstance(text, str) or not text.strip():
        raise PolicyParseError("policy text must be a non-empty string")
    return _PolicyParser(text).parse_policy()


def parse_expression(text: str) -> ast.Expr:
    """Parse a bare rank expression (without the surrounding ``minimize``)."""
    if not isinstance(text, str) or not text.strip():
        raise PolicyParseError("expression text must be a non-empty string")
    return _PolicyParser(text).parse_standalone_expr()
