"""Static analyses of Contra policies.

Classification passes (monotonicity, isotonicity, decomposition) plus the
verification plane: semantic counterexample search, product-graph
reachability/dead-state pruning, and the lowered-table cross-checker.
"""

from repro.core.analysis.crosscheck import (
    CrosscheckReport,
    crosscheck_lowered_tables,
    verify_lowered_tables,
)
from repro.core.analysis.decomposition import Decomposition, SubPolicy, decompose
from repro.core.analysis.isotonicity import IsotonicityResult, branch_is_isotonic, check_isotonicity
from repro.core.analysis.monotonicity import (
    MonotonicityResult,
    check_monotonicity,
    coerce_expression,
    require_monotone,
)
from repro.core.analysis.reachability import (
    ReachabilityReport,
    analyze_reachability,
    prune_dead_nodes,
)
from repro.core.analysis.semantic import (
    IsotonicityWitness,
    MonotonicityWitness,
    SearchDomain,
    SemanticIsotonicityResult,
    SemanticMonotonicityResult,
    check_semantic_isotonicity,
    check_semantic_monotonicity,
)
from repro.core.analysis.verification import VerificationReport, verify_policy

__all__ = [
    "Decomposition",
    "SubPolicy",
    "decompose",
    "IsotonicityResult",
    "branch_is_isotonic",
    "check_isotonicity",
    "MonotonicityResult",
    "check_monotonicity",
    "coerce_expression",
    "require_monotone",
    "SearchDomain",
    "MonotonicityWitness",
    "IsotonicityWitness",
    "SemanticMonotonicityResult",
    "SemanticIsotonicityResult",
    "check_semantic_monotonicity",
    "check_semantic_isotonicity",
    "ReachabilityReport",
    "analyze_reachability",
    "prune_dead_nodes",
    "CrosscheckReport",
    "crosscheck_lowered_tables",
    "verify_lowered_tables",
    "VerificationReport",
    "verify_policy",
]
