"""Static analyses of Contra policies: monotonicity, isotonicity, decomposition."""

from repro.core.analysis.decomposition import Decomposition, SubPolicy, decompose
from repro.core.analysis.isotonicity import IsotonicityResult, branch_is_isotonic, check_isotonicity
from repro.core.analysis.monotonicity import MonotonicityResult, check_monotonicity, require_monotone

__all__ = [
    "Decomposition",
    "SubPolicy",
    "decompose",
    "IsotonicityResult",
    "branch_is_isotonic",
    "check_isotonicity",
    "MonotonicityResult",
    "check_monotonicity",
    "require_monotone",
]
