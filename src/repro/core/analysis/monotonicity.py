"""Monotonicity analysis of Contra policies.

A policy is *monotonic* when extending a path can never improve (decrease) its
rank.  Contra requires monotonicity so that probes are not propagated forever
around loops (§2, §4.3, §5.1): a probe whose metric only degrades as it
travels will eventually stop improving any switch's table and die out.

The analysis is a conservative structural walk over the policy AST.  It only
answers "provably monotone" / "not provably monotone"; when in doubt it says
no and reports the offending sub-expression, which is exactly what an operator
needs in order to repair the policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple, Union

from repro.core import ast
from repro.core.attributes import ATTRIBUTES
from repro.exceptions import PolicyAnalysisError

__all__ = ["MonotonicityResult", "check_monotonicity", "require_monotone",
           "coerce_expression"]

PolicyOrExpr = Union[ast.Policy, ast.Expr]


def coerce_expression(policy_or_expr: PolicyOrExpr, caller: str) -> ast.Expr:
    """Unwrap a :class:`~repro.core.ast.Policy` to its rank expression.

    Every analysis entry point accepts either a whole policy or a bare rank
    expression; anything else is a caller bug that used to propagate as an
    ``AttributeError`` deep inside the walk — reject it up front instead.
    """
    if isinstance(policy_or_expr, ast.Policy):
        return policy_or_expr.expression
    if isinstance(policy_or_expr, ast.Expr):
        return policy_or_expr
    raise PolicyAnalysisError(
        f"{caller}() expects a Policy or a rank expression, "
        f"got {type(policy_or_expr).__name__}: {policy_or_expr!r}")


@dataclass
class MonotonicityResult:
    """Outcome of the monotonicity analysis."""

    is_monotone: bool
    reasons: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.is_monotone


def check_monotonicity(policy_or_expr: PolicyOrExpr) -> MonotonicityResult:
    """Check whether a policy (or bare expression) is provably monotone."""
    expr = coerce_expression(policy_or_expr, "check_monotonicity")
    result = MonotonicityResult(True)
    _check(expr, result)
    return result


def require_monotone(policy_or_expr: PolicyOrExpr) -> None:
    """Raise :class:`PolicyAnalysisError` if the policy is not provably monotone."""
    result = check_monotonicity(policy_or_expr)
    if not result.is_monotone:
        raise PolicyAnalysisError(
            "policy is not monotone: " + "; ".join(result.reasons))


def _fail(result: MonotonicityResult, message: str) -> None:
    result.is_monotone = False
    result.reasons.append(message)


def _is_constant(expr: ast.Expr) -> bool:
    """True when the expression never depends on path metrics or regexes."""
    if isinstance(expr, (ast.Const, ast.Infinite)):
        return True
    if isinstance(expr, ast.Attr):
        return False
    if isinstance(expr, ast.TupleExpr):
        return all(_is_constant(i) for i in expr.items)
    if isinstance(expr, ast.BinOp):
        return _is_constant(expr.left) and _is_constant(expr.right)
    if isinstance(expr, ast.If):
        return False
    return False


def _check(expr: ast.Expr, result: MonotonicityResult) -> None:
    if isinstance(expr, (ast.Const, ast.Infinite)):
        return
    if isinstance(expr, ast.Attr):
        if not ATTRIBUTES[expr.name].is_monotone:  # pragma: no cover - all builtins monotone
            _fail(result, f"attribute {expr.name!r} is not monotone")
        return
    if isinstance(expr, ast.TupleExpr):
        for item in expr.items:
            _check(item, result)
        return
    if isinstance(expr, ast.BinOp):
        _check(expr.left, result)
        _check(expr.right, result)
        if expr.op == "-" and not _is_constant(expr.right):
            _fail(result, f"subtraction of a metric-dependent expression in {expr} "
                          "can make longer paths look better")
        return
    if isinstance(expr, ast.If):
        _check(expr.then_branch, result)
        _check(expr.else_branch, result)
        condition = expr.condition
        if isinstance(condition, (ast.RegexTest,)) or _only_regex(condition):
            # Branch selection by path shape is resolved structurally by the
            # product graph; monotonicity is then required per branch only.
            result.warnings.append(
                f"conditional on path shape ({condition}) is handled by the product graph")
            return
        if condition.attributes():
            # Metric-dependent guards (e.g. path.util < .8) flip as metrics
            # degrade; the decomposition pass gives each branch its own probe,
            # so we only require per-branch monotonicity, but we surface a
            # warning because ranks may step between branches.
            result.warnings.append(
                f"metric-dependent guard ({condition}) requires policy decomposition")
            return
        return
    raise PolicyAnalysisError(f"unsupported expression node {type(expr).__name__}")


def _only_regex(condition: ast.BoolExpr) -> bool:
    """True when a boolean test only combines regex matches (no metric comparisons)."""
    if isinstance(condition, ast.RegexTest):
        return True
    if isinstance(condition, ast.BoolConst):
        return True
    if isinstance(condition, ast.Not):
        return _only_regex(condition.inner)
    if isinstance(condition, (ast.And, ast.Or)):
        return _only_regex(condition.left) and _only_regex(condition.right)
    if isinstance(condition, ast.Compare):
        return False
    return False
