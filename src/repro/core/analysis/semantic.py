"""Semantic monotonicity/isotonicity checking with concrete counterexamples.

The structural analyses in :mod:`monotonicity` / :mod:`isotonicity` are
conservative classifiers: they answer *no* without saying *why*.  This module
upgrades the verdict to a bounded **semantic** search that, when a policy is
non-monotone or non-isotonic, produces a concrete witness — two metric-vector
assignments plus the single-hop extension whose link values invert their rank
order — which can be replayed through :class:`~repro.core.rank.Rank`
comparison and rendered for an operator.

Semantics checked
-----------------
*Monotonicity* is checked per fixed-guard branch: metric guards are pinned to
each truth assignment (mirroring the decomposition pass, which gives every
guard combination its own probe), and within a branch we require that
extending a path never *decreases* its rank.  Regex tests are likewise pinned,
because the product graph resolves path-shape conditions structurally and
probes only compete within a tag.

*Isotonicity* is checked on the full expression with **live** metric guards
(that is exactly where policies such as the congestion-aware P9 break: an
extension pushes one path across the utilization threshold and flips the
preference) under each fixed regex assignment.  A witness is a pair of metric
vectors ``a < b`` and an extension ``e`` with ``extend(a, e) > extend(b, e)``.

Both searches are bounded (grids of metric values enriched with the
comparison constants appearing in the policy, a capped number of single-hop
extensions, at most :data:`MAX_REGEXES` regexes and ``_MAX_METRIC_GUARDS``
guards), so a *pass* is a bounded certificate, not a proof — but a *witness*
is always a genuine counterexample.  The checks are sound with respect to the
syntactic passes: a semantic witness implies the syntactic analysis also
rejects the policy (see ``tests/unit/test_semantic_analysis.py`` for the
hypothesis property).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core import ast
from repro.core.analysis.decomposition import (
    _MAX_METRIC_GUARDS,
    _collect_metric_guards,
    _fix_guards,
)
from repro.core.analysis.monotonicity import PolicyOrExpr, coerce_expression
from repro.core.attributes import ATTRIBUTES
from repro.core.rank import Rank
from repro.exceptions import PolicyError

__all__ = [
    "SearchDomain",
    "MonotonicityWitness",
    "IsotonicityWitness",
    "SemanticMonotonicityResult",
    "SemanticIsotonicityResult",
    "check_semantic_monotonicity",
    "check_semantic_isotonicity",
]

#: Regexes beyond this many are pinned to "no match" instead of enumerated.
MAX_REGEXES = 4

# Base (path-metric grid, single-link grid) per builtin attribute.  The grids
# are enriched per policy with every comparison constant c appearing in its
# guards (c - eps, c, c + eps), so threshold policies always have points on
# both sides of each threshold.
_BASE_GRIDS: Dict[str, Tuple[Tuple[float, ...], Tuple[float, ...]]] = {
    "util": ((0.0, 0.2, 0.5, 0.7, 0.9, 1.0), (0.2, 0.5, 0.7, 0.9, 1.0)),
    "lat": ((0.0, 0.5, 1.0, 2.5), (0.5, 1.0, 2.5)),
    # len counts hops: the link value is ignored by its extend() (always +1).
    "len": ((0.0, 1.0, 2.0, 5.0), (0.0,)),
}
_DEFAULT_GRID: Tuple[Tuple[float, ...], Tuple[float, ...]] = (
    (0.0, 0.5, 1.0), (0.5, 1.0))


@dataclass(frozen=True)
class SearchDomain:
    """Bounded grids of metric values and link extensions to search over."""

    value_grids: Mapping[str, Tuple[float, ...]]
    link_grids: Mapping[str, Tuple[float, ...]]
    max_vectors: int = 512
    max_extensions: int = 16

    @classmethod
    def for_expression(cls, expr: ast.Expr) -> "SearchDomain":
        """Build a domain covering ``expr``'s attributes and guard constants."""
        value_grids: Dict[str, Tuple[float, ...]] = {}
        link_grids: Dict[str, Tuple[float, ...]] = {}
        constants = _comparison_constants(expr)
        for name in sorted(expr.attributes()):
            values, links = _BASE_GRIDS.get(name, _DEFAULT_GRID)
            extra = constants.get(name, ())
            eps = 0.05 if max(values) <= 1.0 else 0.5
            enriched = set(values)
            for c in extra:
                enriched.update(v for v in (c - eps, c, c + eps) if v >= 0.0)
            value_grids[name] = tuple(sorted(enriched))
            spec = ATTRIBUTES.get(name)
            if extra and spec is not None and spec.is_max_like:
                link_enriched = set(links)
                for c in extra:
                    link_enriched.update(
                        v for v in (c - eps, c, c + eps) if v >= 0.0)
                links = tuple(sorted(link_enriched))
            link_grids[name] = links
        return cls(value_grids=value_grids, link_grids=link_grids)

    def vectors(self, attrs: Sequence[str]) -> List[Dict[str, float]]:
        """All metric-vector assignments over ``attrs``, capped and ordered."""
        grids = [self.value_grids.get(a, _DEFAULT_GRID[0]) for a in attrs]
        product = itertools.product(*grids)
        return [dict(zip(attrs, combo))
                for combo in itertools.islice(product, self.max_vectors)]

    def extensions(self, attrs: Sequence[str]) -> List[Dict[str, float]]:
        """Candidate single-hop extensions (link values per attribute).

        Link grids are iterated worst-first (highest value first) so that the
        congested links most likely to invert preferences survive the cap.
        """
        grids = [tuple(sorted(self.link_grids.get(a, _DEFAULT_GRID[1]),
                              reverse=True))
                 for a in attrs]
        product = itertools.product(*grids)
        return [dict(zip(attrs, combo))
                for combo in itertools.islice(product, self.max_extensions)]


def _comparison_constants(expr: ast.Expr) -> Dict[str, Tuple[float, ...]]:
    """Constants compared against each attribute in the policy's guards."""
    found: Dict[str, List[float]] = {}

    def visit_bool(node: ast.BoolExpr) -> None:
        if isinstance(node, ast.Compare):
            for side, other in ((node.left, node.right),
                                (node.right, node.left)):
                if isinstance(side, ast.Attr) and isinstance(other, ast.Const):
                    found.setdefault(side.name, []).append(float(other.value))
            return
        for child in node.children():
            visit_bool(child)

    def visit(node: ast.Expr) -> None:
        for cond in node.bool_children():
            visit_bool(cond)
        for child in node.children():
            visit(child)

    visit(expr)
    return {name: tuple(values) for name, values in found.items()}


def _extend(metrics: Mapping[str, float],
            extension: Mapping[str, float]) -> Dict[str, float]:
    """Apply a single-hop extension to an accumulated metric vector."""
    return {name: ATTRIBUTES[name].extend(value, extension.get(name, 0.0))
            for name, value in metrics.items()}


def _evaluate(expr: ast.Expr, metrics: Mapping[str, float],
              regex_results: Mapping[ast.PathRegex, bool]) -> Optional[Rank]:
    """Evaluate on an abstract (pathless) context; None when undefined."""
    ctx = ast.PathContext((), dict(metrics), dict(regex_results))
    try:
        return expr.evaluate(ctx)
    except PolicyError:
        return None


def _fmt_metrics(metrics: Mapping[str, float]) -> str:
    return ", ".join(f"{k}={metrics[k]:g}" for k in sorted(metrics))


def _fmt_assignment(assignment: Mapping[str, bool]) -> str:
    return ", ".join(f"[{k}] := {v}" for k, v in assignment.items())


@dataclass(frozen=True)
class MonotonicityWitness:
    """A concrete path whose rank *improves* under a single-hop extension."""

    metrics: Mapping[str, float]
    extension: Mapping[str, float]
    base_rank: Rank
    extended_rank: Rank
    guard_assignment: Mapping[str, bool]
    regex_assignment: Mapping[str, bool]

    def describe(self) -> str:
        lines = ["rank decreases when the path grows:"]
        if self.guard_assignment:
            lines.append(f"  with guards fixed: "
                         f"{_fmt_assignment(self.guard_assignment)}")
        if self.regex_assignment:
            lines.append(f"  with regexes fixed: "
                         f"{_fmt_assignment(self.regex_assignment)}")
        lines.append(f"  path p:  {_fmt_metrics(self.metrics)}"
                     f"  ->  rank {self.base_rank}")
        lines.append(f"  extend p with a link ({_fmt_metrics(self.extension)}):")
        ext = _extend(self.metrics, self.extension)
        lines.append(f"  path p': {_fmt_metrics(ext)}"
                     f"  ->  rank {self.extended_rank}")
        lines.append(f"  {self.extended_rank} < {self.base_rank}"
                     " — the longer path ranks strictly better")
        return "\n".join(lines)


@dataclass(frozen=True)
class IsotonicityWitness:
    """Two concrete paths whose preference order flips under an extension."""

    metrics_a: Mapping[str, float]
    metrics_b: Mapping[str, float]
    extension: Mapping[str, float]
    rank_a: Rank
    rank_b: Rank
    extended_rank_a: Rank
    extended_rank_b: Rank
    regex_assignment: Mapping[str, bool]

    def describe(self) -> str:
        lines = ["preference inverts under a common extension:"]
        if self.regex_assignment:
            lines.append(f"  with regexes fixed: "
                         f"{_fmt_assignment(self.regex_assignment)}")
        lines.append(f"  path a: {_fmt_metrics(self.metrics_a)}"
                     f"  ->  rank {self.rank_a}")
        lines.append(f"  path b: {_fmt_metrics(self.metrics_b)}"
                     f"  ->  rank {self.rank_b}"
                     f"    (a preferred: {self.rank_a} < {self.rank_b})")
        lines.append(f"  extend both with a link"
                     f" ({_fmt_metrics(self.extension)}):")
        ext_a = _extend(self.metrics_a, self.extension)
        ext_b = _extend(self.metrics_b, self.extension)
        lines.append(f"  path a': {_fmt_metrics(ext_a)}"
                     f"  ->  rank {self.extended_rank_a}")
        lines.append(f"  path b': {_fmt_metrics(ext_b)}"
                     f"  ->  rank {self.extended_rank_b}"
                     f"    (now b preferred: {self.extended_rank_a} >"
                     f" {self.extended_rank_b})")
        return "\n".join(lines)


@dataclass
class SemanticMonotonicityResult:
    """Outcome of the bounded semantic monotonicity search."""

    is_monotone: bool
    witness: Optional[MonotonicityWitness] = None
    points_checked: int = 0
    notes: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.is_monotone


@dataclass
class SemanticIsotonicityResult:
    """Outcome of the bounded semantic isotonicity search."""

    is_isotonic: bool
    witness: Optional[IsotonicityWitness] = None
    points_checked: int = 0
    notes: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.is_isotonic


def _regex_assignments(
        regexes: Tuple[ast.PathRegex, ...],
        notes: List[str]) -> List[Dict[ast.PathRegex, bool]]:
    enumerated = regexes[:MAX_REGEXES]
    pinned = {r: False for r in regexes[MAX_REGEXES:]}
    if pinned:
        notes.append(f"{len(pinned)} regex(es) beyond the first {MAX_REGEXES} "
                     "pinned to no-match")
    assignments = []
    for bits in itertools.product((False, True), repeat=len(enumerated)):
        assignment = dict(zip(enumerated, bits))
        assignment.update(pinned)
        assignments.append(assignment)
    return assignments


def check_semantic_monotonicity(
        policy_or_expr: PolicyOrExpr,
        domain: Optional[SearchDomain] = None) -> SemanticMonotonicityResult:
    """Search for a path whose rank improves when it is extended.

    Checked per fixed-guard branch (see module docstring): a witness means
    *some* decomposed branch is non-monotone, which is exactly the condition
    under which probes could circulate forever.
    """
    expr = coerce_expression(policy_or_expr, "check_semantic_monotonicity")
    attrs = sorted(expr.attributes())
    if domain is None:
        domain = SearchDomain.for_expression(expr)
    result = SemanticMonotonicityResult(True)
    guards = _collect_metric_guards(expr)[:_MAX_METRIC_GUARDS]
    vectors = domain.vectors(attrs)
    extensions = domain.extensions(attrs)
    for guard_bits in itertools.product((False, True), repeat=len(guards)):
        guard_map = dict(zip(guards, guard_bits))
        branch = _fix_guards(expr, guard_map) if guards else expr
        for regex_map in _regex_assignments(branch.regexes(), result.notes):
            base = [(rank, metrics) for metrics in vectors
                    if (rank := _evaluate(branch, metrics, regex_map))
                    is not None]
            for extension in extensions:
                for rank, metrics in base:
                    extended = _evaluate(branch, _extend(metrics, extension),
                                         regex_map)
                    if extended is None:
                        continue
                    result.points_checked += 1
                    if extended < rank:
                        result.is_monotone = False
                        result.witness = MonotonicityWitness(
                            metrics=dict(metrics),
                            extension=dict(extension),
                            base_rank=rank,
                            extended_rank=extended,
                            guard_assignment={str(g): v for g, v
                                              in guard_map.items()},
                            regex_assignment={str(r): v for r, v
                                              in regex_map.items()},
                        )
                        return result
    return result


def check_semantic_isotonicity(
        policy_or_expr: PolicyOrExpr,
        domain: Optional[SearchDomain] = None) -> SemanticIsotonicityResult:
    """Search for two paths whose preference order flips under an extension.

    Metric guards stay live (threshold crossings are the classic source of
    non-isotonicity); regex outcomes are pinned per assignment because the
    product graph resolves path shape structurally.
    """
    expr = coerce_expression(policy_or_expr, "check_semantic_isotonicity")
    attrs = sorted(expr.attributes())
    if domain is None:
        domain = SearchDomain.for_expression(expr)
    result = SemanticIsotonicityResult(True)
    vectors = domain.vectors(attrs)
    extensions = domain.extensions(attrs)
    for regex_map in _regex_assignments(expr.regexes(), result.notes):
        base = [(rank, metrics) for metrics in vectors
                if (rank := _evaluate(expr, metrics, regex_map)) is not None]
        base.sort(key=lambda pair: pair[0])
        for extension in extensions:
            extended = [_evaluate(expr, _extend(metrics, extension), regex_map)
                        for _, metrics in base]
            # One pass over vectors sorted by base rank: track the index of
            # the worst (maximal) extended rank over the strictly-better
            # prefix; any later vector with a smaller extended rank is the
            # second half of an inversion.
            worst: Optional[int] = None
            i, n = 0, len(base)
            while i < n:
                j = i
                while j < n and not (base[i][0] < base[j][0]):
                    j += 1
                for k in range(i, j):
                    ext_k = extended[k]
                    if ext_k is None:
                        continue
                    result.points_checked += 1
                    if worst is not None and extended[worst] > ext_k:
                        a_rank, a_metrics = base[worst]
                        b_rank, b_metrics = base[k]
                        result.is_isotonic = False
                        result.witness = IsotonicityWitness(
                            metrics_a=dict(a_metrics),
                            metrics_b=dict(b_metrics),
                            extension=dict(extension),
                            rank_a=a_rank,
                            rank_b=b_rank,
                            extended_rank_a=extended[worst],
                            extended_rank_b=ext_k,
                            regex_assignment={str(r): v for r, v
                                              in regex_map.items()},
                        )
                        return result
                for k in range(i, j):
                    if extended[k] is None:
                        continue
                    if worst is None or extended[k] > extended[worst]:
                        worst = k
                i = j
    return result
