"""Isotonicity analysis of Contra policies.

A policy is *isotonic* when upstream and downstream switches agree on
preferences: if a switch prefers path ``a`` over path ``b``, then any common
extension of the two paths preserves that preference (§2, §3 challenge #3,
Griffin & Sobrinho's metarouting condition).  Only isotonic policies may
safely discard "worse" probes during propagation; non-isotonic policies must
be decomposed into isotonic subpolicies that travel in separate probes.

The analysis classifies a policy into one of three buckets:

* fully isotonic,
* isotonic once regex conditionals are resolved by the product graph
  (``needs_regex_decomposition``),
* requires metric decomposition (``needs_metric_decomposition``) — e.g. the
  congestion-aware policy P9 or a max-like-first lexicographic tuple.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.core import ast
from repro.core.analysis.monotonicity import PolicyOrExpr, coerce_expression
from repro.core.attributes import ATTRIBUTES
from repro.exceptions import PolicyAnalysisError

__all__ = ["IsotonicityResult", "check_isotonicity", "branch_is_isotonic"]


@dataclass
class IsotonicityResult:
    """Outcome of the isotonicity analysis."""

    is_isotonic: bool
    needs_regex_decomposition: bool = False
    needs_metric_decomposition: bool = False
    reasons: List[str] = field(default_factory=list)

    @property
    def needs_decomposition(self) -> bool:
        return self.needs_regex_decomposition or self.needs_metric_decomposition

    def __bool__(self) -> bool:
        return self.is_isotonic


def check_isotonicity(policy_or_expr: PolicyOrExpr) -> IsotonicityResult:
    """Classify a policy (or bare expression) for isotonicity."""
    expr = coerce_expression(policy_or_expr, "check_isotonicity")
    result = IsotonicityResult(True)
    _walk(expr, result)
    if result.needs_decomposition:
        result.is_isotonic = False
    return result


def branch_is_isotonic(expr: ast.Expr) -> bool:
    """Whether a single (already decomposed) branch expression is isotonic.

    Regex conditionals are treated as resolved (the product graph fixes the
    automaton state per tag, and probe comparisons only happen within a tag),
    so only the metric structure matters here.
    """
    return _expr_isotonic(expr, regex_resolved=True)


# ---------------------------------------------------------------------------
# Whole-policy classification
# ---------------------------------------------------------------------------

def _walk(expr: ast.Expr, result: IsotonicityResult) -> None:
    if isinstance(expr, (ast.Const, ast.Infinite, ast.Attr)):
        return
    if isinstance(expr, ast.TupleExpr):
        if not _tuple_isotonic(expr):
            result.needs_metric_decomposition = True
            result.reasons.append(
                f"lexicographic tuple {expr} orders a max-composed metric before "
                "other metric-dependent components")
        for item in expr.items:
            _walk(item, result)
        return
    if isinstance(expr, ast.BinOp):
        if expr.op in ("min", "max"):
            result.needs_metric_decomposition = True
            result.reasons.append(f"{expr.op}() of metric expressions is not isotonic: {expr}")
        if expr.op in ("+", "-") and not _sum_isotonic(expr):
            result.needs_metric_decomposition = True
            result.reasons.append(f"binary {expr.op} mixing max-composed metrics is not "
                                  f"provably isotonic: {expr}")
        _walk(expr.left, result)
        _walk(expr.right, result)
        return
    if isinstance(expr, ast.If):
        condition = expr.condition
        if condition.attributes():
            result.needs_metric_decomposition = True
            result.reasons.append(f"metric-dependent guard ({condition}) is not isotonic; "
                                  "each branch becomes a separate probe")
        elif condition.regexes():
            result.needs_regex_decomposition = True
            result.reasons.append(f"regex conditional ({condition}) is resolved by the "
                                  "product graph")
        _walk(expr.then_branch, result)
        _walk(expr.else_branch, result)
        return
    raise PolicyAnalysisError(f"unsupported expression node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Branch-level structural rules
# ---------------------------------------------------------------------------

def _uses_max_like(expr: ast.Expr) -> bool:
    return any(ATTRIBUTES[a].is_max_like for a in expr.attributes())


def _is_constant(expr: ast.Expr) -> bool:
    return not expr.attributes() and not expr.regexes()


def _tuple_isotonic(expr: ast.TupleExpr) -> bool:
    """A lexicographic tuple is isotonic iff everything after the first
    max-composed component is metric-free.

    Example: ``(path.len, path.util)`` is isotonic (sum-like first), while
    ``(path.util, path.len)`` is not — extending two paths with a congested
    link can equalise their bottleneck utilization and flip the tie-break.
    """
    seen_max_like = False
    for item in expr.items:
        if seen_max_like and item.attributes():
            return False
        if _uses_max_like(item):
            seen_max_like = True
    return True


def _sum_isotonic(expr: ast.BinOp) -> bool:
    """``e1 + e2`` (or ``-``) is isotonic if at most one side depends on
    max-composed metrics and the other side is either constant or sum-like."""
    left_max = _uses_max_like(expr.left)
    right_max = _uses_max_like(expr.right)
    if left_max and right_max:
        return False
    if left_max:
        return _is_constant(expr.right)
    if right_max:
        return _is_constant(expr.left)
    return True


def _expr_isotonic(expr: ast.Expr, regex_resolved: bool) -> bool:
    if isinstance(expr, (ast.Const, ast.Infinite, ast.Attr)):
        return True
    if isinstance(expr, ast.TupleExpr):
        return _tuple_isotonic(expr) and all(
            _expr_isotonic(i, regex_resolved) for i in expr.items)
    if isinstance(expr, ast.BinOp):
        if expr.op in ("min", "max"):
            return False
        return (_sum_isotonic(expr)
                and _expr_isotonic(expr.left, regex_resolved)
                and _expr_isotonic(expr.right, regex_resolved))
    if isinstance(expr, ast.If):
        condition = expr.condition
        if condition.attributes():
            return False
        if condition.regexes() and not regex_resolved:
            return False
        return (_expr_isotonic(expr.then_branch, regex_resolved)
                and _expr_isotonic(expr.else_branch, regex_resolved))
    raise PolicyAnalysisError(f"unsupported expression node {type(expr).__name__}")
