"""Static cross-checking of lowered device tables against their symbolic source.

PR 6 introduced an array probe plane: per-device ``probe_transition`` dicts
are lowered to dense int64 rows (``DeviceConfig.lowered_transitions``) and
forwarding state is mirrored into a :class:`ForwardingShadow`.  Those lowered
artifacts are *derived* data — if they ever diverge from the symbolic tables
they were lowered from, the vectorized and scalar protocol paths silently
disagree.  This pass proves, by exhaustive diff, that for every device:

* each dense transition row agrees entry-by-entry with ``probe_transition``
  (both directions: every dict entry appears in a row, every non ``-1`` row
  cell appears in the dict), with values that are valid local tags;
* the tag table is dense (``0..num_tags-1``), ``probe_origin_tag`` is one of
  the device's tags, and multicast targets are real topology neighbours;
* the compile-scoped switch-id interning is dense and total over the
  topology;
* the per-switch protocol lowering (transition rows, propagation-key column
  selections, ``ForwardingShadow`` dimensions) matches the symbolic
  decomposition.

It runs standalone (:func:`crosscheck_lowered_tables`) or as a post-compile
assertion (:func:`verify_lowered_tables`, wired to
``CompileOptions(verify=True)``), raising :class:`VerificationError` on any
disagreement.  Protocol-layer imports happen lazily so ``core`` keeps no
import-time dependency on ``protocol``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.nputil import np
from repro.exceptions import VerificationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.compiler import CompiledPolicy
    from repro.core.device_config import DeviceConfig

__all__ = ["CrosscheckReport", "crosscheck_lowered_tables", "verify_lowered_tables"]


@dataclass
class CrosscheckReport:
    """Outcome of the lowered-table cross-check over all devices."""

    devices_checked: int = 0
    transitions_checked: int = 0
    shadows_checked: int = 0
    problems: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.problems

    def __bool__(self) -> bool:
        return self.ok

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "devices_checked": self.devices_checked,
            "transitions_checked": self.transitions_checked,
            "shadows_checked": self.shadows_checked,
            "problems": list(self.problems),
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [f"cross-check: {self.devices_checked} device(s), "
                 f"{self.transitions_checked} transition entries, "
                 f"{self.shadows_checked} shadow(s): "
                 + ("OK" if self.ok else f"{len(self.problems)} problem(s)")]
        lines.extend(f"  PROBLEM: {p}" for p in self.problems)
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


def _check_device_config(compiled: "CompiledPolicy", config: "DeviceConfig",
                         report: CrosscheckReport) -> None:
    switch = config.switch
    where = f"device {switch!r}"
    valid_tags = set(config.tags)

    # Tag table density and self-consistency.
    if sorted(config.tags) != list(range(config.num_tags)):
        report.problems.append(
            f"{where}: tag table is not dense: {sorted(config.tags)}")
    neighbors = set(compiled.topology.switch_neighbors(switch))
    for tag, info in config.tags.items():
        if info.tag != tag:
            report.problems.append(
                f"{where}: tags[{tag}] carries mismatched TagInfo.tag={info.tag}")
        bogus = [n for n in info.multicast_neighbors if n not in neighbors]
        if bogus:
            report.problems.append(
                f"{where}: tag {tag} multicasts to non-neighbours {bogus}")
    if config.probe_origin_tag not in valid_tags:
        report.problems.append(
            f"{where}: probe_origin_tag {config.probe_origin_tag} is not a "
            f"local tag")

    # Symbolic transition table sanity.
    for (neighbor, neighbor_tag), local_tag in config.probe_transition.items():
        if neighbor not in neighbors:
            report.problems.append(
                f"{where}: probe_transition keyed by non-neighbour {neighbor!r}")
        if local_tag not in valid_tags:
            report.problems.append(
                f"{where}: probe_transition[{(neighbor, neighbor_tag)}] -> "
                f"{local_tag} is not a local tag")
        neighbor_config = compiled.device_configs.get(neighbor)
        if (neighbor_config is not None
                and neighbor_tag not in neighbor_config.tags):
            report.problems.append(
                f"{where}: probe_transition expects neighbour tag "
                f"{neighbor_tag} which {neighbor!r} does not define")

    # Dense int64 rows vs the dict, both directions.
    rows = config.lowered_transitions() if np is not None else None
    if rows is None:
        report.notes.append(f"{where}: numpy unavailable, lowered rows skipped")
        return
    by_inport: Dict[str, Dict[int, int]] = {}
    for (neighbor, neighbor_tag), local_tag in config.probe_transition.items():
        by_inport.setdefault(neighbor, {})[neighbor_tag] = local_tag
    if set(rows) != set(by_inport):
        report.problems.append(
            f"{where}: lowered rows cover inports {sorted(rows)} but the "
            f"symbolic table covers {sorted(by_inport)}")
    for neighbor, row in rows.items():
        if row.dtype != np.int64:
            report.problems.append(
                f"{where}: lowered row for {neighbor!r} has dtype {row.dtype}, "
                "expected int64")
        expected = by_inport.get(neighbor, {})
        for neighbor_tag in range(len(row)):
            report.transitions_checked += 1
            lowered = int(row[neighbor_tag])
            symbolic = expected.get(neighbor_tag, -1)
            if lowered != symbolic:
                report.problems.append(
                    f"{where}: lowered transition [{neighbor!r}][{neighbor_tag}]"
                    f" = {lowered} disagrees with symbolic "
                    f"{'drop' if symbolic == -1 else symbolic}")
        extra = [t for t in expected if t >= len(row)]
        if extra:
            report.problems.append(
                f"{where}: symbolic entries {extra} for inport {neighbor!r} "
                f"fall outside the lowered row (length {len(row)})")


def _check_protocol_lowering(compiled: "CompiledPolicy",
                             report: CrosscheckReport) -> None:
    """Mirror checks on the per-switch protocol state (shadow, prop columns)."""
    if np is None:
        report.notes.append("numpy unavailable, protocol shadow checks skipped")
        return
    # Lazy: core must not import protocol at module import time.
    from repro.protocol.contra_switch import ContraRouting, ContraSystem

    switch_ids = compiled.switch_ids()
    switches = sorted(compiled.topology.switches)
    if sorted(switch_ids) != switches:
        report.problems.append(
            f"switch-id interning covers {sorted(switch_ids)}, topology has "
            f"{switches}")
    if sorted(switch_ids.values()) != list(range(len(switch_ids))):
        report.problems.append(
            f"switch-id interning is not dense: {switch_ids}")

    system = ContraSystem(compiled, probe_vectorize=True)
    subpolicies = compiled.decomposition.subpolicies
    for switch in switches:
        config = compiled.device(switch)
        logic = ContraRouting(system, config)
        where = f"device {switch!r}"
        if logic._trans_rows is not config.lowered_transitions():
            report.problems.append(
                f"{where}: protocol transition rows are not the lowered rows")
        for sub in subpolicies:
            cols = logic._prop_cols.get(sub.pid)
            try:
                expected = tuple(sub.carried_attrs.index(name)
                                 for name in sub.propagation_attrs)
            except ValueError:
                expected = None
            if cols != expected:
                report.problems.append(
                    f"{where}: pid {sub.pid} propagation columns {cols} "
                    f"disagree with decomposition {expected}")
        shadow = logic._shadow
        if shadow is None:
            report.notes.append(f"{where}: no shadow (policy not lowerable)")
            continue
        report.shadows_checked += 1
        expected_dims = (
            len(switch_ids),
            (max(config.tags) + 1) if config.tags else 1,
            config.num_probe_ids,
        )
        # The shadow stores no origin count; its flat arrays are sized
        # num_origins * num_tags * num_pids, so recover it from the shape.
        per_origin = shadow.num_tags * shadow.num_pids
        actual_origins = (shadow.versions.shape[0] // per_origin
                          if per_origin else 0)
        actual_dims = (actual_origins, shadow.num_tags, shadow.num_pids)
        if actual_dims != expected_dims:
            report.problems.append(
                f"{where}: shadow dimensions {actual_dims} disagree with "
                f"config-derived {expected_dims}")
        key_widths = [len(cols) for cols in logic._prop_cols.values()
                      if cols is not None]
        if key_widths and shadow.key_width != max(key_widths):
            report.problems.append(
                f"{where}: shadow key width {shadow.key_width} disagrees with "
                f"max propagation width {max(key_widths)}")


def crosscheck_lowered_tables(compiled: "CompiledPolicy") -> CrosscheckReport:
    """Exhaustively diff lowered artifacts against the symbolic tables."""
    report = CrosscheckReport()
    for switch in sorted(compiled.device_configs):
        report.devices_checked += 1
        _check_device_config(compiled, compiled.device_configs[switch], report)
    _check_protocol_lowering(compiled, report)
    return report


def verify_lowered_tables(compiled: "CompiledPolicy") -> CrosscheckReport:
    """Post-compile assertion: raise on any lowered-table disagreement."""
    report = crosscheck_lowered_tables(compiled)
    if not report.ok:
        raise VerificationError(
            "lowered tables disagree with their symbolic source:\n"
            + "\n".join(f"  - {p}" for p in report.problems))
    return report
