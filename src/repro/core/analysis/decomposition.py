"""Decomposition of non-isotonic policies into isotonic subpolicies.

Non-isotonic policies cannot be implemented by propagating a single "best"
probe, because a switch's locally best path may not remain best once extended
upstream (§3 challenge #3, §4).  Contra's answer is to decompose the policy
into *isotonic subpolicies*, give each its own probe id (``pid``), propagate
them independently, and let every switch re-combine the information when it
picks its overall best entry (the ``f`` / ``s`` split in Figure 7).

Two sources of non-isotonicity are handled:

* **metric guards** — conditionals such as ``if path.util < .8 then ... else
  ...`` (policy P9).  Each truth assignment of the guards yields one branch
  expression and therefore one subpolicy / probe id.
* **max-first lexicographic tuples** — e.g. ``(path.util, path.len)``.  The
  branch is covered by additional probes whose propagation orders are
  isotonic permutations (sum-like metrics first), so the best paths under
  each component ordering all reach the deciding switch.

Regex conditionals are *not* decomposed here: the product graph already keeps
paths with different automaton states in different tags, and probe comparisons
only ever happen within a (tag, pid) pair, which restores isotonicity for the
regex part of the policy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core import ast
from repro.core.analysis.isotonicity import branch_is_isotonic, check_isotonicity
from repro.core.attributes import ATTRIBUTES, MetricVector
from repro.core.rank import Rank
from repro.exceptions import PolicyAnalysisError

__all__ = ["SubPolicy", "Decomposition", "decompose"]

#: Refuse to enumerate more than this many metric guards (2^n assignments).
_MAX_METRIC_GUARDS = 6


@dataclass(frozen=True)
class SubPolicy:
    """One isotonic subpolicy produced by the decomposition.

    Attributes
    ----------
    pid:
        Probe id; probes of different subpolicies never compete with each
        other inside switch tables.
    expression:
        The branch expression with metric guards already fixed.
    guards:
        The (comparison, truth) assignments that select this branch; recorded
        for reporting and for the final policy evaluation tests.
    propagation_attrs:
        Attribute names, in order, used as the isotonic lexicographic key
        ``f(pid, mv)`` during probe propagation.
    carried_attrs:
        Attribute names the probe's metric vector carries (always the full
        policy attribute set so the deciding switch can evaluate the original
        policy on any entry).
    """

    pid: int
    expression: ast.Expr
    guards: Tuple[Tuple[ast.Compare, bool], ...]
    propagation_attrs: Tuple[str, ...]
    carried_attrs: Tuple[str, ...]

    def initial_metrics(self) -> MetricVector:
        """The metric vector carried by a freshly generated probe."""
        return MetricVector(self.carried_attrs)

    def propagation_rank(self, metrics: MetricVector) -> Rank:
        """The isotonic propagation key ``f(pid, mv)`` for a metric vector.

        Lower is better.  Purely static subpolicies (no dynamic attributes)
        map every vector to rank 0, so the first probe for a (tag, pid) wins
        and later identical probes do not churn the tables.
        """
        if not self.propagation_attrs:
            return Rank(0.0)
        return Rank(tuple(metrics.get(name) for name in self.propagation_attrs))

    def guards_satisfied(self, metrics: MetricVector) -> bool:
        """Whether the recorded guard assignments hold for a metric vector."""
        ctx = ast.PathContext((), metrics.as_dict())
        for comparison, expected in self.guards:
            if comparison.evaluate(ctx) != expected:
                return False
        return True

    def describe(self) -> str:
        guard_text = ", ".join(
            f"{comparison}={'T' if truth else 'F'}" for comparison, truth in self.guards)
        return (f"pid={self.pid} expr=({self.expression}) "
                f"propagate-by={list(self.propagation_attrs)}"
                + (f" guards=[{guard_text}]" if guard_text else ""))


@dataclass
class Decomposition:
    """The full decomposition of one policy."""

    policy: ast.Policy
    subpolicies: List[SubPolicy]
    is_isotonic: bool
    reasons: List[str] = field(default_factory=list)

    @property
    def num_probes(self) -> int:
        """How many distinct probe ids the data plane must propagate."""
        return len(self.subpolicies)

    @property
    def carried_attrs(self) -> Tuple[str, ...]:
        """The union of attributes carried on the wire (same for every probe)."""
        if not self.subpolicies:
            return ()
        return self.subpolicies[0].carried_attrs

    def subpolicy(self, pid: int) -> SubPolicy:
        for sub in self.subpolicies:
            if sub.pid == pid:
                return sub
        raise PolicyAnalysisError(f"unknown probe id {pid}")


def decompose(policy: ast.Policy) -> Decomposition:
    """Decompose a policy into isotonic subpolicies (one per probe id)."""
    expr = policy.expression
    carried = _attr_order(expr)
    isotonicity = check_isotonicity(policy)

    guards = _collect_metric_guards(expr)
    if len(guards) > _MAX_METRIC_GUARDS:
        raise PolicyAnalysisError(
            f"policy has {len(guards)} metric guards; decomposition enumerates 2^n branches "
            f"and is capped at {_MAX_METRIC_GUARDS} guards")

    raw: List[Tuple[ast.Expr, Tuple[Tuple[ast.Compare, bool], ...]]] = []
    if not guards:
        raw.append((expr, ()))
    else:
        for assignment in itertools.product((True, False), repeat=len(guards)):
            mapping = dict(zip(guards, assignment))
            fixed = _fix_guards(expr, mapping)
            raw.append((fixed, tuple(zip(guards, assignment))))

    subpolicies: List[SubPolicy] = []
    seen: set = set()
    pid = 0
    for branch_expr, guard_assignment in raw:
        for order in _propagation_orders(branch_expr, carried):
            key = (branch_expr, order, guard_assignment)
            if key in seen:
                continue
            seen.add(key)
            subpolicies.append(SubPolicy(
                pid=pid,
                expression=branch_expr,
                guards=guard_assignment,
                propagation_attrs=order,
                carried_attrs=tuple(carried),
            ))
            pid += 1

    return Decomposition(
        policy=policy,
        subpolicies=subpolicies,
        is_isotonic=isotonicity.is_isotonic,
        reasons=list(isotonicity.reasons),
    )


# ---------------------------------------------------------------------------
# Guard handling
# ---------------------------------------------------------------------------

def _collect_metric_guards(expr: ast.Expr) -> List[ast.Compare]:
    """All metric comparisons appearing in conditional guards, in order."""
    guards: List[ast.Compare] = []

    def visit_expr(node: ast.Expr) -> None:
        if isinstance(node, ast.If):
            visit_bool(node.condition)
            visit_expr(node.then_branch)
            visit_expr(node.else_branch)
            return
        for child in node.children():
            visit_expr(child)

    def visit_bool(node: ast.BoolExpr) -> None:
        if isinstance(node, ast.Compare):
            if node.attributes() and node not in guards:
                guards.append(node)
            return
        if isinstance(node, ast.Not):
            visit_bool(node.inner)
            return
        if isinstance(node, (ast.And, ast.Or)):
            visit_bool(node.left)
            visit_bool(node.right)
            return

    visit_expr(expr)
    return guards


def _fix_guards(expr: ast.Expr, mapping: Mapping[ast.Compare, bool]) -> ast.Expr:
    """Replace metric guards by their assigned truth value and simplify conditionals."""
    if isinstance(expr, (ast.Const, ast.Infinite, ast.Attr)):
        return expr
    if isinstance(expr, ast.TupleExpr):
        return ast.TupleExpr(tuple(_fix_guards(i, mapping) for i in expr.items))
    if isinstance(expr, ast.BinOp):
        return ast.BinOp(expr.op, _fix_guards(expr.left, mapping), _fix_guards(expr.right, mapping))
    if isinstance(expr, ast.If):
        condition = _fix_bool(expr.condition, mapping)
        then_branch = _fix_guards(expr.then_branch, mapping)
        else_branch = _fix_guards(expr.else_branch, mapping)
        if isinstance(condition, ast.BoolConst):
            return then_branch if condition.value else else_branch
        return ast.If(condition, then_branch, else_branch)
    raise PolicyAnalysisError(f"unsupported expression node {type(expr).__name__}")


def _fix_bool(node: ast.BoolExpr, mapping: Mapping[ast.Compare, bool]) -> ast.BoolExpr:
    if isinstance(node, ast.Compare) and node in mapping:
        return ast.BoolConst(mapping[node])
    if isinstance(node, ast.Not):
        inner = _fix_bool(node.inner, mapping)
        if isinstance(inner, ast.BoolConst):
            return ast.BoolConst(not inner.value)
        return ast.Not(inner)
    if isinstance(node, ast.And):
        left = _fix_bool(node.left, mapping)
        right = _fix_bool(node.right, mapping)
        if isinstance(left, ast.BoolConst):
            return right if left.value else ast.BoolConst(False)
        if isinstance(right, ast.BoolConst):
            return left if right.value else ast.BoolConst(False)
        return ast.And(left, right)
    if isinstance(node, ast.Or):
        left = _fix_bool(node.left, mapping)
        right = _fix_bool(node.right, mapping)
        if isinstance(left, ast.BoolConst):
            return ast.BoolConst(True) if left.value else right
        if isinstance(right, ast.BoolConst):
            return ast.BoolConst(True) if right.value else left
        return ast.Or(left, right)
    return node


# ---------------------------------------------------------------------------
# Propagation orders
# ---------------------------------------------------------------------------

def _attr_order(expr: ast.Expr) -> List[str]:
    """Attribute names in order of first syntactic appearance (left-to-right)."""
    order: List[str] = []

    def visit_expr(node: ast.Expr) -> None:
        if isinstance(node, ast.Attr):
            if node.name not in order:
                order.append(node.name)
            return
        if isinstance(node, ast.If):
            visit_bool(node.condition)
            visit_expr(node.then_branch)
            visit_expr(node.else_branch)
            return
        for child in node.children():
            visit_expr(child)

    def visit_bool(node: ast.BoolExpr) -> None:
        for sub in node.expr_children():
            visit_expr(sub)
        for child in node.children():
            visit_bool(child)

    visit_expr(expr)
    return order


def _propagation_orders(branch_expr: ast.Expr, carried: Sequence[str]) -> List[Tuple[str, ...]]:
    """Isotonic propagation orders covering one branch expression.

    For an isotonic branch a single order (attributes in syntactic order,
    padded with any remaining carried attributes) suffices.  For a
    non-isotonic branch — a max-like metric ordered before other metrics —
    we additionally emit the "sum-like first" permutation so that the paths
    optimal under each component ordering all survive propagation and reach
    the deciding switch.
    """
    base = _attr_order(branch_expr)
    padded = tuple(base + [a for a in carried if a not in base])
    orders: List[Tuple[str, ...]] = [padded]

    if not branch_is_isotonic(branch_expr) and len(padded) > 1:
        sum_like = [a for a in padded if not ATTRIBUTES[a].is_max_like]
        max_like = [a for a in padded if ATTRIBUTES[a].is_max_like]
        alternative = tuple(sum_like + max_like)
        if alternative != padded:
            orders.append(alternative)

    return orders
