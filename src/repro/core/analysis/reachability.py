"""Product-graph reachability analysis and dead-state pruning.

A virtual node of the product graph is *dead* when it can never influence
routing:

* it is unreachable from every probe-sending origin (cannot happen for graphs
  built by :meth:`ProductGraph.build`, which explores from the origins, but
  can for hand-constructed or minimised graphs), or
* no node reachable from it (in probe-propagation direction, towards traffic
  sources) can ever produce a **finite** rank — every acceptance signature on
  that cone evaluates to ``inf`` regardless of metric values.

Entries installed at dead nodes are never preferred over any finite
alternative and the probes they relay can never create a finite entry
downstream, so dropping dead nodes preserves routing outcomes while shrinking
per-switch tag spaces (and with them FwdT/BestT state,
``DeviceConfig.total_state_bytes``).

Finite-capability is decided conservatively by :func:`_maybe_finite`: an
expression is assumed finite-capable unless it is *definitely* infinite under
the node's (fixed) regex acceptance signature.  Being conservative can only
keep extra nodes, never drop live ones.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core import ast
from repro.core.analysis.monotonicity import PolicyOrExpr, coerce_expression
from repro.core.product_graph import PGNode, ProductGraph
from repro.core.regex import PathRegex
from repro.exceptions import PolicyAnalysisError

__all__ = ["ReachabilityReport", "analyze_reachability", "prune_dead_nodes"]


@dataclass
class ReachabilityReport:
    """Dead/live classification of every virtual node for one policy×topology."""

    nodes_total: int
    origin_unreachable: Tuple[PGNode, ...]
    never_finite: Tuple[PGNode, ...]
    dead_nodes: Tuple[PGNode, ...]
    kept_nodes: Tuple[PGNode, ...]
    tags_before: int = 0
    tags_after: int = 0
    tags_total_before: int = 0
    tags_total_after: int = 0
    per_switch_dead: Dict[str, int] = field(default_factory=dict)

    @property
    def num_dead(self) -> int:
        return len(self.dead_nodes)

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "nodes_total": self.nodes_total,
            "nodes_kept": len(self.kept_nodes),
            "nodes_dead": self.num_dead,
            "origin_unreachable": [str(n) for n in self.origin_unreachable],
            "never_finite": [str(n) for n in self.never_finite],
            "dead_nodes": [str(n) for n in self.dead_nodes],
            "per_switch_dead": dict(sorted(self.per_switch_dead.items())),
            "tags_before": self.tags_before,
            "tags_after": self.tags_after,
            "tags_total_before": self.tags_total_before,
            "tags_total_after": self.tags_total_after,
        }

    def render(self) -> str:
        lines = [f"product graph: {self.nodes_total} virtual nodes, "
                 f"{self.num_dead} dead"]
        if self.origin_unreachable:
            lines.append("  unreachable from any probe origin: "
                         + ", ".join(str(n) for n in self.origin_unreachable))
        if self.never_finite:
            lines.append("  can never produce a finite rank: "
                         + ", ".join(str(n) for n in self.never_finite))
        for switch, count in sorted(self.per_switch_dead.items()):
            lines.append(f"  {switch}: {count} dead virtual node(s)")
        if self.tags_before:
            lines.append(f"  max tags/switch: {self.tags_before} -> "
                         f"{self.tags_after} after pruning")
        if self.tags_total_before:
            lines.append(f"  total tags (FwdT rows across switches): "
                         f"{self.tags_total_before} -> {self.tags_total_after}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Finite-capability of an expression under a fixed regex assignment
# ---------------------------------------------------------------------------

def _resolve_bool(cond: ast.BoolExpr,
                  regexes: Mapping[PathRegex, bool]) -> Optional[bool]:
    """Three-valued evaluation: True/False when decidable from the regex
    assignment alone, None when it depends on metric values."""
    if isinstance(cond, ast.BoolConst):
        return cond.value
    if isinstance(cond, ast.RegexTest):
        return regexes.get(cond.pattern)
    if isinstance(cond, ast.Not):
        inner = _resolve_bool(cond.inner, regexes)
        return None if inner is None else not inner
    if isinstance(cond, ast.And):
        left = _resolve_bool(cond.left, regexes)
        right = _resolve_bool(cond.right, regexes)
        if left is False or right is False:
            return False
        if left is True and right is True:
            return True
        return None
    if isinstance(cond, ast.Or):
        left = _resolve_bool(cond.left, regexes)
        right = _resolve_bool(cond.right, regexes)
        if left is True or right is True:
            return True
        if left is False and right is False:
            return False
        return None
    if isinstance(cond, ast.Compare):
        return None
    raise PolicyAnalysisError(f"unsupported boolean node {type(cond).__name__}")


def _maybe_finite(expr: ast.Expr, regexes: Mapping[PathRegex, bool]) -> bool:
    """Could ``expr`` evaluate to a finite rank for *some* metric values?

    Conservative: only answers False when the expression is definitely
    infinite under the given regex assignment.
    """
    if isinstance(expr, (ast.Const, ast.Attr)):
        return True
    if isinstance(expr, ast.Infinite):
        return False
    if isinstance(expr, ast.TupleExpr):
        # A rank tuple is infinite exactly when its leading flat component is.
        return _maybe_finite(expr.items[0], regexes)
    if isinstance(expr, ast.BinOp):
        if expr.op == "min":
            return (_maybe_finite(expr.left, regexes)
                    or _maybe_finite(expr.right, regexes))
        # "+", "-", "max" are infinite as soon as either side is.
        return (_maybe_finite(expr.left, regexes)
                and _maybe_finite(expr.right, regexes))
    if isinstance(expr, ast.If):
        taken = _resolve_bool(expr.condition, regexes)
        if taken is True:
            return _maybe_finite(expr.then_branch, regexes)
        if taken is False:
            return _maybe_finite(expr.else_branch, regexes)
        return (_maybe_finite(expr.then_branch, regexes)
                or _maybe_finite(expr.else_branch, regexes))
    raise PolicyAnalysisError(f"unsupported expression node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Graph analysis
# ---------------------------------------------------------------------------

def analyze_reachability(policy_or_expr: PolicyOrExpr,
                         graph: ProductGraph) -> ReachabilityReport:
    """Classify every virtual node of ``graph`` as live or dead.

    Probe-sending origin nodes are always kept: they anchor
    ``probe_origin_tag`` on every device, and the destination itself is a
    zero-length policy-compliant path for regex-free policies.
    """
    expr = coerce_expression(policy_or_expr, "analyze_reachability")

    # Finite-capability per acceptance signature (memoised — many nodes share
    # a signature).
    finite_by_signature: Dict[Tuple[bool, ...], bool] = {}
    finite_capable: Set[PGNode] = set()
    for node in graph.nodes:
        signature = graph.acceptance(node)
        if signature not in finite_by_signature:
            assignment = dict(zip(graph.regexes, signature))
            finite_by_signature[signature] = _maybe_finite(expr, assignment)
        if finite_by_signature[signature]:
            finite_capable.add(node)

    # Useful = can reach a finite-capable node along probe propagation
    # (out_edges): backward closure from the finite-capable set via in_edges.
    useful: Set[PGNode] = set(finite_capable)
    queue = deque(finite_capable)
    while queue:
        node = queue.popleft()
        for pred in graph.in_edges.get(node, []):
            if pred not in useful:
                useful.add(pred)
                queue.append(pred)

    # Origin-reachable = forward closure from the probe-sending nodes.
    reachable: Set[PGNode] = set(graph.probe_sending_nodes.values())
    queue = deque(reachable)
    while queue:
        node = queue.popleft()
        for succ in graph.out_edges.get(node, []):
            if succ not in reachable:
                reachable.add(succ)
                queue.append(succ)

    origins = set(graph.probe_sending_nodes.values())
    origin_unreachable = tuple(n for n in graph.nodes if n not in reachable)
    never_finite = tuple(n for n in graph.nodes
                         if n not in useful and n not in origins)
    dead = tuple(n for n in graph.nodes
                 if n not in origins and (n not in reachable or n not in useful))
    kept = tuple(n for n in graph.nodes if n not in dead)

    per_switch_dead: Dict[str, int] = {}
    for node in dead:
        per_switch_dead[node.switch] = per_switch_dead.get(node.switch, 0) + 1

    return ReachabilityReport(
        nodes_total=graph.num_nodes,
        origin_unreachable=origin_unreachable,
        never_finite=never_finite,
        dead_nodes=dead,
        kept_nodes=kept,
        tags_before=graph.max_tags_per_switch(),
        tags_after=graph.max_tags_per_switch(),
        # Every virtual node owns one per-switch tag (one FwdT row family), so
        # the total tag count across the fabric is exactly the node count.
        tags_total_before=graph.num_nodes,
        tags_total_after=graph.num_nodes,
        per_switch_dead=per_switch_dead,
    )


def prune_dead_nodes(policy_or_expr: PolicyOrExpr,
                     graph: ProductGraph) -> ReachabilityReport:
    """Analyze ``graph`` and drop its dead nodes in place.

    Returns the report with ``tags_after`` reflecting the pruned graph.
    """
    report = analyze_reachability(policy_or_expr, graph)
    if report.dead_nodes:
        graph.restrict_to(report.kept_nodes)
        report.tags_after = graph.max_tags_per_switch()
        report.tags_total_after = graph.num_nodes
    return report
