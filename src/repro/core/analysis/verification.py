"""One-stop policy verification: semantic checks, reachability, cross-check.

:func:`verify_policy` runs the whole verification plane over one policy —
optionally against a concrete topology — and folds the results into a single
:class:`VerificationReport` that renders for humans (``contra check-policy``)
and serialises to JSON (the CI verification artifact):

1. syntactic + semantic monotonicity/isotonicity, with a concrete
   rank-inversion witness whenever the bounded semantic search finds one;
2. product-graph reachability (given a topology): dead virtual nodes and the
   tag/state reduction ``prune_unreachable=True`` would achieve;
3. the lowered-table cross-check (given a topology): dense int64 rows and
   protocol mirrors diffed against the symbolic tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.core import ast
from repro.core.rank import Rank
from repro.core.analysis.crosscheck import CrosscheckReport, crosscheck_lowered_tables
from repro.core.analysis.isotonicity import IsotonicityResult, check_isotonicity
from repro.core.analysis.monotonicity import MonotonicityResult, check_monotonicity
from repro.core.analysis.reachability import ReachabilityReport, prune_dead_nodes
from repro.core.analysis.semantic import (
    SearchDomain,
    SemanticIsotonicityResult,
    SemanticMonotonicityResult,
    check_semantic_isotonicity,
    check_semantic_monotonicity,
)

__all__ = ["VerificationReport", "verify_policy"]


@dataclass
class VerificationReport:
    """Everything the verification plane learned about one policy."""

    policy_name: str
    monotonicity: MonotonicityResult
    isotonicity: IsotonicityResult
    semantic_monotonicity: SemanticMonotonicityResult
    semantic_isotonicity: SemanticIsotonicityResult
    topology_name: Optional[str] = None
    reachability: Optional[ReachabilityReport] = None
    crosscheck: Optional[CrosscheckReport] = None

    @property
    def ok(self) -> bool:
        """No witness of non-monotonicity and no lowered-table disagreement.

        Non-isotonic policies are *not* failures — the compiler decomposes
        them — but their witness is surfaced so operators understand why
        extra probes are needed.
        """
        return (self.semantic_monotonicity.is_monotone
                and self.monotonicity.is_monotone
                and (self.crosscheck is None or self.crosscheck.ok))

    def to_json_dict(self) -> Dict[str, object]:
        def witness(w: object) -> Optional[Dict[str, object]]:
            if w is None:
                return None
            data: Dict[str, object] = {}
            for key, value in vars(w).items():
                if isinstance(value, Rank):
                    data[key] = list(value.values)
                elif isinstance(value, Mapping):
                    data[key] = dict(value)
                else:
                    data[key] = value
            data["description"] = w.describe()  # type: ignore[attr-defined]
            return data

        payload: Dict[str, object] = {
            "policy": self.policy_name,
            "ok": self.ok,
            "syntactic": {
                "is_monotone": self.monotonicity.is_monotone,
                "is_isotonic": self.isotonicity.is_isotonic,
                "needs_regex_decomposition":
                    self.isotonicity.needs_regex_decomposition,
                "needs_metric_decomposition":
                    self.isotonicity.needs_metric_decomposition,
                "reasons": list(self.monotonicity.reasons)
                + list(self.isotonicity.reasons),
            },
            "semantic": {
                "is_monotone": self.semantic_monotonicity.is_monotone,
                "is_isotonic": self.semantic_isotonicity.is_isotonic,
                "points_checked": {
                    "monotonicity": self.semantic_monotonicity.points_checked,
                    "isotonicity": self.semantic_isotonicity.points_checked,
                },
                "monotonicity_witness":
                    witness(self.semantic_monotonicity.witness),
                "isotonicity_witness":
                    witness(self.semantic_isotonicity.witness),
            },
        }
        if self.topology_name is not None:
            payload["topology"] = self.topology_name
        if self.reachability is not None:
            payload["reachability"] = self.reachability.to_json_dict()
        if self.crosscheck is not None:
            payload["crosscheck"] = self.crosscheck.to_json_dict()
        return payload

    def render(self) -> str:
        lines = [f"policy {self.policy_name}:"]
        lines.append(
            f"  monotone:  syntactic={'yes' if self.monotonicity.is_monotone else 'NO'}"
            f"  semantic={'yes' if self.semantic_monotonicity.is_monotone else 'NO'}"
            f" ({self.semantic_monotonicity.points_checked} points)")
        iso_kind = ("isotonic" if self.isotonicity.is_isotonic
                    else "isotonic after regex decomposition"
                    if not self.isotonicity.needs_metric_decomposition
                    else "needs metric decomposition")
        lines.append(
            f"  isotonic:  syntactic={iso_kind}"
            f"  semantic={'certified' if self.semantic_isotonicity.is_isotonic else 'WITNESS FOUND'}"
            f" ({self.semantic_isotonicity.points_checked} points)")
        if self.semantic_monotonicity.witness is not None:
            lines.append("  monotonicity counterexample:")
            lines.extend("    " + line for line
                         in self.semantic_monotonicity.witness.describe().splitlines())
        if self.semantic_isotonicity.witness is not None:
            lines.append("  isotonicity counterexample:")
            lines.extend("    " + line for line
                         in self.semantic_isotonicity.witness.describe().splitlines())
        if self.topology_name is not None:
            lines.append(f"  topology {self.topology_name}:")
            if self.reachability is not None:
                lines.extend("    " + line
                             for line in self.reachability.render().splitlines())
            if self.crosscheck is not None:
                lines.extend("    " + line
                             for line in self.crosscheck.render().splitlines())
        lines.append(f"  verdict: {'OK' if self.ok else 'FAILED'}")
        return "\n".join(lines)


def verify_policy(
    policy: ast.Policy,
    topology: Optional[object] = None,
    domain: Optional[SearchDomain] = None,
) -> VerificationReport:
    """Run every verification pass applicable to ``policy``.

    With a ``topology``, additionally compiles the policy (pruned, on a fresh
    product graph, so the reachability numbers reflect what
    ``prune_unreachable=True`` would do) and cross-checks its lowered tables.
    """
    report = VerificationReport(
        policy_name=policy.name,
        monotonicity=check_monotonicity(policy),
        isotonicity=check_isotonicity(policy),
        semantic_monotonicity=check_semantic_monotonicity(policy, domain),
        semantic_isotonicity=check_semantic_isotonicity(policy, domain),
    )
    if topology is not None:
        # Local import: compiler imports analysis, not the other way around.
        from repro.core.compiler import CompileOptions, compile_policy
        from repro.core.product_graph import build_product_graph

        report.topology_name = getattr(topology, "name", str(topology))
        graph = build_product_graph(topology, policy.regexes())
        report.reachability = prune_dead_nodes(policy, graph)
        compiled = compile_policy(policy, topology, CompileOptions())
        report.crosscheck = crosscheck_lowered_tables(compiled)
    return report
