"""Regular expressions over network paths.

Contra policies classify paths with regular expressions whose alphabet is the
set of switch identifiers (Figure 2): ``r ::= node | . | r1 + r2 | r1 r2 | r*``.
A path ``A B D`` is the word ``["A", "B", "D"]``.

This module defines the regex AST, a parser for the concrete syntax used in
the paper (juxtaposition for concatenation, ``+`` for union, ``*`` for Kleene
star, ``.`` for "any single node"), structural reversal (probes travel in the
opposite direction to traffic, §4.1), and direct matching for tests.
"""

from __future__ import annotations

import re as _re
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.exceptions import PolicyParseError

__all__ = [
    "PathRegex", "Node", "AnyNode", "Epsilon", "EmptySet", "Concat", "Union", "Star",
    "parse_regex", "node", "concat", "union", "star", "any_node",
]


class PathRegex:
    """Base class for path regular expressions."""

    def reverse(self) -> "PathRegex":
        """The regex matching exactly the reversed words of this regex."""
        raise NotImplementedError

    def node_ids(self) -> FrozenSet[str]:
        """All concrete switch identifiers mentioned in the regex."""
        raise NotImplementedError

    def nullable(self) -> bool:
        """Whether the regex accepts the empty path."""
        raise NotImplementedError

    def matches(self, path: Sequence[str]) -> bool:
        """Whether the regex accepts the given path (sequence of node ids).

        Uses Brzozowski derivatives; intended for tests and the reference
        evaluator, not the data-plane fast path.
        """
        current: PathRegex = self
        for symbol in path:
            current = current.derivative(symbol)
            if isinstance(current, EmptySet):
                return False
        return current.nullable()

    def derivative(self, symbol: str) -> "PathRegex":
        """The Brzozowski derivative of the regex with respect to ``symbol``."""
        raise NotImplementedError

    # Operator sugar so policies can be built programmatically.
    def __add__(self, other: "PathRegex") -> "PathRegex":
        return union(self, other)

    def __rshift__(self, other: "PathRegex") -> "PathRegex":
        return concat(self, other)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))  # type: ignore[attr-defined]

    def _key(self):
        raise NotImplementedError


@dataclass(frozen=True, eq=False)
class Node(PathRegex):
    """A single concrete switch identifier."""

    name: str

    def reverse(self) -> PathRegex:
        return self

    def node_ids(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def nullable(self) -> bool:
        return False

    def derivative(self, symbol: str) -> PathRegex:
        return Epsilon() if symbol == self.name else EmptySet()

    def _key(self):
        return self.name

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class AnyNode(PathRegex):
    """The wildcard ``.`` matching any single node."""

    def reverse(self) -> PathRegex:
        return self

    def node_ids(self) -> FrozenSet[str]:
        return frozenset()

    def nullable(self) -> bool:
        return False

    def derivative(self, symbol: str) -> PathRegex:
        return Epsilon()

    def _key(self):
        return "."

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True, eq=False)
class Epsilon(PathRegex):
    """The regex matching only the empty path."""

    def reverse(self) -> PathRegex:
        return self

    def node_ids(self) -> FrozenSet[str]:
        return frozenset()

    def nullable(self) -> bool:
        return True

    def derivative(self, symbol: str) -> PathRegex:
        return EmptySet()

    def _key(self):
        return "eps"

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True, eq=False)
class EmptySet(PathRegex):
    """The regex matching nothing."""

    def reverse(self) -> PathRegex:
        return self

    def node_ids(self) -> FrozenSet[str]:
        return frozenset()

    def nullable(self) -> bool:
        return False

    def derivative(self, symbol: str) -> PathRegex:
        return self

    def _key(self):
        return "empty"

    def __str__(self) -> str:
        return "∅"


@dataclass(frozen=True, eq=False)
class Concat(PathRegex):
    """Concatenation ``r1 r2``."""

    left: PathRegex
    right: PathRegex

    def reverse(self) -> PathRegex:
        return Concat(self.right.reverse(), self.left.reverse())

    def node_ids(self) -> FrozenSet[str]:
        return self.left.node_ids() | self.right.node_ids()

    def nullable(self) -> bool:
        return self.left.nullable() and self.right.nullable()

    def derivative(self, symbol: str) -> PathRegex:
        first = concat(self.left.derivative(symbol), self.right)
        if self.left.nullable():
            return union(first, self.right.derivative(symbol))
        return first

    def _key(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_paren(self.left)} {_paren(self.right)}"


@dataclass(frozen=True, eq=False)
class Union(PathRegex):
    """Alternation ``r1 + r2``."""

    left: PathRegex
    right: PathRegex

    def reverse(self) -> PathRegex:
        return Union(self.left.reverse(), self.right.reverse())

    def node_ids(self) -> FrozenSet[str]:
        return self.left.node_ids() | self.right.node_ids()

    def nullable(self) -> bool:
        return self.left.nullable() or self.right.nullable()

    def derivative(self, symbol: str) -> PathRegex:
        return union(self.left.derivative(symbol), self.right.derivative(symbol))

    def _key(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"{_paren(self.left)} + {_paren(self.right)}"


@dataclass(frozen=True, eq=False)
class Star(PathRegex):
    """Kleene star ``r*``."""

    inner: PathRegex

    def reverse(self) -> PathRegex:
        return Star(self.inner.reverse())

    def node_ids(self) -> FrozenSet[str]:
        return self.inner.node_ids()

    def nullable(self) -> bool:
        return True

    def derivative(self, symbol: str) -> PathRegex:
        return concat(self.inner.derivative(symbol), self)

    def _key(self):
        return (self.inner,)

    def __str__(self) -> str:
        return f"{_paren(self.inner)}*"


def _paren(r: PathRegex) -> str:
    if isinstance(r, (Node, AnyNode, Epsilon, EmptySet, Star)):
        return str(r)
    return f"({r})"


# ----------------------------------------------------------------- smart constructors

def node(name: str) -> PathRegex:
    """A regex matching the single node ``name``."""
    return Node(name)


def any_node() -> PathRegex:
    """The ``.`` wildcard."""
    return AnyNode()


def concat(*parts: PathRegex) -> PathRegex:
    """Concatenation with ∅/ε simplification."""
    result: Optional[PathRegex] = None
    for part in parts:
        if isinstance(part, EmptySet):
            return EmptySet()
        if isinstance(part, Epsilon):
            continue
        result = part if result is None else Concat(result, part)
    return result if result is not None else Epsilon()


def union(*parts: PathRegex) -> PathRegex:
    """Alternation with ∅ simplification and duplicate removal."""
    kept: List[PathRegex] = []
    for part in parts:
        if isinstance(part, EmptySet):
            continue
        if part not in kept:
            kept.append(part)
    if not kept:
        return EmptySet()
    result = kept[0]
    for part in kept[1:]:
        result = Union(result, part)
    return result


def star(inner: PathRegex) -> PathRegex:
    """Kleene star with simplification of ``∅*`` and ``ε*`` to ``ε``."""
    if isinstance(inner, (EmptySet, Epsilon)):
        return Epsilon()
    if isinstance(inner, Star):
        return inner
    return Star(inner)


# ----------------------------------------------------------------------------- parser

_TOKEN_RE = _re.compile(r"\s*(?:(?P<id>[A-Za-z_][A-Za-z0-9_]*)|(?P<dot>\.)|(?P<star>\*)"
                        r"|(?P<plus>\+)|(?P<lparen>\()|(?P<rparen>\)))")


class _Parser:
    """Recursive-descent parser for the paper's regex syntax.

    Grammar (standard precedence: star > concat > union)::

        union  := concat ('+' concat)*
        concat := postfix postfix*
        postfix:= atom '*'*
        atom   := node-id | '.' | '(' union ')'
    """

    def __init__(self, text: str):
        self.text = text
        self.tokens: List[Tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if match is None:
                if text[pos:].strip() == "":
                    break
                raise PolicyParseError("unexpected character in path regex", pos, text)
            kind = match.lastgroup or ""
            self.tokens.append((kind, match.group(kind), match.start(kind)))
            pos = match.end()
        self.index = 0

    def peek(self) -> Optional[Tuple[str, str, int]]:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def advance(self) -> Tuple[str, str, int]:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def parse(self) -> PathRegex:
        result = self.parse_union()
        if self.index != len(self.tokens):
            kind, value, pos = self.tokens[self.index]
            raise PolicyParseError(f"unexpected token {value!r} in path regex", pos, self.text)
        return result

    def parse_union(self) -> PathRegex:
        parts = [self.parse_concat()]
        while self.peek() is not None and self.peek()[0] == "plus":
            self.advance()
            parts.append(self.parse_concat())
        return union(*parts)

    def parse_concat(self) -> PathRegex:
        parts = [self.parse_postfix()]
        while self.peek() is not None and self.peek()[0] in ("id", "dot", "lparen"):
            parts.append(self.parse_postfix())
        return concat(*parts)

    def parse_postfix(self) -> PathRegex:
        result = self.parse_atom()
        while self.peek() is not None and self.peek()[0] == "star":
            self.advance()
            result = star(result)
        return result

    def parse_atom(self) -> PathRegex:
        token = self.peek()
        if token is None:
            raise PolicyParseError("unexpected end of path regex", len(self.text), self.text)
        kind, value, pos = token
        if kind == "id":
            self.advance()
            return Node(value)
        if kind == "dot":
            self.advance()
            return AnyNode()
        if kind == "lparen":
            self.advance()
            inner = self.parse_union()
            closing = self.peek()
            if closing is None or closing[0] != "rparen":
                raise PolicyParseError("missing ')' in path regex", pos, self.text)
            self.advance()
            return inner
        raise PolicyParseError(f"unexpected token {value!r} in path regex", pos, self.text)


def parse_regex(text: str) -> PathRegex:
    """Parse a path regular expression written in the paper's concrete syntax.

    Examples::

        parse_regex("A .* D")
        parse_regex(".* (F1 + F2) .*")
        parse_regex("A B D")
    """
    if not isinstance(text, str) or not text.strip():
        raise PolicyParseError("path regex must be a non-empty string")
    return _Parser(text).parse()
