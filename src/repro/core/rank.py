"""Rank algebra for Contra policies.

A Contra policy is a function that maps every network path to a *rank*;
``minimize`` then selects the path with the least rank (§2).  Ranks form a
totally ordered algebra:

* finite numeric ranks,
* the infinite rank ``∞`` ("path not allowed"; nothing is worse),
* tuples of ranks compared lexicographically (used for multi-metric policies
  such as widest-shortest paths), and
* addition, subtraction and min/max, with ``∞`` absorbing addition.

:class:`Rank` is immutable and hashable so it can be used as a dictionary key
inside switch tables.
"""

from __future__ import annotations

import math
from functools import total_ordering
from typing import Callable, Iterable, List, Sequence, Tuple, Union

from repro.exceptions import PolicyError

__all__ = ["Rank", "INFINITY", "ZERO"]

_Number = Union[int, float]


@total_ordering
class Rank:
    """An element of the Contra rank algebra.

    Internally a rank is a flat tuple of floats (``math.inf`` representing ∞);
    scalar ranks are 1-tuples.  Comparison is lexicographic with shorter
    tuples padded with zeros, which matches the intuition that ``(1,)`` and
    ``(1, 0)`` denote the same preference level.
    """

    __slots__ = ("_values",)

    def __init__(self, values: Union[_Number, Sequence[_Number], "Rank"]) -> None:
        if isinstance(values, Rank):
            self._values: Tuple[float, ...] = values._values
            return
        if isinstance(values, (int, float)):
            values = (values,)
        if not isinstance(values, (tuple, list)) or len(values) == 0:
            raise PolicyError(f"a rank must be a number or non-empty sequence, got {values!r}")
        flat: List[float] = []
        for v in values:
            if isinstance(v, Rank):
                flat.extend(v._values)
            elif isinstance(v, (int, float)):
                if math.isnan(v):
                    raise PolicyError("NaN is not a valid rank component")
                flat.append(float(v))
            else:
                raise PolicyError(f"invalid rank component {v!r}")
        self._values = tuple(flat)

    @classmethod
    def of_values(cls, values: Tuple[float, ...]) -> "Rank":
        """Internal fast constructor for an already-flat tuple of floats.

        Skips the flattening/validation pass of ``__init__``; callers must
        guarantee a non-empty tuple of floats (no NaN).  Hot paths (probe
        processing) construct one rank per accepted probe, where the checked
        constructor showed up prominently in profiles.
        """
        rank = object.__new__(cls)
        rank._values = values
        return rank

    # ------------------------------------------------------------- accessors

    @property
    def values(self) -> Tuple[float, ...]:
        """The underlying tuple of floats."""
        return self._values

    @property
    def is_infinite(self) -> bool:
        """True when the first (most significant) component is ∞."""
        return math.isinf(self._values[0])

    @property
    def is_finite(self) -> bool:
        return not self.is_infinite

    def scalar(self) -> float:
        """The value of a scalar rank; raises for tuple ranks."""
        if len(self._values) != 1:
            raise PolicyError(f"rank {self} is not scalar")
        return self._values[0]

    # ------------------------------------------------------------ comparison

    def _padded_pair(self, other: "Rank") -> Tuple[Tuple[float, ...], Tuple[float, ...]]:
        a, b = self._values, other._values
        n = max(len(a), len(b))
        return a + (0.0,) * (n - len(a)), b + (0.0,) * (n - len(b))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            other = Rank(other)
        if not isinstance(other, Rank):
            return NotImplemented
        a, b = self._padded_pair(other)
        return a == b

    def __lt__(self, other: object) -> bool:
        if isinstance(other, (int, float)):
            other = Rank(other)
        if not isinstance(other, Rank):
            return NotImplemented
        a, b = self._padded_pair(other)
        return a < b

    def __hash__(self) -> int:
        # Strip trailing zeros so equal ranks hash equally.
        values = self._values
        while len(values) > 1 and values[-1] == 0.0:
            values = values[:-1]
        return hash(values)

    # ------------------------------------------------------------ arithmetic

    def _binary(self, other: Union["Rank", _Number],
                op: Callable[[float, float], float]) -> "Rank":
        if isinstance(other, (int, float)):
            other = Rank(other)
        if not isinstance(other, Rank):
            raise PolicyError(f"cannot combine rank with {other!r}")
        a, b = self._padded_pair(other)
        return Rank(tuple(op(x, y) for x, y in zip(a, b)))

    def __add__(self, other: Union["Rank", _Number]) -> "Rank":
        return self._binary(other, lambda x, y: x + y)

    def __radd__(self, other: _Number) -> "Rank":
        return Rank(other) + self

    def __sub__(self, other: Union["Rank", _Number]) -> "Rank":
        def sub(x: float, y: float) -> float:
            if math.isinf(x):
                return x
            if math.isinf(y):
                raise PolicyError("cannot subtract an infinite rank from a finite one")
            return x - y

        return self._binary(other, sub)

    def __mul__(self, factor: _Number) -> "Rank":
        if not isinstance(factor, (int, float)):
            raise PolicyError(f"rank can only be scaled by a number, got {factor!r}")
        return Rank(tuple(v * factor for v in self._values))

    def __rmul__(self, factor: _Number) -> "Rank":
        return self * factor

    def combine_min(self, other: "Rank") -> "Rank":
        """The smaller (better) of two ranks."""
        return self if self <= other else other

    def combine_max(self, other: "Rank") -> "Rank":
        """The larger (worse) of two ranks."""
        return self if self >= other else other

    @staticmethod
    def tuple_of(components: Iterable[Union["Rank", _Number]]) -> "Rank":
        """Build a lexicographic tuple rank by concatenating components."""
        parts: List[Rank] = []
        for c in components:
            parts.append(Rank(c))
        if not parts:
            raise PolicyError("a tuple rank needs at least one component")
        return Rank(tuple(v for part in parts for v in part.values))

    # ---------------------------------------------------------------- output

    def __repr__(self) -> str:
        if len(self._values) == 1:
            inner = _fmt(self._values[0])
        else:
            inner = "(" + ", ".join(_fmt(v) for v in self._values) + ")"
        return f"Rank({inner})"

    def __str__(self) -> str:
        if len(self._values) == 1:
            return _fmt(self._values[0])
        return "(" + ", ".join(_fmt(v) for v in self._values) + ")"


def _fmt(value: float) -> str:
    if math.isinf(value):
        return "inf"
    if value == int(value):
        return str(int(value))
    return f"{value:g}"


#: The infinite rank — "this path is not allowed".
INFINITY = Rank(math.inf)

#: The best possible scalar rank.
ZERO = Rank(0.0)
