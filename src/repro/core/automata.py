"""Finite automata for path regular expressions.

The Contra compiler converts every regular expression in a policy into a
finite automaton over the alphabet of switch identifiers (§4.1).  Because
probes travel from the destination towards potential sources — opposite to
the direction of traffic — the compiler builds the automaton of the *reversed*
regex and then walks it as probes propagate.

The pipeline is the textbook one:

1. :class:`NFA` — Thompson construction from the regex AST, with transitions
   labelled either by a concrete switch id or by the wildcard ``.``;
2. :class:`DFA` — subset construction specialised to a concrete alphabet (the
   topology's switch set), including the explicit dead ("garbage") state the
   paper writes as ``-``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core import regex as rx
from repro.exceptions import CompilationError

__all__ = ["NFA", "DFA", "dfa_from_regex", "ANY_SYMBOL", "DEAD_STATE"]

#: Label used on NFA transitions that match any switch id.
ANY_SYMBOL = "."

#: Name of the DFA dead ("garbage") state, written ``-`` in the paper.
DEAD_STATE = -1


class NFA:
    """A non-deterministic finite automaton built by Thompson construction."""

    def __init__(self) -> None:
        self._next_state = 0
        self.start: int = 0
        self.accept: int = 0
        #: state -> list of (label, destination); label is a switch id or ANY_SYMBOL.
        self.transitions: Dict[int, List[Tuple[str, int]]] = {}
        #: state -> set of epsilon destinations.
        self.epsilon: Dict[int, Set[int]] = {}

    # -------------------------------------------------------------- building

    def new_state(self) -> int:
        state = self._next_state
        self._next_state += 1
        self.transitions.setdefault(state, [])
        self.epsilon.setdefault(state, set())
        return state

    def add_transition(self, src: int, label: str, dst: int) -> None:
        self.transitions.setdefault(src, []).append((label, dst))

    def add_epsilon(self, src: int, dst: int) -> None:
        self.epsilon.setdefault(src, set()).add(dst)

    @classmethod
    def from_regex(cls, pattern: rx.PathRegex) -> "NFA":
        """Thompson construction of an NFA accepting exactly ``pattern``."""
        nfa = cls()
        start, accept = nfa._build(pattern)
        nfa.start = start
        nfa.accept = accept
        return nfa

    def _build(self, pattern: rx.PathRegex) -> Tuple[int, int]:
        if isinstance(pattern, rx.EmptySet):
            start, accept = self.new_state(), self.new_state()
            return start, accept
        if isinstance(pattern, rx.Epsilon):
            start, accept = self.new_state(), self.new_state()
            self.add_epsilon(start, accept)
            return start, accept
        if isinstance(pattern, rx.Node):
            start, accept = self.new_state(), self.new_state()
            self.add_transition(start, pattern.name, accept)
            return start, accept
        if isinstance(pattern, rx.AnyNode):
            start, accept = self.new_state(), self.new_state()
            self.add_transition(start, ANY_SYMBOL, accept)
            return start, accept
        if isinstance(pattern, rx.Concat):
            s1, a1 = self._build(pattern.left)
            s2, a2 = self._build(pattern.right)
            self.add_epsilon(a1, s2)
            return s1, a2
        if isinstance(pattern, rx.Union):
            s1, a1 = self._build(pattern.left)
            s2, a2 = self._build(pattern.right)
            start, accept = self.new_state(), self.new_state()
            self.add_epsilon(start, s1)
            self.add_epsilon(start, s2)
            self.add_epsilon(a1, accept)
            self.add_epsilon(a2, accept)
            return start, accept
        if isinstance(pattern, rx.Star):
            s1, a1 = self._build(pattern.inner)
            start, accept = self.new_state(), self.new_state()
            self.add_epsilon(start, s1)
            self.add_epsilon(start, accept)
            self.add_epsilon(a1, s1)
            self.add_epsilon(a1, accept)
            return start, accept
        raise CompilationError(f"unsupported regex node {pattern!r}")

    # ------------------------------------------------------------- execution

    def epsilon_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` via epsilon transitions."""
        stack = list(states)
        closure = set(stack)
        while stack:
            state = stack.pop()
            for nxt in self.epsilon.get(state, ()):  # pragma: no branch
                if nxt not in closure:
                    closure.add(nxt)
                    stack.append(nxt)
        return frozenset(closure)

    def move(self, states: Iterable[int], symbol: str) -> Set[int]:
        """States reachable from ``states`` by consuming ``symbol``."""
        result: Set[int] = set()
        for state in states:
            for label, dst in self.transitions.get(state, ()):  # pragma: no branch
                if label == ANY_SYMBOL or label == symbol:
                    result.add(dst)
        return result

    def accepts(self, word: Sequence[str]) -> bool:
        """Reference acceptance check used by tests."""
        current = self.epsilon_closure({self.start})
        for symbol in word:
            current = self.epsilon_closure(self.move(current, symbol))
            if not current:
                return False
        return self.accept in current


class DFA:
    """A deterministic automaton over a concrete switch alphabet.

    States are consecutive integers; state ``DEAD_STATE`` (-1) is the explicit
    garbage state from which no path can ever be accepted.
    """

    def __init__(self, alphabet: Iterable[str]):
        self.alphabet: Tuple[str, ...] = tuple(sorted(set(alphabet)))
        self.initial: int = 0
        self.accepting: Set[int] = set()
        #: transition table: (state, symbol) -> state.
        self._delta: Dict[Tuple[int, str], int] = {}
        self.num_states: int = 0

    # -------------------------------------------------------------- building

    @classmethod
    def from_nfa(cls, nfa: NFA, alphabet: Iterable[str]) -> "DFA":
        """Subset construction restricted to ``alphabet``."""
        dfa = cls(alphabet)
        start = nfa.epsilon_closure({nfa.start})
        subset_index: Dict[FrozenSet[int], int] = {start: 0}
        dfa.num_states = 1
        if nfa.accept in start:
            dfa.accepting.add(0)
        queue: List[FrozenSet[int]] = [start]
        while queue:
            subset = queue.pop()
            src = subset_index[subset]
            for symbol in dfa.alphabet:
                target = nfa.epsilon_closure(nfa.move(subset, symbol))
                if not target:
                    dfa._delta[(src, symbol)] = DEAD_STATE
                    continue
                if target not in subset_index:
                    subset_index[target] = dfa.num_states
                    dfa.num_states += 1
                    if nfa.accept in target:
                        dfa.accepting.add(subset_index[target])
                    queue.append(target)
                dfa._delta[(src, symbol)] = subset_index[target]
        return dfa

    # ------------------------------------------------------------- interface

    def transition(self, state: int, symbol: str) -> int:
        """The successor state after consuming ``symbol`` (DEAD_STATE if none)."""
        if state == DEAD_STATE:
            return DEAD_STATE
        if symbol not in self._alphabet_set():
            return DEAD_STATE
        return self._delta.get((state, symbol), DEAD_STATE)

    def _alphabet_set(self) -> Set[str]:
        cached = getattr(self, "_alpha_cache", None)
        if cached is None:
            cached = set(self.alphabet)
            self._alpha_cache = cached
        return cached

    def is_accepting(self, state: int) -> bool:
        return state in self.accepting

    def is_dead(self, state: int) -> bool:
        return state == DEAD_STATE

    @property
    def states(self) -> List[int]:
        """All live states (the dead state excluded)."""
        return list(range(self.num_states))

    def accepts(self, word: Sequence[str]) -> bool:
        """Reference acceptance check used by tests."""
        state = self.initial
        for symbol in word:
            state = self.transition(state, symbol)
            if state == DEAD_STATE:
                return False
        return self.is_accepting(state)

    def live_states(self) -> Set[int]:
        """States from which an accepting state is reachable."""
        reverse: Dict[int, Set[int]] = {s: set() for s in self.states}
        for (src, _symbol), dst in self._delta.items():
            if dst != DEAD_STATE:
                reverse[dst].add(src)
        live = set(self.accepting)
        stack = list(self.accepting)
        while stack:
            state = stack.pop()
            for pred in reverse.get(state, ()):  # pragma: no branch
                if pred not in live:
                    live.add(pred)
                    stack.append(pred)
        return live

    def minimize(self) -> "DFA":
        """Hopcroft-style minimization (partition refinement).

        Reduces the number of product-graph virtual nodes and therefore the
        number of tags the data plane must carry.
        """
        states = set(self.states)
        if not states:
            return self
        accepting = set(self.accepting) & states
        non_accepting = states - accepting
        partitions: List[Set[int]] = [p for p in (accepting, non_accepting) if p]

        changed = True
        while changed:
            changed = False
            new_partitions: List[Set[int]] = []
            for block in partitions:
                # Split the block by transition signature.
                signature_of: Dict[int, Tuple[int, ...]] = {}
                for state in block:
                    signature = tuple(
                        self._block_index(partitions, self.transition(state, symbol))
                        for symbol in self.alphabet
                    )
                    signature_of[state] = signature
                groups: Dict[Tuple[int, ...], Set[int]] = {}
                for state, signature in signature_of.items():
                    groups.setdefault(signature, set()).add(state)
                if len(groups) > 1:
                    changed = True
                new_partitions.extend(groups.values())
            partitions = new_partitions

        # Build the minimized DFA.
        block_of: Dict[int, int] = {}
        for idx, block in enumerate(sorted(partitions, key=lambda b: min(b))):
            for state in block:
                block_of[state] = idx
        minimized = DFA(self.alphabet)
        minimized.num_states = len(partitions)
        minimized.initial = block_of[self.initial]
        minimized.accepting = {block_of[s] for s in self.accepting}
        for (src, symbol), dst in self._delta.items():
            if dst == DEAD_STATE:
                minimized._delta[(block_of[src], symbol)] = DEAD_STATE
            else:
                minimized._delta[(block_of[src], symbol)] = block_of[dst]
        # Renumber so that the initial state is 0 (cosmetic but keeps reports stable).
        if minimized.initial != 0:
            swap = minimized.initial
            remap = {swap: 0, 0: swap}
            minimized.initial = 0
            minimized.accepting = {remap.get(s, s) for s in minimized.accepting}
            minimized._delta = {
                (remap.get(src, src), symbol): remap.get(dst, dst) if dst != DEAD_STATE else DEAD_STATE
                for (src, symbol), dst in minimized._delta.items()
            }
        return minimized

    @staticmethod
    def _block_index(partitions: List[Set[int]], state: int) -> int:
        if state == DEAD_STATE:
            return -1
        for idx, block in enumerate(partitions):
            if state in block:
                return idx
        return -1

    def __repr__(self) -> str:
        return (f"DFA(states={self.num_states}, accepting={sorted(self.accepting)}, "
                f"alphabet={len(self.alphabet)} symbols)")


def dfa_from_regex(pattern: rx.PathRegex, alphabet: Iterable[str], minimize: bool = True) -> DFA:
    """Compile a path regex into a DFA over ``alphabet``.

    ``minimize`` controls whether Hopcroft minimization runs (on by default;
    the compiler exposes it as an optimization toggle for the ablation bench).
    """
    nfa = NFA.from_regex(pattern)
    dfa = DFA.from_nfa(nfa, alphabet)
    return dfa.minimize() if minimize else dfa
