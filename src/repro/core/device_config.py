"""Per-switch device configurations produced by the Contra compiler.

The paper's compiler emits one P4 program per switch; the behaviour of that
program is fully determined by a small amount of switch-local configuration:

* how an incoming probe's tag maps onto one of this switch's own virtual-node
  tags (``probe_transition``),
* which neighbours a probe must be multicast to next (``multicast_neighbors``),
* the acceptance signature of each local tag, used when the switch evaluates
  the user policy to pick its overall best entry, and
* the tag in which probes originated by this switch (as a destination) start.

:class:`DeviceConfig` captures exactly that configuration.  The simulator's
Contra switch interprets it directly, and :mod:`repro.core.p4gen` renders it
as a P4-style program, mirroring the two backends the paper describes
(ns-3 execution and P4 source).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from repro.core.analysis.decomposition import Decomposition
from repro.core.attributes import ATTRIBUTES
from repro.core.regex import PathRegex
from repro.exceptions import CompilationError
from repro.nputil import np

__all__ = ["TagInfo", "DeviceConfig", "StateEstimate"]


@dataclass(frozen=True)
class TagInfo:
    """Everything a switch knows about one of its virtual-node tags."""

    tag: int
    #: Automaton state vector (informational; the data plane only needs the tag).
    states: Tuple[int, ...]
    #: Per-regex acceptance: True when a traffic path ending in this tag
    #: satisfies the corresponding policy regex.
    acceptance: Tuple[bool, ...]
    #: Topology neighbours to which probes carrying this tag are multicast.
    multicast_neighbors: Tuple[str, ...]


@dataclass(frozen=True)
class StateEstimate:
    """Estimated switch memory footprint of the generated program (Figure 10)."""

    fwdt_bytes: int
    bestt_bytes: int
    flowlet_bytes: int
    loop_table_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.fwdt_bytes + self.bestt_bytes + self.flowlet_bytes + self.loop_table_bytes

    @property
    def total_kb(self) -> float:
        return self.total_bytes / 1024.0


@dataclass
class DeviceConfig:
    """The switch-local program configuration for one switch."""

    switch: str
    #: Original-policy regexes in order (shared across all switches).
    regexes: Tuple[PathRegex, ...]
    #: tag -> TagInfo for this switch's virtual nodes.
    tags: Dict[int, TagInfo]
    #: (neighbor switch, neighbor tag) -> this switch's tag, or absent if the
    #: probe must be dropped (no product-graph edge).
    probe_transition: Dict[Tuple[str, int], int]
    #: The tag newly originated probes carry when this switch is a destination.
    probe_origin_tag: int
    #: Attribute names carried in every probe's metric vector, in wire order.
    carried_attrs: Tuple[str, ...]
    #: Number of probe ids (subpolicies) in the decomposed policy.
    num_probe_ids: int
    #: Total number of switches in the network (used for sizing estimates).
    network_size: int = 0
    #: Flowlet-table slots provisioned per (tag, pid); mirrors the fixed-size
    #: register arrays a P4 program would allocate.
    flowlet_slots: int = 256
    #: Loop-detection table slots (packet-hash keyed).
    loop_table_slots: int = 256

    # ------------------------------------------------------------------ helpers

    def tag_info(self, tag: int) -> TagInfo:
        try:
            return self.tags[tag]
        except KeyError:
            raise CompilationError(f"switch {self.switch!r} has no tag {tag}") from None

    def next_tag_for_probe(self, from_neighbor: str, neighbor_tag: int) -> Optional[int]:
        """The local tag a probe transitions into, or None if it must be dropped."""
        return self.probe_transition.get((from_neighbor, neighbor_tag))

    def multicast_targets(self, tag: int) -> Tuple[str, ...]:
        """Neighbours to which a probe in ``tag`` is propagated next."""
        return self.tag_info(tag).multicast_neighbors

    def lowered_transitions(self) -> "Optional[Dict[str, object]]":
        """``probe_transition`` lowered to one dense int array per inport.

        For every neighbour this returns a vector mapping *neighbour tag* →
        *local tag*, with ``-1`` where the dict has no entry (no product-graph
        edge: the probe is dropped).  A whole wave's transition lookup then
        becomes one fancy-indexing read instead of N dict probes.  The arrays
        are an exact lowering of the dict — same keys, same values, absent
        means dropped — and are cached per config (the table is immutable
        after compilation).  Returns None without numpy.
        """
        if np is None:
            return None
        cached = getattr(self, "_lowered_transitions", None)
        if cached is None:
            per_inport: Dict[str, List[Tuple[int, int]]] = {}
            for (neighbor, neighbor_tag), local_tag in self.probe_transition.items():
                per_inport.setdefault(neighbor, []).append((neighbor_tag, local_tag))
            cached = {}
            for neighbor, pairs in per_inport.items():
                row = np.full(max(tag for tag, _ in pairs) + 1, -1, dtype=np.int64)
                for neighbor_tag, local_tag in pairs:
                    row[neighbor_tag] = local_tag
                cached[neighbor] = row
            # Plain attribute, not a dataclass field: the cache must not
            # participate in DeviceConfig equality or repr.
            self._lowered_transitions = cached
        return cached

    def acceptance_of(self, tag: int) -> Dict[PathRegex, bool]:
        """Acceptance keyed by the original regex objects (for policy evaluation)."""
        return dict(zip(self.regexes, self.tag_info(tag).acceptance))

    @property
    def num_tags(self) -> int:
        return len(self.tags)

    def tag_bits(self) -> int:
        """Bits needed to encode a tag on the wire (compiler minimises this)."""
        return max(1, math.ceil(math.log2(max(2, self.num_tags))))

    def metric_bits(self) -> int:
        """Bits of the metric vector carried by each probe."""
        return sum(ATTRIBUTES[name].bits for name in self.carried_attrs)

    def probe_bits(self) -> int:
        """Total probe payload size in bits (origin, pid, version, tag, metrics)."""
        origin_bits = max(1, math.ceil(math.log2(max(2, self.network_size or 2))))
        pid_bits = max(1, math.ceil(math.log2(max(2, self.num_probe_ids))))
        version_bits = 16
        return origin_bits + pid_bits + version_bits + self.tag_bits() + self.metric_bits()

    def packet_tag_bits(self) -> int:
        """Extra header bits Contra adds to every data packet (tag + pid)."""
        pid_bits = max(1, math.ceil(math.log2(max(2, self.num_probe_ids))))
        return self.tag_bits() + pid_bits

    # ----------------------------------------------------------- state estimate

    def state_estimate(self) -> StateEstimate:
        """Estimate the switch memory used by the generated program.

        The forwarding table has one row per (destination, local tag, probe
        id); the best-choice table one row per destination; flowlet and loop
        tables are fixed-size register arrays whose rows scale with the number
        of (tag, pid) combinations, exactly as the policy-aware flowlet
        switching refinement requires (§5.3).
        """
        destinations = max(1, self.network_size)
        mv_bytes = max(1, self.metric_bits() // 8)
        fwdt_row = mv_bytes + 2 + 1 + 2  # metrics + version + next tag + next hop/port
        fwdt_bytes = destinations * self.num_tags * self.num_probe_ids * fwdt_row
        bestt_row = 1 + 1 + 2            # tag + pid + key bookkeeping
        bestt_bytes = destinations * bestt_row
        flowlet_row = 2 + 1 + 4          # next hop + tag + timestamp
        flowlet_bytes = self.flowlet_slots * max(1, self.num_tags) * self.num_probe_ids * flowlet_row
        loop_row = 1 + 1 + 4             # max ttl + min ttl + hash bookkeeping
        loop_bytes = self.loop_table_slots * loop_row
        return StateEstimate(fwdt_bytes, bestt_bytes, flowlet_bytes, loop_bytes)

    def __repr__(self) -> str:
        return (f"DeviceConfig(switch={self.switch!r}, tags={self.num_tags}, "
                f"pids={self.num_probe_ids}, metrics={list(self.carried_attrs)})")
