"""Product graph construction (§4.1).

The product graph (PG) combines the policy's regular expressions with the
network topology into one compact structure that represents *all*
policy-compliant paths.  Its nodes — "virtual nodes" — are pairs of a physical
switch and a vector of automaton states (one per regex); its edges follow
topology links whose traversal advances every automaton consistently.

Probes are disseminated along PG edges starting from *probe sending states*
(the virtual node a destination's probes are born in), in the direction
opposite to traffic.  Because the automata are built from the **reversed**
regular expressions, a probe that reaches the virtual node ``(S, q)`` tells
switch ``S`` which regexes the corresponding *traffic* path ``S → ... → dst``
satisfies: exactly those whose automaton state in ``q`` is accepting.

Every virtual node receives a small integer *tag*, unique per physical switch;
tags are what probes and packets carry on the wire.  Tag minimisation merges
behaviourally equivalent virtual nodes of the same switch (same acceptance
signature, bisimilar successors), one of the compiler optimisations §6.1
mentions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.automata import DEAD_STATE, DFA, dfa_from_regex
from repro.core.regex import PathRegex
from repro.exceptions import CompilationError
from repro.topology.graph import Topology

__all__ = ["PGNode", "ProductGraph", "build_product_graph"]


@dataclass(frozen=True)
class PGNode:
    """A virtual node: a physical switch paired with one state per policy regex."""

    switch: str
    states: Tuple[int, ...]

    def __str__(self) -> str:
        if not self.states:
            return self.switch
        rendered = ",".join("-" if s == DEAD_STATE else str(s) for s in self.states)
        return f"({self.switch};{rendered})"


class ProductGraph:
    """The product of the topology with the (reversed) policy automata."""

    def __init__(
        self,
        topology: Topology,
        regexes: Sequence[PathRegex],
        dfas: Sequence[DFA],
    ):
        self.topology = topology
        self.regexes: Tuple[PathRegex, ...] = tuple(regexes)
        self.dfas: Tuple[DFA, ...] = tuple(dfas)
        if len(self.regexes) != len(self.dfas):
            raise CompilationError("one DFA is required per policy regex")

        #: All virtual nodes, in deterministic order.
        self.nodes: List[PGNode] = []
        self._node_index: Dict[PGNode, int] = {}
        #: Probe-propagation edges: node -> successors (towards traffic sources).
        self.out_edges: Dict[PGNode, List[PGNode]] = {}
        self.in_edges: Dict[PGNode, List[PGNode]] = {}
        #: The virtual node probes originating at a destination switch start in.
        self.probe_sending_nodes: Dict[str, PGNode] = {}
        #: tag assignment: node -> per-switch tag id.
        self.tags: Dict[PGNode, int] = {}
        #: reverse lookup: (switch, tag) -> node.
        self._by_tag: Dict[Tuple[str, int], PGNode] = {}

    # ------------------------------------------------------------ construction

    def _add_node(self, node: PGNode) -> bool:
        if node in self._node_index:
            return False
        self._node_index[node] = len(self.nodes)
        self.nodes.append(node)
        self.out_edges[node] = []
        self.in_edges[node] = []
        return True

    def build(self) -> None:
        """Explore the product graph from every probe-sending state."""
        queue: List[PGNode] = []
        for switch in self.topology.switches:
            states = tuple(dfa.transition(dfa.initial, switch) for dfa in self.dfas)
            node = PGNode(switch, states)
            self.probe_sending_nodes[switch] = node
            if self._add_node(node):
                queue.append(node)

        while queue:
            node = queue.pop()
            for neighbor in self.topology.switch_neighbors(node.switch):
                next_states = tuple(
                    dfa.transition(state, neighbor)
                    for dfa, state in zip(self.dfas, node.states)
                )
                successor = PGNode(neighbor, next_states)
                if self._add_node(successor):
                    queue.append(successor)
                if successor not in self.out_edges[node]:
                    self.out_edges[node].append(successor)
                    self.in_edges[successor].append(node)

        self._assign_tags()

    def _assign_tags(self) -> None:
        """Assign per-switch tag ids in a deterministic order."""
        self.tags.clear()
        self._by_tag.clear()
        per_switch: Dict[str, int] = {}
        for node in sorted(self.nodes, key=lambda n: (n.switch, n.states)):
            tag = per_switch.get(node.switch, 0)
            per_switch[node.switch] = tag + 1
            self.tags[node] = tag
            self._by_tag[(node.switch, tag)] = node

    # ---------------------------------------------------------------- queries

    def node_for(self, switch: str, states: Sequence[int]) -> Optional[PGNode]:
        node = PGNode(switch, tuple(states))
        return node if node in self._node_index else None

    def node_by_tag(self, switch: str, tag: int) -> PGNode:
        try:
            return self._by_tag[(switch, tag)]
        except KeyError:
            raise CompilationError(f"switch {switch!r} has no virtual node with tag {tag}") from None

    def tag_of(self, node: PGNode) -> int:
        return self.tags[node]

    def nodes_of_switch(self, switch: str) -> List[PGNode]:
        return [n for n in self.nodes if n.switch == switch]

    def successors(self, node: PGNode) -> List[PGNode]:
        """Probe-propagation successors (towards traffic sources)."""
        return list(self.out_edges.get(node, []))

    def predecessors(self, node: PGNode) -> List[PGNode]:
        return list(self.in_edges.get(node, []))

    def successor_at(self, node: PGNode, neighbor: str) -> Optional[PGNode]:
        """The successor of ``node`` located at topology neighbor ``neighbor``."""
        for succ in self.out_edges.get(node, []):
            if succ.switch == neighbor:
                return succ
        return None

    def acceptance(self, node: PGNode) -> Tuple[bool, ...]:
        """Which policy regexes the traffic path ending at this node satisfies."""
        return tuple(dfa.is_accepting(state) for dfa, state in zip(self.dfas, node.states))

    def acceptance_by_regex(self, node: PGNode) -> Dict[PathRegex, bool]:
        """Acceptance keyed by the original (traffic-direction) regex objects."""
        return dict(zip(self.regexes, self.acceptance(node)))

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(v) for v in self.out_edges.values())

    def max_tags_per_switch(self) -> int:
        """The largest number of virtual nodes any single switch has."""
        counts: Dict[str, int] = {}
        for node in self.nodes:
            counts[node.switch] = counts.get(node.switch, 0) + 1
        return max(counts.values()) if counts else 0

    # ----------------------------------------------------- reference path tools

    def trace_traffic_path(self, path: Sequence[str]) -> Optional[List[PGNode]]:
        """Map a traffic path ``[src, ..., dst]`` to the probe-direction PG walk.

        Returns the list of PG nodes the corresponding probe would visit (from
        the destination's probe-sending node to the source's virtual node), or
        ``None`` if any hop is missing from the topology.  Used by tests and by
        the reference optimal-path oracle.
        """
        if len(path) < 1:
            return None
        reversed_path = list(reversed(path))
        dst = reversed_path[0]
        if dst not in self.probe_sending_nodes:
            return None
        current = self.probe_sending_nodes[dst]
        walk = [current]
        for hop in reversed_path[1:]:
            if not self.topology.has_link(current.switch, hop):
                return None
            next_states = tuple(
                dfa.transition(state, hop) for dfa, state in zip(self.dfas, current.states))
            current = PGNode(hop, next_states)
            walk.append(current)
        return walk

    def traffic_path_acceptance(self, path: Sequence[str]) -> Optional[Dict[PathRegex, bool]]:
        """Regex acceptance of a traffic path, computed through the automata."""
        walk = self.trace_traffic_path(path)
        if walk is None:
            return None
        return self.acceptance_by_regex(walk[-1])

    # ------------------------------------------------------------- restriction

    def restrict_to(self, keep: Iterable[PGNode]) -> None:
        """Drop every virtual node not in ``keep`` and reassign tags.

        Used by the reachability pass to prune dead states.  Probe-sending
        nodes can never be dropped — they anchor ``probe_origin_tag`` on every
        device — so asking to remove one is a caller bug.
        """
        keep_set = set(keep)
        missing = sorted(
            switch for switch, node in self.probe_sending_nodes.items()
            if node not in keep_set)
        if missing:
            raise CompilationError(
                "cannot prune probe-sending nodes of switches: "
                + ", ".join(missing))
        if keep_set >= set(self.nodes):
            return
        new_nodes = [n for n in self.nodes if n in keep_set]
        self.nodes = new_nodes
        self._node_index = {n: i for i, n in enumerate(new_nodes)}
        self.out_edges = {
            n: [s for s in self.out_edges[n] if s in keep_set] for n in new_nodes}
        self.in_edges = {
            n: [p for p in self.in_edges[n] if p in keep_set] for n in new_nodes}
        self._assign_tags()

    # --------------------------------------------------------- tag minimisation

    def minimize_tags(self) -> Dict[PGNode, PGNode]:
        """Merge behaviourally equivalent virtual nodes of the same switch.

        Two virtual nodes of the same switch are equivalent when they have the
        same acceptance signature and, for every topology neighbour, their
        successors are equivalent (a bisimulation over the PG).  Returns the
        mapping from original node to representative and rebuilds the graph in
        place.  Reduces the number of tags packets must carry (§6.1).
        """
        # Initial partition: (switch, acceptance signature).
        block_of: Dict[PGNode, int] = {}
        blocks: Dict[Tuple, int] = {}
        for node in self.nodes:
            key = (node.switch, self.acceptance(node))
            if key not in blocks:
                blocks[key] = len(blocks)
            block_of[node] = blocks[key]

        changed = True
        while changed:
            changed = False
            signature_blocks: Dict[Tuple, int] = {}
            new_block_of: Dict[PGNode, int] = {}
            for node in self.nodes:
                successor_signature = tuple(sorted(
                    (succ.switch, block_of[succ]) for succ in self.out_edges[node]))
                key = (block_of[node], successor_signature)
                if key not in signature_blocks:
                    signature_blocks[key] = len(signature_blocks)
                new_block_of[node] = signature_blocks[key]
            # Refinement only ever splits blocks, so it has converged exactly
            # when the number of distinct blocks stops growing.
            changed = len(set(new_block_of.values())) != len(set(block_of.values()))
            block_of = new_block_of

        # Pick one representative per block (the smallest state vector).
        representative: Dict[int, PGNode] = {}
        for node in sorted(self.nodes, key=lambda n: (n.switch, n.states)):
            representative.setdefault(block_of[node], node)
        mapping = {node: representative[block_of[node]] for node in self.nodes}

        if all(mapping[node] == node for node in self.nodes):
            return mapping

        # Rebuild nodes/edges/probe-sending states under the mapping.
        new_nodes: List[PGNode] = []
        seen: Set[PGNode] = set()
        for node in self.nodes:
            rep = mapping[node]
            if rep not in seen:
                seen.add(rep)
                new_nodes.append(rep)
        new_out: Dict[PGNode, List[PGNode]] = {n: [] for n in new_nodes}
        new_in: Dict[PGNode, List[PGNode]] = {n: [] for n in new_nodes}
        for node, successors in self.out_edges.items():
            rep = mapping[node]
            for succ in successors:
                succ_rep = mapping[succ]
                if succ_rep not in new_out[rep]:
                    new_out[rep].append(succ_rep)
                    new_in[succ_rep].append(rep)
        self.nodes = new_nodes
        self._node_index = {n: i for i, n in enumerate(new_nodes)}
        self.out_edges = new_out
        self.in_edges = new_in
        self.probe_sending_nodes = {
            switch: mapping[node] for switch, node in self.probe_sending_nodes.items()}
        self._assign_tags()
        return mapping

    def __repr__(self) -> str:
        return (f"ProductGraph(nodes={self.num_nodes}, edges={self.num_edges}, "
                f"regexes={len(self.regexes)})")


def build_product_graph(
    topology: Topology,
    regexes: Sequence[PathRegex],
    minimize_automata: bool = True,
    minimize_tags: bool = True,
) -> ProductGraph:
    """Build the product graph of a topology and the policy's regexes.

    The automata are built from the *reversed* regexes because probes travel
    from destinations towards sources (§4.1).
    """
    alphabet = topology.switches
    if not alphabet:
        raise CompilationError("topology has no switches")
    dfas = [dfa_from_regex(r.reverse(), alphabet, minimize=minimize_automata) for r in regexes]
    graph = ProductGraph(topology, regexes, dfas)
    graph.build()
    if minimize_tags and regexes:
        graph.minimize_tags()
    return graph
