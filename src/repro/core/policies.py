"""The policy library from Figure 3 plus the policies used in the evaluation.

Each function returns a fresh :class:`~repro.core.ast.Policy`.  The policies
P1–P9 correspond line-for-line to Figure 3 of the paper; the three evaluation
policies (MU, WP, CA) from §6.2 are aliases with the paper's parameters.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core import ast
from repro.exceptions import PolicyError
from repro.core.builder import (
    add,
    as_expr,
    if_,
    inf,
    lt,
    matches,
    minimize,
    path,
    rank_tuple,
)

__all__ = [
    "shortest_path",
    "minimum_utilization",
    "widest_shortest_paths",
    "shortest_widest_paths",
    "waypointing",
    "link_preference",
    "weighted_link",
    "source_local_preference",
    "congestion_aware",
    "minimize_latency",
    "failover_preference",
    "MU",
    "WP",
    "CA",
    "ALL_POLICIES",
    "POLICY_ALIASES",
    "policy_by_name",
]


def shortest_path() -> ast.Policy:
    """P1 — classic shortest-path routing (RIP-style): ``minimize(path.len)``."""
    return minimize(path.len, name="P1-shortest-path")


def minimum_utilization() -> ast.Policy:
    """P2 — Hula-style least-utilized path: ``minimize(path.util)``."""
    return minimize(path.util, name="P2-minimum-utilization")


def widest_shortest_paths() -> ast.Policy:
    """P3 — widest shortest paths: ``minimize((path.util, path.len))``."""
    return minimize(rank_tuple(path.util, path.len), name="P3-widest-shortest")


def shortest_widest_paths() -> ast.Policy:
    """P4 — shortest widest paths: ``minimize((path.len, path.util))``."""
    return minimize(rank_tuple(path.len, path.util), name="P4-shortest-widest")


def waypointing(waypoints: Sequence[str] = ("F1", "F2")) -> ast.Policy:
    """P5 — traffic must pass one of the waypoints, preferring least utilization.

    ``minimize(if .*(F1+F2).* then path.util else inf)``
    """
    if not waypoints:
        raise ValueError("waypointing requires at least one waypoint switch")
    alternatives = " + ".join(waypoints)
    return minimize(if_(matches(f".* ({alternatives}) .*"), path.util, inf),
                    name="P5-waypointing")


def link_preference(a: str = "X", b: str = "Y") -> ast.Policy:
    """P6 — only paths traversing link ``a``-``b`` are allowed, least utilized first.

    ``minimize(if .*XY.* then path.util else inf)``
    """
    return minimize(if_(matches(f".* {a} {b} .*"), path.util, inf), name="P6-link-preference")


def weighted_link(a: str = "X", b: str = "Y", weight: float = 10.0) -> ast.Policy:
    """P7 — penalise a costly link by ``weight`` on top of shortest paths.

    ``minimize((if .*XY.* then 10 else 0) + path.len)``
    """
    penalty = if_(matches(f".* {a} {b} .*"), weight, 0)
    return minimize(add(penalty, path.len), name="P7-weighted-link")


def source_local_preference(source: str = "X") -> ast.Policy:
    """P8 — the named source optimises utilization, everyone else latency.

    ``minimize(if X.* then path.util else path.lat)``
    """
    return minimize(if_(matches(f"{source} .*"), path.util, path.lat),
                    name="P8-source-local-preference")


def congestion_aware(threshold: float = 0.8) -> ast.Policy:
    """P9 — congestion-aware routing (non-isotonic, §2 and Figure 3).

    ``minimize(if path.util < .8 then (1, 0, path.util) else (2, path.len, path.util))``
    """
    return minimize(
        if_(lt(path.util, threshold),
            rank_tuple(1, 0, path.util),
            rank_tuple(2, path.len, path.util)),
        name="P9-congestion-aware")


def minimize_latency() -> ast.Policy:
    """Latency-optimal routing, useful on WAN topologies: ``minimize(path.lat)``."""
    return minimize(path.lat, name="minimize-latency")


def failover_preference(primary: Sequence[str], backup: Sequence[str]) -> ast.Policy:
    """Propane-style static preference: use ``primary`` if available, else ``backup``.

    ``minimize(if <primary> then 0 else if <backup> then 1 else inf)``
    """
    primary_regex = " ".join(primary)
    backup_regex = " ".join(backup)
    return minimize(
        if_(matches(primary_regex), 0, if_(matches(backup_regex), 1, inf)),
        name="failover-preference")


# Aliases used throughout the evaluation section (§6.2).

def MU() -> ast.Policy:
    """The "minimum utilization" evaluation policy (no regexes, one metric)."""
    policy = minimum_utilization()
    return ast.Policy(policy.expression, name="MU")


def WP(waypoints: Sequence[str] = ("F1", "F2"), extra: Optional[Sequence[str]] = None) -> ast.Policy:
    """The "waypointing" evaluation policy (three regexes, one metric).

    The paper describes WP as using three regular expressions; we model it as a
    preference order: least-utilized paths through the primary waypoint, then
    (at a penalty) paths through the backup waypoint, and a fallback pattern
    that forbids paths avoiding all waypoints.
    """
    primary = waypoints[0]
    backup_group = extra if extra else waypoints[1:] or waypoints[:1]
    backup = " + ".join(backup_group)
    expression = if_(matches(f".* {primary} .*"), path.util,
                     if_(matches(f".* ({backup}) .*"),
                         add(path.util, 1),
                         if_(matches(".*"), inf, inf)))
    return ast.Policy(as_expr(expression), name="WP")


def CA(threshold: float = 0.8) -> ast.Policy:
    """The "congestion aware" evaluation policy (non-isotonic, two metrics)."""
    policy = congestion_aware(threshold)
    return ast.Policy(policy.expression, name="CA")


ALL_POLICIES = {
    "P1": shortest_path,
    "P2": minimum_utilization,
    "P3": widest_shortest_paths,
    "P4": shortest_widest_paths,
    "P5": waypointing,
    "P6": link_preference,
    "P7": weighted_link,
    "P8": source_local_preference,
    "P9": congestion_aware,
}

#: Paper-name aliases accepted wherever a bundled policy is named (CLI, CI).
POLICY_ALIASES = {
    "MU": MU,
    "WP": WP,
    "CA": CA,
    "minimize-latency": minimize_latency,
}


def policy_by_name(name: str) -> ast.Policy:
    """Instantiate a bundled policy by registry key (``P1``..``P9``) or alias.

    Raises :class:`PolicyError` for unknown names, listing what is available.
    """
    factory = ALL_POLICIES.get(name) or POLICY_ALIASES.get(name)
    if factory is None:
        known = ", ".join(sorted(ALL_POLICIES) + sorted(POLICY_ALIASES))
        raise PolicyError(f"unknown bundled policy {name!r} (known: {known})")
    return factory()
