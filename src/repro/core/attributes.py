"""Path attributes and their composition semantics.

Contra policies reference dynamic path metrics such as ``path.util`` and
``path.lat`` (Figure 2).  Each attribute is defined by how per-link values
compose along a path:

* ``util`` — bottleneck utilization: the **maximum** link utilization,
* ``lat``  — end-to-end latency: the **sum** of link latencies,
* ``len``  — hop count: the **count** of links (sum of 1 per link).

Probes carry a *metric vector*: one accumulated value per attribute that the
compiled policy needs.  The composition operation also determines the
monotonicity/isotonicity classification used by the policy analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Tuple

from repro.exceptions import PolicyError

__all__ = ["PathAttribute", "ATTRIBUTES", "attribute", "MetricVector", "metric_names"]


@dataclass(frozen=True)
class PathAttribute:
    """Definition of one dynamic path metric.

    Attributes
    ----------
    name:
        Attribute name as written in policies (``util``, ``lat``, ``len``).
    composition:
        ``"max"``, ``"sum"`` or ``"count"`` — how per-link values accumulate.
    initial:
        The metric value of the empty path.
    bits:
        Number of bits a probe needs to carry this metric (used for the
        switch-state and traffic-overhead estimates).
    """

    name: str
    composition: str
    initial: float
    bits: int = 32

    def extend(self, accumulated: float, link_value: float) -> float:
        """Combine an accumulated path value with one more link's value."""
        if self.composition == "max":
            return max(accumulated, link_value)
        if self.composition == "sum":
            return accumulated + link_value
        if self.composition == "count":
            return accumulated + 1.0
        raise PolicyError(f"unknown composition {self.composition!r}")

    @property
    def is_monotone(self) -> bool:
        """Whether extending a path can never improve (decrease) the metric.

        True for all built-in attributes given non-negative link values.
        """
        return self.composition in ("max", "sum", "count")

    @property
    def is_max_like(self) -> bool:
        """Max-composition metrics break isotonicity when used as a lexicographic prefix."""
        return self.composition == "max"


#: Registry of the attributes supported by the policy language.
ATTRIBUTES: Dict[str, PathAttribute] = {
    "util": PathAttribute("util", "max", 0.0, bits=32),
    "lat": PathAttribute("lat", "sum", 0.0, bits=32),
    "len": PathAttribute("len", "count", 0.0, bits=16),
}


def attribute(name: str) -> PathAttribute:
    """Look up an attribute by name, raising :class:`PolicyError` for unknown names."""
    try:
        return ATTRIBUTES[name]
    except KeyError:
        raise PolicyError(
            f"unknown path attribute {name!r}; supported: {sorted(ATTRIBUTES)}") from None


def metric_names() -> List[str]:
    """All supported attribute names in canonical order."""
    return sorted(ATTRIBUTES)


class MetricVector:
    """An accumulated metric vector carried by a probe.

    The vector holds one value per attribute name in a fixed order; it is the
    ``mv`` field from the paper's pseudocode (Figure 7).
    """

    __slots__ = ("_names", "_values")

    def __init__(self, names: Iterable[str], values: Iterable[float] | None = None):
        self._names: Tuple[str, ...] = tuple(names)
        for name in self._names:
            attribute(name)  # validation
        if values is None:
            self._values: Tuple[float, ...] = tuple(
                ATTRIBUTES[n].initial for n in self._names)
        else:
            self._values = tuple(float(v) for v in values)
            if len(self._values) != len(self._names):
                raise PolicyError("metric vector length mismatch")

    @classmethod
    def _make(cls, names: Tuple[str, ...], values: Tuple[float, ...]) -> "MetricVector":
        """Internal fast constructor for already-validated name/value tuples.

        Probe processing builds one vector per hop; skipping re-validation of
        the (fixed) attribute names keeps that on the hot path budget.
        """
        vector = object.__new__(cls)
        vector._names = names
        vector._values = values
        return vector

    @property
    def names(self) -> Tuple[str, ...]:
        return self._names

    @property
    def values(self) -> Tuple[float, ...]:
        return self._values

    def get(self, name: str) -> float:
        """Value of one attribute; raises if the vector does not carry it."""
        try:
            return self._values[self._names.index(name)]
        except ValueError:
            raise PolicyError(f"metric vector {self} does not carry {name!r}") from None

    def as_dict(self) -> Dict[str, float]:
        return dict(zip(self._names, self._values))

    def extend(self, link_values: Mapping[str, float]) -> "MetricVector":
        """A new vector with every attribute extended by one link.

        ``link_values`` maps attribute name to the link's value (``count``
        attributes ignore it).  Missing link values default to 0.
        """
        new_values = tuple(
            ATTRIBUTES[name].extend(acc, float(link_values.get(name, 0.0)))
            for name, acc in zip(self._names, self._values))
        return MetricVector._make(self._names, new_values)

    def replace(self, name: str, value: float) -> "MetricVector":
        """A new vector with one attribute overwritten."""
        if name not in self._names:
            raise PolicyError(f"metric vector {self} does not carry {name!r}")
        values = [value if n == name else v for n, v in zip(self._names, self._values)]
        return MetricVector(self._names, values)

    def bits(self) -> int:
        """Wire size of this vector in bits (for overhead accounting)."""
        return sum(ATTRIBUTES[n].bits for n in self._names)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricVector):
            return NotImplemented
        return self._names == other._names and self._values == other._values

    def __hash__(self) -> int:
        return hash((self._names, self._values))

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={v:g}" for n, v in zip(self._names, self._values))
        return f"MetricVector({inner})"
