"""The Contra compiler: policy + topology → per-switch device programs (§4).

The compiler performs, in order:

1. **Policy analysis** — monotonicity check (loops die out, §5.1), isotonicity
   check and decomposition into isotonic subpolicies with separate probe ids
   (§3 challenge #3, §4).
2. **Product graph construction** — the policy's regexes are reversed,
   determinised, and combined with the topology (§4.1), then tags are
   minimised.
3. **Device configuration generation** — one :class:`DeviceConfig` per switch,
   containing the probe tag-transition table, multicast sets, acceptance
   signatures and sizing information (§4.2, §4.3).
4. **Protocol parameter selection** — a probe period of at least half the
   network's worst round-trip time (§5.2).

The output, :class:`CompiledPolicy`, is interpreted directly by the simulator
runtime (:mod:`repro.protocol`) and can be rendered to P4-style source with
:mod:`repro.core.p4gen`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core import ast
from repro.core.analysis.decomposition import Decomposition, decompose
from repro.core.analysis.isotonicity import IsotonicityResult, check_isotonicity
from repro.core.analysis.monotonicity import MonotonicityResult, check_monotonicity
from repro.core.device_config import DeviceConfig, TagInfo
from repro.core.product_graph import PGNode, ProductGraph, build_product_graph
from repro.core.rank import INFINITY, Rank
from repro.exceptions import CompilationError, PolicyAnalysisError
from repro.topology.graph import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.analysis.reachability import ReachabilityReport

__all__ = ["CompileOptions", "CompiledPolicy", "compile_policy"]


@dataclass(frozen=True)
class CompileOptions:
    """Knobs controlling compilation (all defaults match the paper's prototype)."""

    #: Run DFA minimisation on the policy automata.
    minimize_automata: bool = True
    #: Merge behaviourally equivalent product-graph nodes (fewer tags).
    minimize_tags: bool = True
    #: Raise if the policy is not provably monotone (otherwise only record it).
    strict_monotonicity: bool = True
    #: Flowlet-table slots provisioned per (tag, pid) on every switch.
    flowlet_slots: int = 256
    #: Loop-detection table slots on every switch.
    loop_table_slots: int = 256
    #: Multiplier applied to the measured worst-case RTT when choosing the
    #: probe period (must be >= 0.5 per §5.2).
    probe_period_rtt_multiplier: float = 0.5
    #: Drop dead product-graph states (unreachable from any probe origin, or
    #: never able to yield a finite rank) before generating device configs.
    #: Opt-in; the default-off path is byte-identical to earlier compilers.
    prune_unreachable: bool = False
    #: Run the lowered-table cross-checker as a post-compile assertion and
    #: raise :class:`~repro.exceptions.VerificationError` on any disagreement.
    verify: bool = False


@dataclass
class CompiledPolicy:
    """Everything the compiler produces for one (policy, topology) pair."""

    policy: ast.Policy
    topology: Topology
    options: CompileOptions
    decomposition: Decomposition
    monotonicity: MonotonicityResult
    isotonicity: IsotonicityResult
    product_graph: ProductGraph
    device_configs: Dict[str, DeviceConfig]
    #: Recommended probe period in milliseconds (>= 0.5 x worst RTT, §5.2).
    probe_period: float
    #: Wall-clock compile time in seconds (Figure 9).
    compile_time: float = 0.0
    #: Dead-state report when compiled with ``prune_unreachable=True``
    #: (None otherwise; the analysis is also available standalone via
    #: :func:`repro.core.analysis.analyze_reachability`).
    reachability: Optional["ReachabilityReport"] = None

    # ------------------------------------------------------------------ sizing

    def total_state_bytes(self) -> int:
        """Sum of the per-switch state estimates (Figure 10 reports the max)."""
        return sum(cfg.state_estimate().total_bytes for cfg in self.device_configs.values())

    def max_state_bytes(self) -> int:
        """The largest per-switch state estimate."""
        return max(cfg.state_estimate().total_bytes for cfg in self.device_configs.values())

    def max_state_kb(self) -> float:
        return self.max_state_bytes() / 1024.0

    @property
    def num_probe_ids(self) -> int:
        return self.decomposition.num_probes

    @property
    def carried_attrs(self) -> Tuple[str, ...]:
        return self.decomposition.carried_attrs

    def device(self, switch: str) -> DeviceConfig:
        try:
            return self.device_configs[switch]
        except KeyError:
            raise CompilationError(f"no device configuration for switch {switch!r}") from None

    def switch_ids(self) -> Dict[str, int]:
        """Dense, deterministic interning of every switch name to an integer id.

        The array probe plane indexes its per-switch FwdT snapshot arrays by
        (origin id, tag, pid); ids are assigned once per compiled policy in
        sorted-name order, so every switch — and every probe payload stamped
        at origination — agrees on the same interning for the lifetime of the
        compilation.  Cached (the switch set is immutable after compile).
        """
        ids = getattr(self, "_switch_ids", None)
        if ids is None:
            ids = {name: index for index, name in enumerate(sorted(self.device_configs))}
            self._switch_ids = ids
        return ids

    # ------------------------------------------------------- reference oracle

    def rank_of_path(
        self,
        path: Sequence[str],
        link_metrics: Callable[[str, str], Mapping[str, float]],
    ) -> Rank:
        """Evaluate the user policy on a concrete traffic path.

        ``link_metrics(a, b)`` returns the metric values of the directed link
        ``a -> b`` (e.g. ``{"util": 0.3, "lat": 0.05}``).  Used by tests and by
        the reference oracle below; the data plane never does this explicitly.
        """
        from repro.core.attributes import ATTRIBUTES

        metrics: Dict[str, float] = {}
        for name in self.carried_attrs or ("len",):
            metrics[name] = ATTRIBUTES[name].initial
        for a, b in zip(path, path[1:]):
            values = link_metrics(a, b)
            for name in list(metrics):
                metrics[name] = ATTRIBUTES[name].extend(metrics[name], float(values.get(name, 0.0)))
        metrics.setdefault("len", float(max(0, len(path) - 1)))
        regex_results = self.product_graph.traffic_path_acceptance(path)
        return self.policy.rank_path(path, metrics, regex_results)

    def reference_best_paths(
        self,
        src: str,
        dst: str,
        link_metrics: Callable[[str, str], Mapping[str, float]],
        cutoff: Optional[int] = None,
    ) -> Tuple[Rank, List[List[str]]]:
        """Exhaustive oracle: the optimal policy rank and all paths achieving it.

        Enumerates simple paths (exponential; only for tests and small
        topologies) and evaluates the policy on each.  The protocol's converged
        choice must match this oracle under stable metrics — that is the
        "Optimal" property in Figure 1.
        """
        best_rank = INFINITY
        best_paths: List[List[str]] = []
        for path in self.topology.all_simple_paths(src, dst, cutoff=cutoff):
            rank = self.rank_of_path(path, link_metrics)
            if rank < best_rank:
                best_rank = rank
                best_paths = [path]
            elif rank == best_rank and rank.is_finite:
                best_paths.append(path)
        return best_rank, best_paths

    def __repr__(self) -> str:
        return (f"CompiledPolicy(policy={self.policy.name!r}, "
                f"switches={len(self.device_configs)}, "
                f"pids={self.num_probe_ids}, pg_nodes={self.product_graph.num_nodes})")


def compile_policy(
    policy: ast.Policy,
    topology: Topology,
    options: Optional[CompileOptions] = None,
) -> CompiledPolicy:
    """Compile a policy for a topology into per-switch device configurations."""
    if options is None:
        options = CompileOptions()
    if not topology.switches:
        raise CompilationError("cannot compile for a topology without switches")

    started = time.perf_counter()

    monotonicity = check_monotonicity(policy)
    if options.strict_monotonicity and not monotonicity.is_monotone:
        raise PolicyAnalysisError(
            "policy is not monotone and strict_monotonicity is enabled: "
            + "; ".join(monotonicity.reasons))
    isotonicity = check_isotonicity(policy)
    decomposition = decompose(policy)

    product_graph = build_product_graph(
        topology,
        policy.regexes(),
        minimize_automata=options.minimize_automata,
        minimize_tags=options.minimize_tags,
    )

    reachability = None
    if options.prune_unreachable:
        # Lazy import: reachability depends on analysis internals that in
        # turn import nothing from the compiler, but keeping the default
        # compile path free of extra imports preserves its footprint.
        from repro.core.analysis.reachability import prune_dead_nodes

        reachability = prune_dead_nodes(policy, product_graph)

    device_configs = _generate_device_configs(policy, topology, product_graph, decomposition, options)

    probe_period = max(options.probe_period_rtt_multiplier, 0.5) * topology.max_rtt()
    if probe_period <= 0:
        probe_period = 0.25

    elapsed = time.perf_counter() - started
    compiled = CompiledPolicy(
        policy=policy,
        topology=topology,
        options=options,
        decomposition=decomposition,
        monotonicity=monotonicity,
        isotonicity=isotonicity,
        product_graph=product_graph,
        device_configs=device_configs,
        probe_period=probe_period,
        compile_time=elapsed,
        reachability=reachability,
    )
    if options.verify:
        # Lazy: the cross-checker reaches into the protocol layer, which the
        # core compiler must not import unconditionally.
        from repro.core.analysis.crosscheck import verify_lowered_tables

        verify_lowered_tables(compiled)
    return compiled


def _generate_device_configs(
    policy: ast.Policy,
    topology: Topology,
    product_graph: ProductGraph,
    decomposition: Decomposition,
    options: CompileOptions,
) -> Dict[str, DeviceConfig]:
    regexes = tuple(policy.regexes())
    carried = decomposition.carried_attrs
    network_size = len(topology.switches)
    configs: Dict[str, DeviceConfig] = {}

    for switch in topology.switches:
        local_nodes = product_graph.nodes_of_switch(switch)
        tags: Dict[int, TagInfo] = {}
        for node in local_nodes:
            tag = product_graph.tag_of(node)
            neighbors = tuple(sorted({succ.switch for succ in product_graph.successors(node)}))
            tags[tag] = TagInfo(
                tag=tag,
                states=node.states,
                acceptance=product_graph.acceptance(node),
                multicast_neighbors=neighbors,
            )

        probe_transition: Dict[Tuple[str, int], int] = {}
        for neighbor in topology.switch_neighbors(switch):
            for neighbor_node in product_graph.nodes_of_switch(neighbor):
                successor = product_graph.successor_at(neighbor_node, switch)
                if successor is None:
                    continue
                key = (neighbor, product_graph.tag_of(neighbor_node))
                probe_transition[key] = product_graph.tag_of(successor)

        origin_node = product_graph.probe_sending_nodes[switch]
        configs[switch] = DeviceConfig(
            switch=switch,
            regexes=regexes,
            tags=tags,
            probe_transition=probe_transition,
            probe_origin_tag=product_graph.tag_of(origin_node),
            carried_attrs=carried,
            num_probe_ids=max(1, decomposition.num_probes),
            network_size=network_size,
            flowlet_slots=options.flowlet_slots,
            loop_table_slots=options.loop_table_slots,
        )
    return configs
