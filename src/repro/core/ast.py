"""Abstract syntax tree for the Contra policy language (Figure 2).

A policy is ``minimize(e)`` where ``e`` ranks paths::

    e ::= n | ∞ | path.attr | e1 ∘ e2 | if b then e1 else e2 | (e1, ..., en)
    b ::= r | e1 <= e2 | not b | b1 or b2 | b1 and b2
    r ::= node | . | r1 + r2 | r1 r2 | r*

Expressions evaluate to :class:`~repro.core.rank.Rank` values given a
:class:`PathContext` — a concrete path plus its accumulated metric values.
The same AST is consumed by the static analyses (monotonicity, isotonicity,
decomposition) and by the compiler.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.attributes import ATTRIBUTES, attribute
from repro.core.rank import INFINITY, Rank
from repro.core.regex import PathRegex
from repro.exceptions import PolicyError

__all__ = [
    "PathContext",
    "Expr", "Const", "Infinite", "Attr", "BinOp", "If", "TupleExpr",
    "BoolExpr", "RegexTest", "Compare", "Not", "And", "Or", "BoolConst",
    "Policy", "Minimize",
]


class PathContext:
    """Everything needed to evaluate a policy on one concrete path.

    Parameters
    ----------
    path:
        The sequence of switch identifiers the traffic traverses, in traffic
        direction (source first, destination last).
    metrics:
        Accumulated path metric values by attribute name (e.g. ``{"util":
        0.3, "lat": 1.2, "len": 3}``).  Missing attributes are derived when
        possible (``len`` defaults to the number of links in ``path``).
    regex_results:
        Optional pre-computed regex outcomes; when provided they take priority
        over direct matching (the compiler uses this to evaluate policies from
        product-graph tags without re-running the regex).
    """

    def __init__(
        self,
        path: Sequence[str],
        metrics: Optional[Mapping[str, float]] = None,
        regex_results: Optional[Mapping[PathRegex, bool]] = None,
    ):
        self.path: Tuple[str, ...] = tuple(path)
        self._metrics: Dict[str, float] = dict(metrics or {})
        if "len" not in self._metrics and self.path:
            self._metrics["len"] = float(max(0, len(self.path) - 1))
        self._regex_results = dict(regex_results or {})

    def metric(self, name: str) -> float:
        attribute(name)  # validate
        try:
            return self._metrics[name]
        except KeyError:
            raise PolicyError(
                f"path context does not define metric {name!r} "
                f"(available: {sorted(self._metrics)})") from None

    def regex_matches(self, pattern: PathRegex) -> bool:
        if pattern in self._regex_results:
            return self._regex_results[pattern]
        return pattern.matches(self.path)


# =============================================================================
# Rank expressions
# =============================================================================

class Expr:
    """Base class of rank-valued policy expressions."""

    def evaluate(self, ctx: PathContext) -> Rank:
        """The rank of the path described by ``ctx``."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Direct rank-valued sub-expressions."""
        return ()

    def bool_children(self) -> Tuple["BoolExpr", ...]:
        """Direct boolean sub-expressions."""
        return ()

    def attributes(self) -> FrozenSet[str]:
        """All path attributes referenced anywhere in the expression."""
        result = set()
        for child in self.children():
            result |= child.attributes()
        for cond in self.bool_children():
            result |= cond.attributes()
        return frozenset(result)

    def regexes(self) -> Tuple[PathRegex, ...]:
        """All path regular expressions used, in syntactic order, de-duplicated."""
        found: List[PathRegex] = []
        for cond in self.bool_children():
            for r in cond.regexes():
                if r not in found:
                    found.append(r)
        for child in self.children():
            for r in child.regexes():
                if r not in found:
                    found.append(r)
        return tuple(found)

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))  # type: ignore[attr-defined]

    def _key(self):
        raise NotImplementedError


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """A constant numeric rank."""

    value: float

    def evaluate(self, ctx: PathContext) -> Rank:
        return Rank(self.value)

    def _key(self):
        return self.value

    def __str__(self) -> str:
        return f"{self.value:g}"


@dataclass(frozen=True, eq=False)
class Infinite(Expr):
    """The infinite rank ∞ ("path not allowed")."""

    def evaluate(self, ctx: PathContext) -> Rank:
        return INFINITY

    def _key(self):
        return "inf"

    def __str__(self) -> str:
        return "inf"


@dataclass(frozen=True, eq=False)
class Attr(Expr):
    """A dynamic path attribute such as ``path.util``."""

    name: str

    def __post_init__(self):
        attribute(self.name)  # validate eagerly

    def evaluate(self, ctx: PathContext) -> Rank:
        return Rank(ctx.metric(self.name))

    def attributes(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def _key(self):
        return self.name

    def __str__(self) -> str:
        return f"path.{self.name}"


_BINOPS: Dict[str, Callable[[Rank, Rank], Rank]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "max": lambda a, b: a.combine_max(b),
    "min": lambda a, b: a.combine_min(b),
}


@dataclass(frozen=True, eq=False)
class BinOp(Expr):
    """A binary operation between two rank expressions (``+``, ``-``, ``min``, ``max``)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _BINOPS:
            raise PolicyError(f"unsupported binary operator {self.op!r}; "
                              f"supported: {sorted(_BINOPS)}")

    def evaluate(self, ctx: PathContext) -> Rank:
        return _BINOPS[self.op](self.left.evaluate(ctx), self.right.evaluate(ctx))

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def _key(self):
        return (self.op, self.left, self.right)

    def __str__(self) -> str:
        if self.op in ("min", "max"):
            return f"{self.op}({self.left}, {self.right})"
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True, eq=False)
class If(Expr):
    """A conditional ``if b then e1 else e2``."""

    condition: "BoolExpr"
    then_branch: Expr
    else_branch: Expr

    def evaluate(self, ctx: PathContext) -> Rank:
        if self.condition.evaluate(ctx):
            return self.then_branch.evaluate(ctx)
        return self.else_branch.evaluate(ctx)

    def children(self) -> Tuple[Expr, ...]:
        return (self.then_branch, self.else_branch)

    def bool_children(self) -> Tuple["BoolExpr", ...]:
        return (self.condition,)

    def _key(self):
        return (self.condition, self.then_branch, self.else_branch)

    def __str__(self) -> str:
        return f"if {self.condition} then {self.then_branch} else {self.else_branch}"


@dataclass(frozen=True, eq=False)
class TupleExpr(Expr):
    """A lexicographically ordered tuple of rank expressions."""

    items: Tuple[Expr, ...]

    def __post_init__(self):
        if len(self.items) < 2:
            raise PolicyError("a tuple rank expression needs at least two components")

    def evaluate(self, ctx: PathContext) -> Rank:
        return Rank.tuple_of(item.evaluate(ctx) for item in self.items)

    def children(self) -> Tuple[Expr, ...]:
        return self.items

    def _key(self):
        return self.items

    def __str__(self) -> str:
        return "(" + ", ".join(str(i) for i in self.items) + ")"


# =============================================================================
# Boolean tests
# =============================================================================

class BoolExpr:
    """Base class of boolean policy tests."""

    def evaluate(self, ctx: PathContext) -> bool:
        raise NotImplementedError

    def attributes(self) -> FrozenSet[str]:
        return frozenset()

    def regexes(self) -> Tuple[PathRegex, ...]:
        return ()

    def children(self) -> Tuple["BoolExpr", ...]:
        return ()

    def expr_children(self) -> Tuple[Expr, ...]:
        return ()

    def __eq__(self, other: object) -> bool:
        return type(self) is type(other) and self._key() == other._key()  # type: ignore[attr-defined]

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._key()))  # type: ignore[attr-defined]

    def _key(self):
        raise NotImplementedError


@dataclass(frozen=True, eq=False)
class BoolConst(BoolExpr):
    """A boolean literal (used by the decomposition pass when fixing guards)."""

    value: bool

    def evaluate(self, ctx: PathContext) -> bool:
        return self.value

    def _key(self):
        return self.value

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True, eq=False)
class RegexTest(BoolExpr):
    """Does the path match a regular expression?"""

    pattern: PathRegex

    def evaluate(self, ctx: PathContext) -> bool:
        return ctx.regex_matches(self.pattern)

    def regexes(self) -> Tuple[PathRegex, ...]:
        return (self.pattern,)

    def _key(self):
        return self.pattern

    def __str__(self) -> str:
        return str(self.pattern)


_COMPARATORS: Dict[str, Callable[[Rank, Rank], bool]] = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}


@dataclass(frozen=True, eq=False)
class Compare(BoolExpr):
    """A comparison between two rank expressions (e.g. ``path.util < 0.8``)."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _COMPARATORS:
            raise PolicyError(f"unsupported comparison operator {self.op!r}")

    def evaluate(self, ctx: PathContext) -> bool:
        return _COMPARATORS[self.op](self.left.evaluate(ctx), self.right.evaluate(ctx))

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def regexes(self) -> Tuple[PathRegex, ...]:
        return tuple(list(self.left.regexes()) + [r for r in self.right.regexes()
                                                  if r not in self.left.regexes()])

    def expr_children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def _key(self):
        return (self.op, self.left, self.right)

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True, eq=False)
class Not(BoolExpr):
    """Boolean negation."""

    inner: BoolExpr

    def evaluate(self, ctx: PathContext) -> bool:
        return not self.inner.evaluate(ctx)

    def attributes(self) -> FrozenSet[str]:
        return self.inner.attributes()

    def regexes(self) -> Tuple[PathRegex, ...]:
        return self.inner.regexes()

    def children(self) -> Tuple[BoolExpr, ...]:
        return (self.inner,)

    def _key(self):
        return (self.inner,)

    def __str__(self) -> str:
        return f"not ({self.inner})"


@dataclass(frozen=True, eq=False)
class And(BoolExpr):
    """Boolean conjunction."""

    left: BoolExpr
    right: BoolExpr

    def evaluate(self, ctx: PathContext) -> bool:
        return self.left.evaluate(ctx) and self.right.evaluate(ctx)

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def regexes(self) -> Tuple[PathRegex, ...]:
        result = list(self.left.regexes())
        result.extend(r for r in self.right.regexes() if r not in result)
        return tuple(result)

    def children(self) -> Tuple[BoolExpr, ...]:
        return (self.left, self.right)

    def _key(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True, eq=False)
class Or(BoolExpr):
    """Boolean disjunction."""

    left: BoolExpr
    right: BoolExpr

    def evaluate(self, ctx: PathContext) -> bool:
        return self.left.evaluate(ctx) or self.right.evaluate(ctx)

    def attributes(self) -> FrozenSet[str]:
        return self.left.attributes() | self.right.attributes()

    def regexes(self) -> Tuple[PathRegex, ...]:
        result = list(self.left.regexes())
        result.extend(r for r in self.right.regexes() if r not in result)
        return tuple(result)

    def children(self) -> Tuple[BoolExpr, ...]:
        return (self.left, self.right)

    def _key(self):
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


# =============================================================================
# Policies
# =============================================================================

@dataclass(frozen=True, eq=False)
class Policy:
    """A complete Contra policy (currently always ``minimize``)."""

    expression: Expr
    name: str = "policy"

    def evaluate(self, ctx: PathContext) -> Rank:
        """The rank of one concrete path."""
        return self.expression.evaluate(ctx)

    def rank_path(
        self,
        path: Sequence[str],
        metrics: Optional[Mapping[str, float]] = None,
        regex_results: Optional[Mapping[PathRegex, bool]] = None,
    ) -> Rank:
        """Convenience wrapper: rank a path given its accumulated metric values."""
        return self.evaluate(PathContext(path, metrics, regex_results))

    def attributes(self) -> FrozenSet[str]:
        """All dynamic path attributes the policy depends on."""
        return self.expression.attributes()

    def regexes(self) -> Tuple[PathRegex, ...]:
        """All path regular expressions, in syntactic order."""
        return self.expression.regexes()

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Policy) and self.expression == other.expression

    def __hash__(self) -> int:
        return hash(self.expression)

    def __str__(self) -> str:
        return f"minimize({self.expression})"


def Minimize(expression: Expr, name: str = "policy") -> Policy:
    """Build a ``minimize`` policy (the only optimization direction in the paper)."""
    if not isinstance(expression, Expr):
        raise PolicyError(f"minimize() expects a rank expression, got {expression!r}")
    return Policy(expression, name=name)
