"""Contra's core contribution: the policy language, analyses and compiler."""

from repro.core.analysis import (
    Decomposition,
    IsotonicityResult,
    MonotonicityResult,
    SubPolicy,
    check_isotonicity,
    check_monotonicity,
    decompose,
)
from repro.core.ast import PathContext, Policy
from repro.core.attributes import ATTRIBUTES, MetricVector, PathAttribute
from repro.core.builder import if_, inf, matches, minimize, path, rank_tuple
from repro.core.compiler import CompiledPolicy, CompileOptions, compile_policy
from repro.core.device_config import DeviceConfig, StateEstimate, TagInfo
from repro.core.parser import parse_expression, parse_policy
from repro.core.product_graph import PGNode, ProductGraph, build_product_graph
from repro.core.rank import INFINITY, Rank
from repro.core.regex import PathRegex, parse_regex

__all__ = [
    "Policy",
    "PathContext",
    "Rank",
    "INFINITY",
    "MetricVector",
    "PathAttribute",
    "ATTRIBUTES",
    "PathRegex",
    "parse_regex",
    "parse_policy",
    "parse_expression",
    "minimize",
    "if_",
    "matches",
    "path",
    "inf",
    "rank_tuple",
    "check_monotonicity",
    "check_isotonicity",
    "decompose",
    "Decomposition",
    "SubPolicy",
    "MonotonicityResult",
    "IsotonicityResult",
    "ProductGraph",
    "PGNode",
    "build_product_graph",
    "DeviceConfig",
    "TagInfo",
    "StateEstimate",
    "CompiledPolicy",
    "CompileOptions",
    "compile_policy",
]
