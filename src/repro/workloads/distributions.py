"""Flow-size distributions.

The paper's FCT experiments replay two production workloads: the **web
search** workload of the DCTCP paper [11] and the **cache** workload measured
inside Facebook's datacenters [35].  The original traces are not available
offline, so this module ships synthetic empirical CDFs with the published
shapes (DESIGN.md §4):

* *web search* — heavy-tailed: over half the flows are small (< ~10 KB
  equivalents) but most bytes come from flows hundreds of packets long;
* *cache* — dominated by small object transfers of a few packets with a
  moderate tail.

Sizes are expressed in full-size packets (the simulator's unit).  Every
distribution exposes ``sample`` / ``mean`` and is deterministic given a
``numpy`` generator, so experiments are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.exceptions import WorkloadError

__all__ = [
    "EmpiricalCDF",
    "WEB_SEARCH_CDF",
    "CACHE_CDF",
    "web_search_distribution",
    "cache_distribution",
    "uniform_distribution",
    "distribution_by_name",
    "WORKLOAD_NAMES",
]


@dataclass(frozen=True)
class EmpiricalCDF:
    """A piecewise-linear inverse-CDF sampler over flow sizes (in packets)."""

    name: str
    #: (cumulative probability, flow size in packets) pairs, increasing in both.
    points: Tuple[Tuple[float, float], ...]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise WorkloadError(f"CDF {self.name!r} needs at least two points")
        previous_p, previous_size = -1.0, 0.0
        for probability, size in self.points:
            if probability <= previous_p or size < previous_size:
                raise WorkloadError(f"CDF {self.name!r} points must be increasing")
            previous_p, previous_size = probability, size
        if abs(self.points[-1][0] - 1.0) > 1e-9:
            raise WorkloadError(f"CDF {self.name!r} must end at probability 1.0")

    def sample(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Draw ``count`` flow sizes (packets, >= 1) by inverse-transform sampling."""
        uniforms = rng.random(count)
        probabilities = np.array([p for p, _ in self.points])
        sizes = np.array([s for _, s in self.points])
        sampled = np.interp(uniforms, probabilities, sizes)
        return np.maximum(1, np.round(sampled)).astype(int)

    def mean(self) -> float:
        """The expected flow size (packets) under the piecewise-linear CDF."""
        total = 0.0
        for (p0, s0), (p1, s1) in zip(self.points, self.points[1:]):
            total += (p1 - p0) * (s0 + s1) / 2.0
        return max(1.0, total)

    def quantile(self, probability: float) -> float:
        probabilities = [p for p, _ in self.points]
        sizes = [s for _, s in self.points]
        return float(np.interp(probability, probabilities, sizes))


#: DCTCP-style web search workload: ~50% of flows under 7 packets but a heavy
#: tail reaching ~20000 packets (~30 MB at 1500 B/packet, scaled shape).
WEB_SEARCH_CDF = EmpiricalCDF("web_search", (
    (0.0, 1),
    (0.15, 2),
    (0.30, 4),
    (0.50, 7),
    (0.60, 14),
    (0.70, 34),
    (0.80, 134),
    (0.90, 667),
    (0.95, 1340),
    (0.99, 4500),
    (1.00, 20000),
))

#: Facebook cache-follower workload: dominated by small object reads with a
#: moderate tail (largest flows a few hundred packets).
CACHE_CDF = EmpiricalCDF("cache", (
    (0.0, 1),
    (0.50, 2),
    (0.70, 3),
    (0.80, 5),
    (0.90, 10),
    (0.95, 30),
    (0.99, 120),
    (1.00, 400),
))


def web_search_distribution(scale: float = 1.0) -> EmpiricalCDF:
    """The web-search CDF, optionally scaled (smaller scale = faster experiments)."""
    return _scaled(WEB_SEARCH_CDF, scale)


def cache_distribution(scale: float = 1.0) -> EmpiricalCDF:
    """The cache CDF, optionally scaled."""
    return _scaled(CACHE_CDF, scale)


def uniform_distribution(low: int = 1, high: int = 20, name: str = "uniform") -> EmpiricalCDF:
    """A simple uniform flow-size distribution (used by tests and examples)."""
    if low < 1 or high < low:
        raise WorkloadError("uniform distribution requires 1 <= low <= high")
    return EmpiricalCDF(name, ((0.0, low), (1.0, high)))


def _scaled(cdf: EmpiricalCDF, scale: float) -> EmpiricalCDF:
    if scale <= 0:
        raise WorkloadError("scale must be positive")
    if scale == 1.0:
        return cdf
    points = tuple((p, max(1.0, round(s * scale))) for p, s in cdf.points)
    # Re-normalise monotonicity after rounding small sizes.
    fixed: List[Tuple[float, float]] = []
    last_size = 0.0
    for probability, size in points:
        size = max(size, last_size)
        fixed.append((probability, size))
        last_size = size
    return EmpiricalCDF(f"{cdf.name}-x{scale:g}", tuple(fixed))


WORKLOAD_NAMES = ("web_search", "cache", "uniform")


def distribution_by_name(name: str, scale: float = 1.0) -> EmpiricalCDF:
    """Look up a named flow-size distribution, scaled by ``scale``.

    ``web_search`` and ``cache`` are the paper's workloads; ``uniform`` is the
    flat sensitivity distribution (sizes 1..20 packets at scale 1.0, the upper
    bound scaling with ``scale``).
    """
    if name == "web_search":
        return web_search_distribution(scale)
    if name == "cache":
        return cache_distribution(scale)
    if name == "uniform":
        return _scaled(uniform_distribution(), scale)
    raise WorkloadError(f"unknown workload {name!r}; available: {WORKLOAD_NAMES}")
