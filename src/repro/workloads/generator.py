"""Workload generation: Poisson flow arrivals tuned to a target network load.

The FCT experiments sweep "network load" from 10% to 90% (§6.3): the offered
load is the fraction of the senders' access-link capacity consumed by the
generated flows.  Given a flow-size distribution with mean ``m`` packets and a
host link capacity of ``C`` packets/ms, a per-sender arrival rate of
``load * C / m`` flows/ms achieves that offered load; arrivals are Poisson
(exponential inter-arrival times), matching standard datacenter workload
methodology.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import WorkloadError
from repro.simulator.flow import Flow
from repro.topology.graph import Topology
from repro.workloads.distributions import EmpiricalCDF

__all__ = [
    "WorkloadSpec",
    "FlowStream",
    "generate_workload",
    "stream_workload",
    "split_senders_receivers",
    "random_pairs",
    "incast_pairs",
    "permutation_pairs",
]


@dataclass
class WorkloadSpec:
    """A fully described workload: who sends to whom, how much, and when."""

    flows: List[Flow]
    senders: List[str]
    receivers: List[str]
    target_load: float
    duration: float
    distribution_name: str

    @property
    def total_packets(self) -> int:
        return sum(f.size_packets for f in self.flows)

    def offered_load(self, host_capacity: float) -> float:
        """The realised offered load as a fraction of sender capacity."""
        if not self.senders or self.duration <= 0:
            return 0.0
        capacity_packets = len(self.senders) * host_capacity * self.duration
        return self.total_packets / capacity_packets if capacity_packets else 0.0


class FlowStream:
    """A lazily generated workload: flows arrive as a time-ordered iterator.

    The streaming counterpart of :class:`WorkloadSpec` for million-flow fluid
    scenarios — the full flow list is never materialized.  Iterating yields
    :class:`~repro.simulator.flow.Flow` objects in non-decreasing
    ``start_time`` order with sequential ``flow_id``s; each iteration (and the
    ``flows`` property) builds a fresh generator, so a stream can drive any
    number of runs with identical flows.
    """

    def __init__(self, senders: List[str], receivers: List[str],
                 target_load: float, duration: float, distribution_name: str,
                 factory: Callable[[], Iterator[Flow]]):
        self.senders = senders
        self.receivers = receivers
        self.target_load = target_load
        self.duration = duration
        self.distribution_name = distribution_name
        self._factory = factory

    def __iter__(self) -> Iterator[Flow]:
        return self._factory()

    @property
    def flows(self) -> Iterator[Flow]:
        """A fresh arrival-ordered flow iterator (mirrors ``WorkloadSpec.flows``)."""
        return self._factory()


#: Draws per substream refill in :func:`stream_workload`.  Purely an
#: amortization knob: the generated flows are identical for every chunk size.
_STREAM_CHUNK = 1024


def stream_workload(
    topology: Topology,
    distribution: EmpiricalCDF,
    load: float,
    duration: float,
    host_capacity: float = 10.0,
    seed: int = 0,
    senders: Optional[Sequence[str]] = None,
    receivers: Optional[Sequence[str]] = None,
    pair_senders_receivers: bool = False,
    start_after: float = 0.0,
    chunk: int = _STREAM_CHUNK,
) -> FlowStream:
    """The lazy/chunked counterpart of :func:`generate_workload`.

    Same Poisson arrival process and parameters, O(senders) memory: each
    sender owns three substreams (inter-arrival gaps, destinations, sizes)
    seeded ``(seed, sender_index, field)`` and refilled ``chunk`` draws at a
    time; the per-sender streams are lazily merged by
    ``(start_time, sender_index, seq)``.  Every flow is a pure function of
    the arguments — numpy's batched draws consume the bit stream exactly like
    repeated single draws, so ``chunk`` never changes the workload.

    The draw necessarily differs from :func:`generate_workload`'s single
    shared generator (its across-sender interleaving cannot be replayed
    without materializing every sender's arrivals), so the two paths produce
    statistically equivalent but not flow-identical workloads.  Packet-level
    scenarios keep the eager path; the fluid plane switches to this one when
    the expected flow count would make the eager list a memory hazard.
    """
    if not 0.0 < load <= 1.5:
        raise WorkloadError(f"load must be in (0, 1.5], got {load}")
    if duration <= 0:
        raise WorkloadError("duration must be positive")
    if chunk < 1:
        raise WorkloadError("chunk must be positive")

    if senders is None or receivers is None:
        default_senders, default_receivers = split_senders_receivers(topology)
        senders = list(senders) if senders is not None else default_senders
        receivers = list(receivers) if receivers is not None else default_receivers
    senders = list(senders)
    receivers = list(receivers)
    if pair_senders_receivers and len(senders) != len(receivers):
        raise WorkloadError("paired workloads need equally many senders and receivers")
    for index, sender in enumerate(senders):
        options = [receivers[index]] if pair_senders_receivers \
            else [r for r in receivers if r != sender]
        if not options:
            raise WorkloadError(f"sender {sender!r} has no eligible receiver")

    per_sender_rate = load * host_capacity / distribution.mean()
    end = start_after + duration

    def sender_stream(index: int, sender: str):
        gap_rng = np.random.default_rng((seed, index, 0))
        size_rng = np.random.default_rng((seed, index, 1))
        if pair_senders_receivers:
            options = [receivers[index]]
            dst_rng = None
        else:
            options = [r for r in receivers if r != sender]
            dst_rng = np.random.default_rng((seed, index, 2))
        time = start_after
        seq = 0
        while True:
            gaps = gap_rng.exponential(1.0 / per_sender_rate, chunk)
            sizes = distribution.sample(size_rng, chunk)
            picks = dst_rng.integers(0, len(options), chunk) \
                if dst_rng is not None else None
            for draw in range(chunk):
                time += float(gaps[draw])
                if time >= end:
                    return
                receiver = options[int(picks[draw])] if picks is not None \
                    else options[0]
                yield (time, index, seq, sender, receiver, int(sizes[draw]))
                seq += 1

    def merged() -> Iterator[Flow]:
        streams = [sender_stream(index, sender)
                   for index, sender in enumerate(senders)]
        for flow_id, (time, _index, _seq, src, dst, size) in enumerate(
                heapq.merge(*streams)):
            yield Flow(src_host=src, dst_host=dst, size_packets=size,
                       start_time=time, flow_id=flow_id)

    return FlowStream(
        senders=senders,
        receivers=receivers,
        target_load=load,
        duration=duration,
        distribution_name=distribution.name,
        factory=merged,
    )


def split_senders_receivers(topology: Topology) -> Tuple[List[str], List[str]]:
    """The paper's default host split: half the hosts send, the other half receive.

    Hosts are interleaved so that senders and receivers are spread across edge
    switches rather than clustered on one side of the fabric.
    """
    hosts = topology.hosts
    if len(hosts) < 2:
        raise WorkloadError("need at least two hosts to generate traffic")
    senders = hosts[0::2]
    receivers = hosts[1::2]
    if not receivers:
        receivers = [hosts[-1]]
    return senders, receivers


def random_pairs(topology: Topology, pairs: int, seed: int = 0,
                 distinct_switches: bool = True) -> Tuple[List[str], List[str]]:
    """Randomly chosen sender/receiver host pairs (the Abilene experiment uses 4)."""
    rng = np.random.default_rng(seed)
    hosts = topology.hosts
    if len(hosts) < 2:
        raise WorkloadError("need at least two hosts to pick pairs")
    senders: List[str] = []
    receivers: List[str] = []
    attempts = 0
    while len(senders) < pairs and attempts < 1000:
        attempts += 1
        a, b = rng.choice(hosts, size=2, replace=False)
        if distinct_switches and topology.attachment_switch(a) == topology.attachment_switch(b):
            continue
        senders.append(str(a))
        receivers.append(str(b))
    if len(senders) < pairs:
        raise WorkloadError(f"could not find {pairs} host pairs on distinct switches")
    return senders, receivers


def incast_pairs(
    topology: Topology,
    receiver: Optional[str] = None,
    fanin: Optional[int] = None,
    seed: int = 0,
) -> Tuple[List[str], List[str]]:
    """N-to-1 fan-in pairing: every sender targets the same receiver host.

    The returned lists are positionally paired (use
    ``pair_senders_receivers=True``): the receiver list repeats the single
    sink once per sender.  ``receiver=None`` picks a sink deterministically
    from ``seed``; ``fanin=None`` uses every other host as a sender, otherwise
    ``fanin`` senders are drawn (seed-deterministically) without replacement.
    """
    hosts = topology.hosts
    if len(hosts) < 2:
        raise WorkloadError("need at least two hosts for incast traffic")
    rng = np.random.default_rng(seed)
    if receiver is None:
        receiver = str(rng.choice(hosts))
    elif receiver not in hosts:
        raise WorkloadError(f"incast receiver {receiver!r} is not a host")
    candidates = [h for h in hosts if h != receiver]
    if fanin is None:
        senders = candidates
    else:
        if not 1 <= fanin <= len(candidates):
            raise WorkloadError(
                f"incast fan-in must be in [1, {len(candidates)}], got {fanin}")
        senders = [str(h) for h in rng.choice(candidates, size=fanin, replace=False)]
    return senders, [receiver] * len(senders)


def permutation_pairs(topology: Topology, seed: int = 0) -> Tuple[List[str], List[str]]:
    """Random derangement pairing: every host sends to exactly one other host.

    A seed-deterministic permutation of the hosts with fixed points repaired
    by swapping, so no host ever sends to itself and every host receives from
    exactly one sender (use ``pair_senders_receivers=True``).
    """
    hosts = topology.hosts
    if len(hosts) < 2:
        raise WorkloadError("need at least two hosts for permutation traffic")
    rng = np.random.default_rng(seed)
    perm = [int(i) for i in rng.permutation(len(hosts))]
    for i in range(len(perm)):
        if perm[i] == i:
            j = (i + 1) % len(perm)
            perm[i], perm[j] = perm[j], perm[i]
    return list(hosts), [hosts[p] for p in perm]


def generate_workload(
    topology: Topology,
    distribution: EmpiricalCDF,
    load: float,
    duration: float,
    host_capacity: float = 10.0,
    seed: int = 0,
    senders: Optional[Sequence[str]] = None,
    receivers: Optional[Sequence[str]] = None,
    pair_senders_receivers: bool = False,
    max_flows: Optional[int] = None,
    start_after: float = 0.0,
) -> WorkloadSpec:
    """Generate Poisson flow arrivals achieving ``load`` over ``duration`` ms.

    Parameters
    ----------
    load:
        Target offered load as a fraction of the senders' access capacity
        (0 < load <= 1.5; the paper sweeps 0.1–0.9, and moderate
        overload points up to 1.5 are accepted for stress scenarios).
        The load describes the *arrival process* only — how the offered
        work actually drains depends on the hosts' transport mode
        (``fixed`` blasts a full window at flow start; ``slowstart`` /
        ``paced`` ramp via the congestion window — see
        :mod:`repro.simulator.flow`), and delivered work is reported as
        goodput (unique segments), never inflated by retransmitted
        duplicates.
    pair_senders_receivers:
        When True, sender ``i`` only talks to receiver ``i`` (the Abilene
        four-pair setup); otherwise destinations are drawn uniformly from the
        receiver set (the fat-tree setup).
    max_flows:
        Optional safety cap on the number of generated flows.
    start_after:
        Warm-up delay in milliseconds: the first flow of every sender arrives
        after this time, giving the routing protocol time to converge before
        traffic is measured.  Arrivals then span
        ``[start_after, start_after + duration)``.
    """
    if not 0.0 < load <= 1.5:
        raise WorkloadError(f"load must be in (0, 1.5], got {load}")
    if duration <= 0:
        raise WorkloadError("duration must be positive")

    if senders is None or receivers is None:
        default_senders, default_receivers = split_senders_receivers(topology)
        senders = list(senders) if senders is not None else default_senders
        receivers = list(receivers) if receivers is not None else default_receivers
    senders = list(senders)
    receivers = list(receivers)
    if pair_senders_receivers and len(senders) != len(receivers):
        raise WorkloadError("paired workloads need equally many senders and receivers")

    rng = np.random.default_rng(seed)
    mean_size = distribution.mean()
    per_sender_rate = load * host_capacity / mean_size  # flows per ms

    flows: List[Flow] = []
    for index, sender in enumerate(senders):
        time = start_after
        while True:
            time += float(rng.exponential(1.0 / per_sender_rate))
            if time >= start_after + duration:
                break
            if pair_senders_receivers:
                receiver = receivers[index]
            else:
                receiver = str(rng.choice([r for r in receivers if r != sender]))
            size = int(distribution.sample(rng, 1)[0])
            flows.append(Flow(src_host=sender, dst_host=receiver,
                              size_packets=size, start_time=time))
            if max_flows is not None and len(flows) >= max_flows:
                break
        if max_flows is not None and len(flows) >= max_flows:
            break

    flows.sort(key=lambda f: f.start_time)
    # Re-assign flow ids in arrival order: ids seed the stable flow hash that
    # drives ECMP/flowlet placement, so they must be a deterministic function
    # of the workload parameters, not of a process-global counter.
    for index, flow in enumerate(flows):
        flow.flow_id = index
    return WorkloadSpec(
        flows=flows,
        senders=senders,
        receivers=receivers,
        target_load=load,
        duration=duration,
        distribution_name=distribution.name,
    )
