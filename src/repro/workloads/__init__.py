"""Workload substrate: flow-size distributions and load-targeted generators."""

from repro.workloads.distributions import (
    CACHE_CDF,
    WEB_SEARCH_CDF,
    WORKLOAD_NAMES,
    EmpiricalCDF,
    cache_distribution,
    distribution_by_name,
    uniform_distribution,
    web_search_distribution,
)
from repro.workloads.generator import (
    FlowStream,
    WorkloadSpec,
    generate_workload,
    incast_pairs,
    permutation_pairs,
    random_pairs,
    split_senders_receivers,
    stream_workload,
)

__all__ = [
    "EmpiricalCDF",
    "WEB_SEARCH_CDF",
    "CACHE_CDF",
    "WORKLOAD_NAMES",
    "web_search_distribution",
    "cache_distribution",
    "uniform_distribution",
    "distribution_by_name",
    "WorkloadSpec",
    "FlowStream",
    "generate_workload",
    "stream_workload",
    "split_senders_receivers",
    "random_pairs",
    "incast_pairs",
    "permutation_pairs",
]
