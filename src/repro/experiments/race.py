"""Same-tick race detector: seeded permutations of commutable event orders.

The engine's determinism contract (ARCHITECTURE.md §6) divides same-timestamp
event ordering into *contractual* orders — batch-lane FIFO registration
order, sequence-number tie-breaking, per-(link, tick) probe runs — and
*free* orders: the relative firing order of independent periodic rounds
(probe origination vs failure checking) and the per-switch iteration order
inside a failure-check round.  A summary that changes when only free orders
change is a hidden order dependence — exactly the bug class the batched
probe plane (PR 5) had to debug by hand.

``contra race-check <scenario> [--seeds N]`` re-runs grid points under
seeded permutations of those free orders only:

* **heap axis** — the :class:`~repro.simulator.sanitizer.SanitizingSimulator`
  run loop swaps adjacent same-timestamp firings of rounds the routing
  system declares commutable (``RoutingSystem.commutable_rounds``), with
  probability ½ per adjacency under a seeded RNG;
* **round axis** — ``_failure_check_all`` shuffles its per-switch iteration
  order under the same RNG.

Each permuted run's full summary is diffed against the unpermuted baseline;
any divergent key is reported, and the run is repeated with schedule tracing
to name the provenance tags at the first point where the two schedules
disagree.  Runs execute under the sanitizer in collect mode, so invariant
violations surface in the same report instead of aborting the sweep.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.registry import SCENARIOS, GridScenario, scenario_names
from repro.experiments.runner import RunContext, RunResult, ScenarioSpec
from repro.simulator.network import Network

__all__ = ["RaceDivergence", "RaceReport", "install_race", "race_check",
           "RACE_FAST_SCENARIOS"]

#: The fast registry scenarios CI sweeps (small grids, seconds per point).
RACE_FAST_SCENARIOS: Tuple[str, ...] = ("fig13", "recovery-sweep")


@dataclass
class RaceDivergence:
    """One grid point whose summary changed under a permutation seed."""

    point: str
    permute_seed: int
    divergent_keys: List[str]
    #: Where the schedules first disagree: trace index, time, and the
    #: provenance tags on each side (None when the traces never diverged —
    #: the order dependence is inside a single callback).
    first_divergence: Optional[Dict[str, Any]] = None

    def render(self) -> str:
        lines = [f"{self.point} permute_seed={self.permute_seed}: "
                 f"divergent keys {self.divergent_keys}"]
        if self.first_divergence is not None:
            d = self.first_divergence
            lines.append(
                f"    first schedule divergence at event #{d['index']}: "
                f"base {d['base']} vs permuted {d['permuted']}")
        return "\n".join(lines)

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "point": self.point,
            "permute_seed": self.permute_seed,
            "divergent_keys": list(self.divergent_keys),
            "first_divergence": self.first_divergence,
        }


@dataclass
class RaceReport:
    """Outcome of a race-check sweep over one scenario's grid."""

    scenario: str
    seeds: int
    points_checked: int = 0
    runs: int = 0
    divergences: List[RaceDivergence] = field(default_factory=list)
    problems: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.problems

    def __bool__(self) -> bool:
        return self.ok

    def to_json_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seeds": self.seeds,
            "points_checked": self.points_checked,
            "runs": self.runs,
            "ok": self.ok,
            "divergences": [d.to_json_dict() for d in self.divergences],
            "problems": list(self.problems),
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = [f"race-check {self.scenario}: {self.points_checked} point(s) "
                 f"x {self.seeds} seed(s), {self.runs} permuted run(s): "
                 + ("OK" if self.ok
                    else f"{len(self.divergences)} divergence(s), "
                         f"{len(self.problems)} problem(s)")]
        lines.extend("  DIVERGENCE: " + d.render() for d in self.divergences)
        lines.extend(f"  PROBLEM: {p}" for p in self.problems)
        lines.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(lines)


def install_race(network: Network, permute_seed: int) -> None:
    """Arm the permutation hooks on a freshly built sanitized network.

    One seeded RNG drives both permutation axes, so a (scenario point,
    seed) pair is fully deterministic — a divergence always reproduces.
    """
    sanitizer = network.sanitizer
    if sanitizer is None:
        raise ExperimentError(
            "race permutations need a sanitized network (the permuting run "
            "loop lives in SanitizingSimulator); build with sanitize=True")
    rng = random.Random(f"race-{permute_seed}")
    system = network.routing_system
    commutable = frozenset(
        getattr(type(system), name)
        for name in getattr(system, "commutable_rounds", ()))
    system.race_rng = rng
    sanitizer.race_rng = rng
    sanitizer.race_commutable = commutable


def _point_label(spec: ScenarioSpec) -> str:
    return (f"{spec.name}/{spec.system} load={spec.load} seed={spec.seed}")


def _run_point(spec: ScenarioSpec, permute_seed: Optional[int],
               trace: bool) -> Tuple[RunResult, Any]:
    """One sanitized run of a grid point, optionally permuted and traced."""
    captured: Dict[str, Any] = {}
    context = RunContext(sanitize=True)

    def hook(network: Network) -> None:
        sanitizer = network.sanitizer
        assert sanitizer is not None
        sanitizer.mode = "collect"      # diff complete runs, don't abort
        sanitizer.trace_enabled = trace
        if permute_seed is not None:
            install_race(network, permute_seed)
        captured["sanitizer"] = sanitizer

    context.network_hook = hook
    result = context.run(spec)
    return result, captured.get("sanitizer")


def _canon(value: Any) -> str:
    """Serialized form for comparison — the byte-identity the repo promises.

    Plain ``!=`` would flag every NaN-valued key (``nan != nan``); the
    determinism contract is about the *serialized* summary, where NaN has
    one spelling.
    """
    return json.dumps(value, sort_keys=True, default=str)


def _diff_result(base: RunResult, permuted: RunResult) -> List[str]:
    keys: List[str] = []
    all_keys = sorted(set(base.summary) | set(permuted.summary))
    keys.extend(k for k in all_keys
                if _canon(base.summary.get(k)) != _canon(permuted.summary.get(k)))
    if _canon(base.queue_cdf) != _canon(permuted.queue_cdf):
        keys.append("queue_cdf")
    if _canon(base.throughput) != _canon(permuted.throughput):
        keys.append("throughput")
    return keys


def _first_trace_divergence(spec: ScenarioSpec,
                            permute_seed: int) -> Optional[Dict[str, Any]]:
    """Re-run base + permuted with tracing; locate the first schedule split."""
    _, base_san = _run_point(spec, None, trace=True)
    _, perm_san = _run_point(spec, permute_seed, trace=True)
    if base_san is None or perm_san is None:
        return None
    base_trace, perm_trace = base_san.trace, perm_san.trace
    for index, (b, p) in enumerate(zip(base_trace, perm_trace)):
        if b != p:
            return {
                "index": index,
                "base": {"time": b[0], "tag": list(b[1])},
                "permuted": {"time": p[0], "tag": list(p[1])},
            }
    if len(base_trace) != len(perm_trace):
        index = min(len(base_trace), len(perm_trace))
        longer = base_trace if len(base_trace) > len(perm_trace) else perm_trace
        side = "base" if longer is base_trace else "permuted"
        return {
            "index": index,
            "base": None,
            "permuted": None,
            "extra_side": side,
            "extra": {"time": longer[index][0], "tag": list(longer[index][1])},
        }
    return None


def _note_violations(report: RaceReport, point: str, label: str,
                     sanitizer: Any) -> None:
    if sanitizer is None:
        return
    for violation in sanitizer.violations:
        report.problems.append(
            f"{point} ({label}): sanitizer violation {violation.render()}")


def race_check(name: str, config: ExperimentConfig, seeds: int = 2,
               points: Optional[int] = None) -> RaceReport:
    """Race-check one grid scenario: permute free orders, diff summaries.

    ``seeds`` permutation seeds per grid point; ``points`` caps how many of
    the scenario's specs are swept (None = all).  Serial by construction —
    each permuted run must see exactly one RNG stream.
    """
    entry = SCENARIOS.get(name)
    if entry is None:
        raise ExperimentError(
            f"unknown scenario {name!r}; available: {scenario_names()}")
    if not isinstance(entry, GridScenario):
        raise ExperimentError(
            f"scenario {name!r} is not a single spec grid; race-check needs "
            f"a GridScenario")
    if seeds < 1:
        raise ExperimentError(f"race-check needs at least one seed, got {seeds}")
    specs = entry.build_specs(config)
    if points is not None:
        specs = specs[:points]
    report = RaceReport(scenario=name, seeds=seeds)
    for spec in specs:
        point = _point_label(spec)
        base, base_san = _run_point(spec, None, trace=False)
        report.points_checked += 1
        _note_violations(report, point, "baseline", base_san)
        for permute_seed in range(seeds):
            permuted, perm_san = _run_point(spec, permute_seed, trace=False)
            report.runs += 1
            _note_violations(report, point, f"permute_seed={permute_seed}",
                             perm_san)
            divergent = _diff_result(base, permuted)
            if divergent:
                report.divergences.append(RaceDivergence(
                    point=point,
                    permute_seed=permute_seed,
                    divergent_keys=divergent,
                    first_divergence=_first_trace_divergence(spec, permute_seed),
                ))
    return report
