"""Textual report formatting.

The benchmark harness prints the same rows/series the paper reports; these
helpers format experiment results as aligned text tables so that benchmark
output, EXPERIMENTS.md and the CLI all show identical content.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = [
    "format_table",
    "format_scalability",
    "format_fct",
    "format_queue_cdf",
    "format_recovery",
    "format_recovery_sweep",
    "format_recovery_curve",
    "format_grid",
    "format_flow_size",
    "format_overhead",
    "format_ablation",
    "format_transport",
    "format_fidelity",
    "format_fluid_million",
]


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned, pipe-separated text table."""
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_scalability(points, title: str = "Figure 9/10: compiler scalability") -> str:
    rows = [(p.family, p.size, p.actual_switches, p.policy, p.compile_time_s,
             p.max_state_kb, p.pg_nodes, p.num_probe_ids) for p in points]
    return format_table(
        ("family", "size", "switches", "policy", "compile_s", "state_kB", "pg_nodes", "pids"),
        rows, title=title)


def format_fct(points, title: str = "Average flow completion time (ms)") -> str:
    rows = [(p.workload, f"{round(p.load * 100)}%", p.system, p.avg_fct_ms, p.p99_fct_ms,
             f"{p.completed}/{p.flows}", p.drops, p.loop_fraction) for p in points]
    return format_table(
        ("workload", "load", "system", "avg_fct_ms", "p99_fct_ms", "completed", "drops", "loops"),
        rows, title=title)


def format_queue_cdf(cdfs: Mapping[str, Mapping[float, float]],
                     title: str = "Figure 13: queue length CDF (packets)") -> str:
    points = sorted(next(iter(cdfs.values())).keys()) if cdfs else []
    headers = ["system"] + [f"p{int(p * 100)}" for p in points]
    rows = [[system] + [cdf[p] for p in points] for system, cdf in cdfs.items()]
    return format_table(headers, rows, title=title)


def format_recovery(results: Mapping[str, object],
                    title: str = "Figure 14: link-failure recovery") -> str:
    rows = []
    for system, result in results.items():
        rows.append((system, result.baseline_rate, result.dip_delay,
                     result.recovery_delay, result.failure_detections))
    return format_table(
        ("system", "baseline_rate", "dip_after_ms", "recovered_after_ms", "failure_detections"),
        rows, title=title)


def format_recovery_sweep(results: Mapping[str, object],
                          title: str = "Recovery sweep: fail -> recover cycle") -> str:
    rows = []
    for system, result in results.items():
        rows.append((system, result.fail_time, result.recover_time,
                     result.baseline_rate, result.dip_delay,
                     result.post_recovery_rate, result.recovery_ratio))
    return format_table(
        ("system", "fail_ms", "recover_ms", "baseline_rate", "dip_after_ms",
         "post_recovery_rate", "recovery_ratio"),
        rows, title=title)


def format_recovery_curve(points,
                          title: str = "Recovery curve: outage duration sweep "
                                       "(leaf-spine fail -> recover)") -> str:
    """Rows over :class:`~repro.experiments.failure_recovery.RecoveryCurvePoint`\\ s."""
    rows = [(p.system, p.outage_ms, p.baseline_rate, p.dip_depth, p.dip_delay,
             p.recovery_time_ms) for p in points]
    return format_table(
        ("system", "outage_ms", "baseline_rate", "dip_depth", "dip_after_ms",
         "recovered_after_ms"),
        rows, title=title)


def format_flow_size(results,
                     title: str = "Flow-size sensitivity: distribution scale "
                                  "x system (fat-tree)") -> str:
    """Rows over flow-size-sensitivity :class:`RunResult`\\ s.

    The scale factor is recovered from the spec name
    (``flow-size:<factor>x:<system>``).
    """
    rows = []
    for r in results:
        summary = r.summary
        parts = r.name.split(":")
        factor = parts[1] if len(parts) > 1 else "?"
        rows.append((factor, r.system, f"{round(r.load * 100)}%",
                     summary.get("avg_fct_ms", float("nan")),
                     summary.get("p99_fct_ms", float("nan")),
                     f"{int(summary.get('completed_flows', 0))}/"
                     f"{int(summary.get('flows', 0))}",
                     int(summary.get("drops", 0))))
    return format_table(
        ("scale", "system", "load", "avg_fct_ms", "p99_fct_ms", "completed", "drops"),
        rows, title=title)


def format_grid(results, title: str = "Grid results") -> str:
    """A generic table over :class:`~repro.experiments.runner.RunResult` rows."""
    rows = []
    for r in results:
        summary = r.summary
        rows.append((r.name, r.system, f"{round(r.load * 100)}%",
                     summary.get("avg_fct_ms", float("nan")),
                     summary.get("p99_fct_ms", float("nan")),
                     f"{int(summary.get('completed_flows', 0))}/{int(summary.get('flows', 0))}",
                     int(summary.get("drops", 0))))
    return format_table(
        ("scenario", "system", "load", "avg_fct_ms", "p99_fct_ms", "completed", "drops"),
        rows, title=title)


def format_transport(results,
                     title: str = "Transport sensitivity: mode x load "
                                  "(asymmetric fat-tree, Figure 13 setting)") -> str:
    """Rows over transport-sensitivity :class:`RunResult`\\ s.

    The transport mode is recovered from the spec name
    (``transport:<mode>:<workload>:<load>:<system>``); ``goodput_ratio`` is
    goodput over raw delivered bytes (1.0 when no duplicates were delivered).
    """
    rows = []
    for r in results:
        summary = r.summary
        parts = r.name.split(":")
        transport = parts[1] if len(parts) > 1 else "?"
        delivered = summary.get("delivered_bytes", 0.0)
        goodput_ratio = summary.get("goodput_bytes", 0.0) / delivered \
            if delivered else float("nan")
        rows.append((transport, r.system, f"{round(r.load * 100)}%",
                     summary.get("avg_fct_ms", float("nan")),
                     summary.get("p99_fct_ms", float("nan")),
                     int(summary.get("retransmissions", 0)),
                     int(summary.get("fast_retransmits", 0)),
                     goodput_ratio,
                     f"{int(summary.get('completed_flows', 0))}/"
                     f"{int(summary.get('flows', 0))}"))
    return format_table(
        ("transport", "system", "load", "avg_fct_ms", "p99_fct_ms", "retx",
         "fast_retx", "goodput_ratio", "completed"),
        rows, title=title)


def format_overhead(points, title: str = "Figure 16: traffic overhead (normalized to ECMP)") -> str:
    rows = [(p.workload, f"{round(p.load * 100)}%", p.system, p.normalized_vs_ecmp,
             p.normalized_vs_ecmp_scaled, p.probe_bytes, p.tag_bytes, p.loop_fraction)
            for p in points]
    return format_table(
        ("workload", "load", "system", "norm_raw", "norm_scaled", "probe_B", "tag_B", "loops"),
        rows, title=title)


def format_ablation(points, title: str = "Ablation") -> str:
    rows = [(p.parameter, p.value, p.avg_fct_ms, p.loop_fraction, p.loop_detections,
             p.overhead_ratio, f"{p.completed}/{p.flows}") for p in points]
    return format_table(
        ("parameter", "value", "avg_fct_ms", "loop_frac", "loop_det", "overhead", "completed"),
        rows, title=title)


def format_fidelity(points,
                    title: str = "Fluid vs packet: FCT fidelity "
                                 "(delta % = fluid relative to packet)") -> str:
    """Rows over :class:`~repro.experiments.fluid_scale.FidelityPoint`\\ s."""
    rows = [(p.fabric, p.system, f"{round(p.load * 100)}%",
             f"{p.fluid_flows}/{p.packet_flows}",
             p.packet_p50_ms, p.fluid_p50_ms, p.p50_delta_pct,
             p.packet_p99_ms, p.fluid_p99_ms, p.p99_delta_pct)
            for p in points]
    return format_table(
        ("fabric", "system", "load", "flows f/p", "pkt_p50", "fluid_p50",
         "d50_%", "pkt_p99", "fluid_p99", "d99_%"),
        rows, title=title)


def format_fluid_million(results,
                         title: str = "Fluid million-flow scale "
                                      "(epoch-driven max-min plane)") -> str:
    """Rows over the fluid-million :class:`RunResult`\\ s."""
    rows = []
    for r in results:
        summary = r.summary
        rows.append((r.system,
                     f"{int(summary.get('completed_flows', 0))}/"
                     f"{int(summary.get('flows', 0))}",
                     int(summary.get("epochs", 0)),
                     summary.get("avg_fct_ms", float("nan")),
                     summary.get("p50_fct_ms", float("nan")),
                     summary.get("p99_fct_ms", float("nan")),
                     summary.get("flow_sketch_max_flows", float("nan")),
                     summary.get("flow_sketch_mean_flows", float("nan")),
                     int(summary.get("failure_detections", 0))))
    return format_table(
        ("system", "completed", "epochs", "avg_fct_ms", "p50_fct_ms",
         "p99_fct_ms", "sketch_max", "sketch_mean", "detections"),
        rows, title=title)
