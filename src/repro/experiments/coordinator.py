"""Work-stealing sweep coordinator: lease-based multi-worker drain of one store.

The sharded backend (:mod:`repro.experiments.results`) parallelizes a sweep by
*static* round-robin: shard ``i`` of ``n`` owns a fixed slice of the grid, so
one straggler shard — say the shard that drew the expensive Contra points of a
``fig11-k16`` grid — leaves every other worker idle, and there is no way to
point a varying number of processes or machines at one results directory and
let them drain it together.

This module adds a **serverless, crash-safe coordinator** layered on the same
JSONL :class:`~repro.experiments.results.ResultsStore`.  There is no daemon
and no shared state beyond the results directory itself; any number of
:class:`CoordinatedBackend` workers started at any time, on any host sharing
the directory, converge to the complete grid:

* **Leases.**  A worker claims one pending point at a time by atomically
  creating ``lease-<spec_hash>.json`` (exclusive-create, so exactly one
  claimant wins).  The lease carries the owner id and acquire time and is
  heartbeat-renewed by a background thread while the point executes.  A lease
  whose heartbeat is older than the TTL is *stale* — its worker is presumed
  dead — and any worker may reclaim it (an atomic rename tombstone ensures a
  single reclaimer).  Because results are deterministic, the worst case of a
  falsely-stale reclaim (the owner was alive but stalled) is duplicate work
  producing byte-identical records, which the store already tolerates.
* **Locality groups.**  Points sharing a compile key
  (:func:`~repro.experiments.runner.compile_group_key`: the (policy,
  topology) pair that keys a worker's compiled-policy cache) cluster to the
  same worker: a worker keeps claiming from its current group in
  deterministic spec order, enters an idle group (no live lease held by
  anyone) when its own is drained, and **steals** from an active group only
  when every group with pending work is being worked by someone else —
  preferring the group with the most remaining points (the straggler).  A
  k=32 policy compile costs ~20 s, so keeping a group on one worker is what
  makes stealing a win rather than a cache-thrashing loss.
* **Byte-identity.**  Completed records stream into a worker-private
  ``results-worker-<owner>.jsonl`` exactly as the sharded backend writes its
  shard file; merged reports are therefore byte-identical to an unsharded
  serial run regardless of worker count, kills, steals or interleaving
  (the repo's standing invariant, test-enforced).

Wall-clock timestamps: lease heartbeats are the one place this repo
legitimately reads the wall clock — cross-process liveness cannot be derived
from simulated time or ``perf_counter`` (which is process-relative).  The
timestamps never feed simulated time or summaries; the file is allowlisted
for the ``wall-clock`` lint rule (tools/lint_determinism.py).
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.experiments.results import ResultsStore
from repro.experiments.runner import (
    ExecutionBackend,
    RunContext,
    RunResult,
    ScenarioSpec,
    SerialBackend,
    compile_group_key,
    group_label,
    spec_hash,
)

__all__ = [
    "DEFAULT_LEASE_TTL",
    "CoordinatedBackend",
    "LeaseInfo",
    "lease_path",
    "read_lease",
    "live_leases",
    "gc_leases",
    "wall_now",
    "drain_store",
    "SweepStatus",
    "sweep_status",
]

#: Seconds a lease may go without a heartbeat before any worker may reclaim
#: it.  Heartbeats renew every TTL/6 while a point executes, so a live worker
#: never comes close; a killed worker's point re-enters the pool after one
#: TTL rather than wedging the sweep.
DEFAULT_LEASE_TTL = 30.0

#: How often a waiting worker re-examines the store for newly completed or
#: newly stale points.
DEFAULT_POLL_INTERVAL = 0.2

_LEASE_PATTERN = re.compile(r"lease-([0-9a-f]{64})\.json$")


def wall_now() -> float:
    """The wall clock, for lease timestamps only (see module docstring)."""
    return time.time()


def _default_owner() -> str:
    """A unique, filename-safe worker id: host, pid and a random suffix.

    The suffix guards against pid reuse across sequential invocations on one
    host; owner ids never influence results bytes, only lease bookkeeping.
    """
    host = re.sub(r"[^A-Za-z0-9_-]", "-", socket.gethostname())[:24]
    return f"{host}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


# ------------------------------------------------------------- lease files

def lease_path(directory, key: str) -> Path:
    return Path(directory) / f"lease-{key}.json"


@dataclass(frozen=True)
class LeaseInfo:
    """One lease file, decoded, with staleness judged at ``now``."""

    key: str
    owner: str
    acquired_unix: float
    heartbeat_unix: float
    age_s: float
    stale: bool
    spec_name: str = ""


def _write_lease(path: Path, owner: str, acquired: float, spec_name: str,
                 now: float) -> None:
    """Atomically (re)write a lease payload via rename, never in place.

    Readers therefore always see a complete JSON document; the temp name is
    owner-unique so concurrent renewers of *different* leases never collide.
    """
    staging = path.with_name(path.name + f".{owner}.tmp")
    staging.write_text(json.dumps({
        "owner": owner,
        "acquired_unix": round(acquired, 3),
        "heartbeat_unix": round(now, 3),
        "spec_name": spec_name,
    }, sort_keys=True) + "\n")
    staging.replace(path)


def try_acquire_lease(directory, key: str, owner: str, spec_name: str = "",
                      now: Optional[float] = None) -> bool:
    """Claim ``key`` by exclusive-create; False when someone else holds it."""
    path = lease_path(directory, key)
    now = wall_now() if now is None else now
    try:
        handle = path.open("x", encoding="utf-8")
    except FileExistsError:
        return False
    with handle:
        handle.write(json.dumps({
            "owner": owner,
            "acquired_unix": round(now, 3),
            "heartbeat_unix": round(now, 3),
            "spec_name": spec_name,
        }, sort_keys=True) + "\n")
    return True


def renew_lease(directory, key: str, owner: str, spec_name: str = "",
                now: Optional[float] = None) -> None:
    """Refresh the heartbeat of a lease this owner holds."""
    path = lease_path(directory, key)
    now = wall_now() if now is None else now
    info = read_lease(directory, key)
    acquired = info.acquired_unix if info is not None else now
    _write_lease(path, owner, acquired, spec_name, now)


def release_lease(directory, key: str, owner: Optional[str] = None) -> bool:
    """Remove a lease; with ``owner`` given, only if still held by that owner.

    (A falsely-stale reclaim may have handed the lease to someone else while
    we executed; their lease is theirs to release.)
    """
    path = lease_path(directory, key)
    if owner is not None:
        info = read_lease(directory, key)
        if info is not None and info.owner != owner:
            return False
    try:
        path.unlink()
    except FileNotFoundError:
        return False
    return True


def reclaim_lease(directory, key: str, owner: str) -> bool:
    """Atomically tear down a stale lease; True when *this* caller won.

    Rename-to-tombstone makes the teardown single-winner: of N concurrent
    reclaimers exactly one rename succeeds, the rest see FileNotFoundError
    and go back to the claim loop.  (Deleting in place instead would let a
    slow reclaimer unlink the *fresh* lease a faster one just created.)
    """
    path = lease_path(directory, key)
    tombstone = path.with_name(path.name + f".reclaim-{owner}")
    try:
        os.replace(path, tombstone)
    except FileNotFoundError:
        return False
    tombstone.unlink(missing_ok=True)
    return True


def read_lease(directory, key: str,
               now: Optional[float] = None,
               ttl: float = DEFAULT_LEASE_TTL) -> Optional[LeaseInfo]:
    """Decode one lease file; None when absent.

    A lease caught mid-create (exclusive-create is not atomic with respect
    to content) decodes as unreadable; it is treated as freshly live via the
    file's mtime so a racing reader never mistakes a newborn lease for
    reclaimable garbage.
    """
    path = lease_path(directory, key)
    now = wall_now() if now is None else now
    try:
        payload = json.loads(path.read_text())
        heartbeat = float(payload["heartbeat_unix"])
        acquired = float(payload.get("acquired_unix", heartbeat))
        owner = str(payload.get("owner", "?"))
        spec_name = str(payload.get("spec_name", ""))
    except FileNotFoundError:
        return None
    except (json.JSONDecodeError, KeyError, TypeError, ValueError):
        try:
            heartbeat = acquired = path.stat().st_mtime
        except FileNotFoundError:
            return None
        owner, spec_name = "?", ""
    age = max(0.0, now - heartbeat)
    return LeaseInfo(key=key, owner=owner, acquired_unix=acquired,
                     heartbeat_unix=heartbeat, age_s=age, stale=age > ttl,
                     spec_name=spec_name)


def _lease_keys(directory) -> List[str]:
    keys = []
    for file in sorted(Path(directory).glob("lease-*.json")):
        match = _LEASE_PATTERN.match(file.name)
        if match:
            keys.append(match.group(1))
    return keys


def live_leases(directory, ttl: float = DEFAULT_LEASE_TTL,
                now: Optional[float] = None) -> List[LeaseInfo]:
    """Every decodable lease in the directory (live and stale), sorted by key."""
    now = wall_now() if now is None else now
    leases = []
    for key in _lease_keys(directory):
        info = read_lease(directory, key, now=now, ttl=ttl)
        if info is not None:
            leases.append(info)
    return leases


def gc_leases(directory, valid_keys, completed_keys,
              ttl: float = DEFAULT_LEASE_TTL,
              now: Optional[float] = None) -> Tuple[int, int]:
    """Store-hygiene pass used by ``gc-results``: returns (removed, live).

    Removes *orphaned* leases (their point is already recorded, or the
    current grid no longer defines it) and *stale* ones (heartbeat past the
    TTL — a killed worker never releases).  Live leases on genuinely pending
    points are left alone: the drain holding them is still running.  Stray
    reclaim tombstones and staging files from killed renewers are swept too.
    """
    directory = Path(directory)
    now = wall_now() if now is None else now
    removed = live = 0
    for key in _lease_keys(directory):
        info = read_lease(directory, key, now=now, ttl=ttl)
        if info is None:
            continue
        orphaned = key not in valid_keys or key in completed_keys
        if orphaned or info.stale:
            if reclaim_lease(directory, key, "gc"):
                removed += 1
        else:
            live += 1
    for debris in sorted(directory.glob("lease-*.json.*")):
        debris.unlink(missing_ok=True)
    return removed, live


class _Heartbeat:
    """Daemon thread renewing one lease every ``interval`` seconds."""

    def __init__(self, directory, key: str, owner: str, spec_name: str,
                 interval: float):
        self._directory = directory
        self._key = key
        self._owner = owner
        self._spec_name = spec_name
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name=f"lease-heartbeat-{key[:8]}")

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                renew_lease(self._directory, self._key, self._owner,
                            self._spec_name)
            except OSError:
                # A vanished directory or permission hiccup must not kill the
                # worker mid-point; the lease simply ages toward reclaim.
                pass

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *_exc) -> None:
        self._stop.set()
        self._thread.join()


# ------------------------------------------------------- the coordinated drain

@dataclass
class _Claim:
    """One successful claim: the grid position plus how it was obtained."""

    position: int
    stolen: bool
    reclaimed: bool


class CoordinatedBackend(ExecutionBackend):
    """Drain one grid as one worker of a lease-coordinated multi-worker sweep.

    Unlike :class:`~repro.experiments.results.ShardedBackend`'s static slice,
    ownership here is dynamic: the worker repeatedly claims the best pending
    point (own group first, then an idle group, then stealing from the
    most-loaded active group), executes it on the ``inner`` backend, streams
    the record into its worker-private shard file, and releases the lease.
    :meth:`run` additionally waits for *other* workers' in-flight points, so
    every invocation — however many there are, on however many hosts —
    returns the complete grid in spec order (decoded store copies, exactly
    what a later merge reads).
    """

    def __init__(self, directory, inner: Optional[ExecutionBackend] = None,
                 owner: Optional[str] = None,
                 ttl: float = DEFAULT_LEASE_TTL,
                 poll_interval: float = DEFAULT_POLL_INTERVAL,
                 heartbeat_interval: Optional[float] = None,
                 scenario: str = ""):
        if ttl <= 0:
            raise ExperimentError(f"lease TTL must be positive, got {ttl}")
        self.owner = owner if owner is not None else _default_owner()
        self.directory = Path(directory)
        self.store = ResultsStore(directory,
                                  filename=f"results-worker-{self.owner}.jsonl")
        # One persistent context so the compiled-policy/topology caches
        # survive across the one-point-at-a-time claim loop — cache locality
        # is the entire point of group-preferring claims.
        self.inner = inner if inner is not None else SerialBackend(RunContext())
        self.ttl = ttl
        self.poll_interval = poll_interval
        self.heartbeat_interval = (heartbeat_interval if heartbeat_interval
                                   is not None else ttl / 6.0)
        self.scenario = scenario
        # Accounting (mirrors ShardedBackend's executed/skipped surface).
        self.executed = 0
        self.stolen = 0
        self.reclaimed = 0
        self.idle_s = 0.0
        self.groups_entered: List[str] = []

    # ------------------------------------------------------------- claiming

    def _claim(self, specs: Sequence[ScenarioSpec], keys: Sequence[str],
               groups: "Dict[Tuple, List[int]]",
               current_group: Optional[Tuple]) -> Optional[_Claim]:
        """Claim one pending point, or None when nothing is claimable now.

        Nothing-claimable means every pending point is covered by another
        worker's *live* lease; completed points' leftover leases (a worker
        killed between record and release) are ignored entirely, so an
        orphaned lease can never wedge the sweep.
        """
        while True:
            completed = set(self.store.load())
            now = wall_now()
            claimable: Dict[int, bool] = {}      # position -> needs reclaim
            active_groups = set()
            pending_total = 0
            for group_key, positions in groups.items():
                for position in positions:
                    if keys[position] in completed:
                        continue
                    pending_total += 1
                    info = read_lease(self.directory, keys[position],
                                      now=now, ttl=self.ttl)
                    if info is None:
                        claimable[position] = False
                    elif info.stale:
                        claimable[position] = True
                    else:
                        active_groups.add(group_key)
            if pending_total == 0 or not claimable:
                return None
            position = self._pick(groups, claimable, active_groups,
                                  current_group)
            needs_reclaim = claimable[position]
            key = keys[position]
            if needs_reclaim and not reclaim_lease(self.directory, key,
                                                   self.owner):
                continue                    # lost the reclaim race; re-scan
            if not try_acquire_lease(self.directory, key, self.owner,
                                     spec_name=specs[position].name, now=now):
                continue                    # lost the create race; re-scan
            stolen = (compile_group_key(specs[position]) != current_group
                      and compile_group_key(specs[position]) in active_groups)
            return _Claim(position=position, stolen=stolen,
                          reclaimed=needs_reclaim)

    @staticmethod
    def _pick(groups: "Dict[Tuple, List[int]]", claimable: Dict[int, bool],
              active_groups: set, current_group: Optional[Tuple]) -> int:
        """The locality-preferring choice among claimable positions.

        1. the worker's current group, in deterministic spec order;
        2. an *idle* group (no live lease anywhere in it), first in group
           order — entering fresh territory is not a steal;
        3. otherwise steal from the active group with the most claimable
           points (the straggler), ties broken by group order.
        """
        if current_group is not None:
            for position in groups.get(current_group, ()):
                if position in claimable:
                    return position
        best_steal: Optional[Tuple[int, int]] = None   # (-count, position)
        for group_key, positions in groups.items():
            mine = [position for position in positions if position in claimable]
            if not mine:
                continue
            if group_key not in active_groups:
                return mine[0]
            candidate = (-len(mine), mine[0])
            if best_steal is None or candidate[0] < best_steal[0]:
                best_steal = candidate
        assert best_steal is not None    # claimable was non-empty
        return best_steal[1]

    # ------------------------------------------------------------ execution

    def _build_groups(self, specs: Sequence[ScenarioSpec]
                      ) -> "Dict[Tuple, List[int]]":
        """Spec positions grouped by compile key, first-occurrence order."""
        groups: Dict[Tuple, List[int]] = {}
        for position, spec in enumerate(specs):
            groups.setdefault(compile_group_key(spec), []).append(position)
        return groups

    def drain(self, specs: Sequence[ScenarioSpec]) -> None:
        """Claim and execute points until nothing is claimable by this worker.

        On return every grid point is either complete in the store or covered
        by another worker's live lease (use :meth:`run` to additionally wait
        for those).  A crash mid-point leaves the lease behind un-released;
        after one TTL any surviving worker reclaims and re-executes it.
        """
        specs = list(specs)
        keys = [spec_hash(spec) for spec in specs]
        groups = self._build_groups(specs)
        current_group: Optional[Tuple] = None
        while True:
            claim = self._claim(specs, keys, groups, current_group)
            if claim is None:
                break
            spec, key = specs[claim.position], keys[claim.position]
            group = compile_group_key(spec)
            if group != current_group:
                current_group = group
                self.groups_entered.append(group_label(group))
            if claim.stolen:
                self.stolen += 1
            if claim.reclaimed:
                self.reclaimed += 1
            with _Heartbeat(self.directory, key, self.owner, spec.name,
                            self.heartbeat_interval):
                result, wall_s = next(iter(self.inner.run_iter_timed([spec])))
            self.store.record(spec, result, wall_s=wall_s, key=key,
                              owner=self.owner)
            release_lease(self.directory, key, owner=self.owner)
            self.executed += 1
            self._write_worker_meta()
        self._write_worker_meta()

    def run(self, specs: Sequence[ScenarioSpec]) -> List[RunResult]:
        """Drain, then wait out other workers; returns the *full* grid.

        The wait loop re-drains each poll tick, so a point whose worker dies
        mid-flight is reclaimed here the moment its lease goes stale — a
        single surviving invocation always converges to the complete grid.
        """
        specs = list(specs)
        keys = [spec_hash(spec) for spec in specs]
        while True:
            self.drain(specs)
            completed = self.store.load()
            if all(key in completed for key in keys):
                break
            waited = time.perf_counter()
            time.sleep(self.poll_interval)
            self.idle_s += time.perf_counter() - waited
            self._write_worker_meta()
        return [completed[key] for key in keys]

    # ----------------------------------------------------------- accounting

    def accounting(self) -> Dict[str, object]:
        return {
            "owner": self.owner,
            "executed": self.executed,
            "stolen": self.stolen,
            "reclaimed": self.reclaimed,
            "idle_s": round(self.idle_s, 3),
            "groups": list(self.groups_entered),
        }

    def _write_worker_meta(self) -> None:
        """Progress record for ``sweep-status`` (advisory, never load-bearing)."""
        payload = dict(self.accounting())
        payload["scenario"] = self.scenario
        payload["updated_unix"] = round(wall_now(), 3)
        path = self.directory / f"worker-{self.owner}.meta.json"
        staging = path.with_name(path.name + ".tmp")
        staging.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        staging.replace(path)


def drain_store(specs: Sequence[ScenarioSpec], directory,
                owner: Optional[str] = None,
                ttl: float = DEFAULT_LEASE_TTL,
                scenario: str = "") -> Dict[str, object]:
    """Module-level one-worker drain (picklable for process fan-out).

    Runs a :class:`CoordinatedBackend` to claim-exhaustion and returns its
    accounting dict; the results live in the store for a later merge or a
    parent's :meth:`CoordinatedBackend.run`.
    """
    backend = CoordinatedBackend(directory, owner=owner, ttl=ttl,
                                 scenario=scenario)
    backend.drain(specs)
    return backend.accounting()


# ------------------------------------------------------------- status view

@dataclass
class GroupStatus:
    label: str
    total: int
    complete: int
    leased: int
    stale: int

    @property
    def pending(self) -> int:
        return self.total - self.complete - self.leased - self.stale


@dataclass
class WorkerStatus:
    owner: str
    executed: int
    stolen: int
    reclaimed: int
    idle_s: float
    current: str = ""            # spec name under a live lease, if any


@dataclass
class SweepStatus:
    """Snapshot of one coordinated results directory against a spec grid."""

    total: int
    complete: int
    leased: int
    stale: int
    groups: List[GroupStatus] = field(default_factory=list)
    workers: List[WorkerStatus] = field(default_factory=list)

    @property
    def pending(self) -> int:
        return self.total - self.complete - self.leased - self.stale

    def render(self) -> str:
        lines = [
            f"{self.complete}/{self.total} points complete — "
            f"{self.leased} leased, {self.stale} stale lease(s), "
            f"{self.pending} pending",
            "",
            f"{'group':<40s} {'done':>5s} {'lease':>5s} {'stale':>5s} {'todo':>5s}",
        ]
        for group in self.groups:
            lines.append(f"{group.label:<40s} "
                         f"{group.complete:>4d}/{group.total:<2d} "
                         f"{group.leased:>5d} {group.stale:>5d} "
                         f"{group.pending:>5d}")
        if self.workers:
            lines.append("")
            lines.append(f"{'worker':<32s} {'done':>5s} {'stole':>5s} "
                         f"{'recl':>5s} {'idle_s':>7s}  current")
        for worker in self.workers:
            lines.append(f"{worker.owner:<32s} {worker.executed:>5d} "
                         f"{worker.stolen:>5d} {worker.reclaimed:>5d} "
                         f"{worker.idle_s:>7.1f}  {worker.current or '-'}")
        return "\n".join(lines)


def sweep_status(specs: Sequence[ScenarioSpec], directory,
                 ttl: float = DEFAULT_LEASE_TTL,
                 now: Optional[float] = None) -> SweepStatus:
    """Pending/leased/complete per locality group, plus per-worker progress.

    Reads records, lease files and worker metas; executed counts come from
    the records themselves (each carries its executing owner), so the view
    is exact even for workers whose meta write was lost to a kill.
    """
    directory = Path(directory)
    specs = list(specs)
    keys = [spec_hash(spec) for spec in specs]
    now = wall_now() if now is None else now

    store = ResultsStore(directory)
    completed = set(store.load())
    executed_by: Dict[str, int] = {}
    for _, _, record in store._records():
        owner = record.get("owner")
        if owner:
            executed_by[owner] = executed_by.get(owner, 0) + 1

    lease_by_key = {info.key: info
                    for info in live_leases(directory, ttl=ttl, now=now)}

    groups: Dict[Tuple, GroupStatus] = {}
    total = complete = leased = stale = 0
    for spec, key in zip(specs, keys):
        group_key = compile_group_key(spec)
        status = groups.get(group_key)
        if status is None:
            status = groups[group_key] = GroupStatus(
                label=group_label(group_key), total=0, complete=0,
                leased=0, stale=0)
        status.total += 1
        total += 1
        if key in completed:
            status.complete += 1
            complete += 1
        elif key in lease_by_key:
            if lease_by_key[key].stale:
                status.stale += 1
                stale += 1
            else:
                status.leased += 1
                leased += 1

    key_set = set(keys)
    workers: Dict[str, WorkerStatus] = {}
    for file in sorted(directory.glob("worker-*.meta.json")):
        try:
            payload = json.loads(file.read_text())
        except (json.JSONDecodeError, OSError):
            continue
        owner = str(payload.get("owner", file.stem[len("worker-"):]))
        workers[owner] = WorkerStatus(
            owner=owner,
            executed=int(payload.get("executed", 0)),
            stolen=int(payload.get("stolen", 0)),
            reclaimed=int(payload.get("reclaimed", 0)),
            idle_s=float(payload.get("idle_s", 0.0)))
    for owner, count in sorted(executed_by.items()):
        worker = workers.setdefault(
            owner, WorkerStatus(owner=owner, executed=0, stolen=0,
                                reclaimed=0, idle_s=0.0))
        worker.executed = max(worker.executed, count)
    for info in lease_by_key.values():
        if info.stale or info.key not in key_set:
            continue
        worker = workers.setdefault(
            info.owner, WorkerStatus(owner=info.owner, executed=0, stolen=0,
                                     reclaimed=0, idle_s=0.0))
        worker.current = info.spec_name or info.key[:12]

    return SweepStatus(total=total, complete=complete, leased=leased,
                       stale=stale, groups=list(groups.values()),
                       workers=sorted(workers.values(),
                                      key=lambda status: status.owner))
