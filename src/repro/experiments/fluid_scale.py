"""Fluid-plane scenario families: fidelity validation and million-flow scale.

Two grids ride the ``flow_model="fluid"`` data path (ARCHITECTURE.md §7):

* :func:`fluid_fidelity_specs` — the ``fluid-vs-packet`` scenario: every
  (fabric, system, load) point of a small fig11-style datacenter grid and a
  fig15-style Abilene grid run under **both** planes, and the finisher
  reports the median/p99 FCT deltas side by side.  This is the standing
  evidence that the fluid model's rate-integral FCTs track the packet
  oracle's queueing FCTs closely enough to extrapolate from.
* :func:`fluid_million_specs` — the ``fluid-million`` scenario: a fat-tree
  datacenter point sized so the *full* preset offers ≥10^6 flows (the quick
  preset offers 10^5, same regime), with long-timescale failure churn and the
  per-switch HyperLogLog cardinality sketch enabled.  Unreachable under the
  packet plane — the point exists to demonstrate O(epochs × links) scaling
  and is the headline number of the fluid fast path.

Both families are plain spec grids, so they shard, resume and merge through
the results store exactly like every figure scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.fct import abilene_pairs, fattree_spec
from repro.experiments.runner import (
    LinkEvent,
    RunResult,
    ScenarioSpec,
    TopologySpec,
    default_failed_link,
)
from repro.topology.abilene import abilene
from repro.topology.fattree import fattree
from repro.workloads import distribution_by_name

__all__ = [
    "FidelityPoint",
    "fluid_fidelity_specs",
    "to_fidelity_points",
    "fluid_million_specs",
    "MILLION_FLOW_TARGET_FULL",
    "MILLION_FLOW_TARGET_QUICK",
]

#: The load points the fidelity comparison runs at (the fig11-quick pair).
FIDELITY_LOADS = (0.4, 0.8)

#: Flow-count targets for the million-flow family: the full/default presets
#: size the workload for the headline ≥10^6-flow point, the quick preset for
#: a 10^5-flow point in the same regime (CI-speed, identical code path).
MILLION_FLOW_TARGET_FULL = 1_000_000
MILLION_FLOW_TARGET_QUICK = 100_000

#: Failure churn period (ms) for the million-flow family: one agg–core link
#: fails and recovers on this long timescale throughout the run.
MILLION_CHURN_PERIOD = 50.0


@dataclass
class FidelityPoint:
    """One (fabric, system, load) fluid-vs-packet comparison."""

    fabric: str
    system: str
    load: float
    packet_flows: int
    fluid_flows: int
    packet_p50_ms: float
    fluid_p50_ms: float
    p50_delta_pct: float
    packet_p99_ms: float
    fluid_p99_ms: float
    p99_delta_pct: float


def _fidelity_spec(name: str, flow_model: str, **kwargs) -> ScenarioSpec:
    return ScenarioSpec(
        name=f"{name}:{flow_model}",
        flow_model=flow_model,
        fct_percentiles=(50.0,),
        stop_after_completion=True,
        **kwargs,
    )


def fluid_fidelity_specs(config: ExperimentConfig) -> List[ScenarioSpec]:
    """The ``fluid-vs-packet`` grid: two validation fabrics × both planes.

    Fabric one is the fig11 fat-tree (ecmp + contra under the datacenter
    policy), fabric two the fig15 Abilene WAN (shortest-path + contra under
    the wan policy).  The packet twin of each point carries the packet-plane
    knobs (``respect_compiled_probe_period`` on the WAN); the fluid twin
    leaves every packet-only field at its default, as the fluid validator
    requires.
    """
    specs: List[ScenarioSpec] = []
    dc_topology = fattree_spec(config)
    for load in FIDELITY_LOADS:
        for system in ("ecmp", "contra"):
            for flow_model in ("packet", "fluid"):
                specs.append(_fidelity_spec(
                    f"fidelity:fattree:{system}:{load}", flow_model,
                    system=system,
                    topology=dc_topology,
                    config=config,
                    policy="datacenter",
                    workload="web_search",
                    load=load,
                    seed=config.seed,
                ))
    wan_topology = TopologySpec("abilene", capacity=config.abilene_capacity,
                                hosts_per_switch=1)
    senders, receivers = abilene_pairs(
        abilene(capacity=config.abilene_capacity, hosts_per_switch=1), 4)
    for load in FIDELITY_LOADS:
        for system in ("shortest-path", "contra"):
            for flow_model in ("packet", "fluid"):
                specs.append(_fidelity_spec(
                    f"fidelity:abilene:{system}:{load}", flow_model,
                    system=system,
                    topology=wan_topology,
                    config=config,
                    policy="wan",
                    workload="web_search",
                    load=load,
                    seed=config.seed,
                    workload_host_rate=config.abilene_host_rate,
                    senders=tuple(senders),
                    receivers=tuple(receivers),
                    pair_senders_receivers=True,
                    # Packet-plane-only knob (see abilene_fct_specs); the
                    # fluid plane has no probes to pace.
                    respect_compiled_probe_period=(flow_model == "packet"),
                ))
    return specs


def _delta_pct(packet: float, fluid: float) -> float:
    if packet != packet or packet == 0.0:  # NaN or empty
        return float("nan")
    return (fluid - packet) / packet * 100.0


def to_fidelity_points(results: Sequence[RunResult]) -> List[FidelityPoint]:
    """Pair each point's packet and fluid runs into comparison rows."""
    by_key: Dict[Tuple[str, str, float], Dict[str, RunResult]] = {}
    for result in results:
        prefix, _, flow_model = result.name.rpartition(":")
        fabric = prefix.split(":")[1]
        by_key.setdefault((fabric, result.system, result.load), {})[flow_model] = result
    points: List[FidelityPoint] = []
    for (fabric, system, load), pair in by_key.items():
        if set(pair) != {"packet", "fluid"}:
            raise ExperimentError(
                f"fidelity point ({fabric}, {system}, {load}) is missing its "
                f"{sorted({'packet', 'fluid'} - set(pair))} twin")
        packet, fluid = pair["packet"].summary, pair["fluid"].summary
        points.append(FidelityPoint(
            fabric=fabric,
            system=system,
            load=load,
            packet_flows=int(packet["flows"]),
            fluid_flows=int(fluid["flows"]),
            packet_p50_ms=packet["p50_fct_ms"],
            fluid_p50_ms=fluid["p50_fct_ms"],
            p50_delta_pct=_delta_pct(packet["p50_fct_ms"], fluid["p50_fct_ms"]),
            packet_p99_ms=packet["p99_fct_ms"],
            fluid_p99_ms=fluid["p99_fct_ms"],
            p99_delta_pct=_delta_pct(packet["p99_fct_ms"], fluid["p99_fct_ms"]),
        ))
    return points


def _million_flow_target(config: ExperimentConfig) -> int:
    """Preset-scaled flow target, keyed off the workload duration.

    The quick preset scales durations by 0.4 (< the default 30 ms), which is
    the one deterministic marker a config carries of "CI speed" — presets are
    plain configs, so the family sizes itself from the same field every other
    scenario scales with.
    """
    if config.workload_duration < 30.0:
        return MILLION_FLOW_TARGET_QUICK
    return MILLION_FLOW_TARGET_FULL


def fluid_million_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("ecmp", "contra"),
    flow_target: Optional[int] = None,
) -> List[ScenarioSpec]:
    """The ``fluid-million`` grid: a datacenter-scale fluid point per system.

    Regime: k=8 fat-tree at 1:1 oversubscription, web-search flows at 40%
    offered load with a per-flow window cap of 8 packets, plus one agg–core
    link failing and recovering every :data:`MILLION_CHURN_PERIOD` ms for the
    whole run.  The workload duration is derived from ``flow_target`` (the
    arrival process is Poisson, so the realised count fluctuates ~±0.3%
    around it); the workload streams lazily, so the flow list never
    materializes.
    """
    if flow_target is None:
        flow_target = _million_flow_target(config)
    topology_spec = TopologySpec("fattree", k=8, capacity=config.host_capacity,
                                 oversubscription=1.0)
    topology = topology_spec.build()
    sender_count = (len(topology.hosts) + 1) // 2
    load = 0.4
    distribution = distribution_by_name("web_search", config.websearch_scale)
    per_sender_rate = load * config.host_capacity / distribution.mean()
    duration = flow_target / (sender_count * per_sender_rate)

    # Long-timescale churn: alternate fail/recover of one agg–core link every
    # churn period across the arrival window.
    link = default_failed_link(topology)
    events: List[LinkEvent] = []
    time, failed = MILLION_CHURN_PERIOD, False
    while time < config.warmup + duration:
        events.append(LinkEvent(time, link[0], link[1],
                                "recover" if failed else "fail"))
        failed = not failed
        time += MILLION_CHURN_PERIOD
    if failed:
        events.append(LinkEvent(time, link[0], link[1], "recover"))

    million_config = replace(config, host_window=8, workload_duration=duration,
                             run_duration=config.warmup + duration + 100.0)
    return [
        ScenarioSpec(
            name=f"fluid-million:{system}:{flow_target}",
            system=system,
            topology=topology_spec,
            config=million_config,
            policy="datacenter",
            workload="web_search",
            load=load,
            seed=config.seed,
            events=tuple(events),
            flow_model="fluid",
            flow_sketch=True,
            fct_percentiles=(50.0,),
            stop_after_completion=True,
        )
        for system in systems
    ]
