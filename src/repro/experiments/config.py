"""Shared experiment configuration.

Every evaluation experiment uses the same scaled simulation regime (DESIGN.md
§4): link capacities in packets/ms, flow sizes drawn from scaled empirical
CDFs, and a probe period of 0.256 ms (the paper's 256 µs).  The defaults here
reproduce the figure shapes in a few minutes on a laptop; the ``quick`` preset
shrinks durations for CI/benchmark runs and ``full`` enlarges them for closer
statistics.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Sequence, Tuple

__all__ = ["ExperimentConfig", "default_config", "quick_config", "full_config",
           "config_from_env", "sanitize_from_env", "procs_from_env"]


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs shared by the FCT / overhead / failure experiments."""

    # Topology scale.
    fattree_k: int = 4
    host_capacity: float = 100.0              # packets per ms
    oversubscription: float = 4.0             # paper §6.3 uses 4:1
    abilene_capacity: float = 100.0
    #: Offered rate per Abilene sender host (packets/ms); below the backbone
    #: capacity so that the aggregate demand is routable, mirroring the
    #: paper's 10 Gbps hosts on a 40 Gbps backbone.
    abilene_host_rate: float = 50.0

    # Transport / switch parameters.
    buffer_packets: int = 500                 # paper: 1000 MSS; scaled regime uses 500
    host_window: int = 16
    host_rto: float = 5.0
    #: Host sender behaviour: "fixed" (full window from the first segment,
    #: the historical default), "slowstart" (slow start + AIMD + fast
    #: retransmit) or "paced" (slowstart plus per-RTT packet pacing).  See
    #: repro.simulator.flow.TRANSPORT_MODES; ScenarioSpec.transport overrides
    #: this per grid point.
    transport: str = "fixed"
    util_window: float = 0.5

    # Protocol parameters (paper §6.3).
    probe_period: float = 0.256               # ms (256 us)
    #: The paper uses 200 us at 10 Gbps.  In the scaled regime queue-drain
    #: transients span several probe periods (a packet serializes in 10 us
    #: here vs 1.2 us on the paper's links), so a timeout below one probe
    #: period lets every flowlet of a ToR re-pin mid-transient — the whole
    #: pod herds onto whichever uplink looked best last round and the tail
    #: queue oscillates past ECMP's (Figure 13).  Two probe periods keeps
    #: flowlets pinned across one full probe refresh.
    flowlet_timeout: float = 0.5              # ms (scaled equivalent of 200 us)
    failure_periods: int = 3

    # Workload parameters.
    websearch_scale: float = 0.1
    cache_scale: float = 0.25
    workload_duration: float = 30.0           # ms of flow arrivals
    run_duration: float = 90.0                # ms of simulation
    #: Delay before the first flow arrives, giving the routing protocol a few
    #: probe periods to converge (the paper measures steady-state FCT).
    warmup: float = 2.0
    seed: int = 1

    # Sweep points (paper sweeps 10..90%).
    loads: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 0.9)

    # Compiler-scalability sweep sizes (Figure 9/10); run-grid config
    # overrides reach the sweep through these.
    scalability_fattree_sizes: Tuple[int, ...] = (20, 125)
    scalability_random_sizes: Tuple[int, ...] = (100, 200)

    def scaled(self, duration_factor: float, loads: Optional[Sequence[float]] = None
               ) -> "ExperimentConfig":
        """A copy with durations scaled and (optionally) different load points."""
        return replace(
            self,
            workload_duration=self.workload_duration * duration_factor,
            run_duration=self.run_duration * duration_factor,
            loads=tuple(loads) if loads is not None else self.loads,
        )


def default_config() -> ExperimentConfig:
    """The standard configuration used by EXPERIMENTS.md."""
    return ExperimentConfig()


def quick_config() -> ExperimentConfig:
    """A fast preset for CI and pytest-benchmark runs (minutes, not tens of minutes)."""
    return ExperimentConfig().scaled(0.4, loads=(0.4, 0.8))


def full_config() -> ExperimentConfig:
    """A slower preset with the paper's full load sweep."""
    return ExperimentConfig(loads=(0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)).scaled(1.5)


def config_from_env() -> ExperimentConfig:
    """Pick a preset via the ``CONTRA_EXPERIMENT_PRESET`` environment variable.

    Recognised values: ``quick`` (default for benchmarks), ``default``, ``full``.
    """
    preset = os.environ.get("CONTRA_EXPERIMENT_PRESET", "quick").lower()
    if preset == "full":
        return full_config()
    if preset == "default":
        return default_config()
    return quick_config()


def sanitize_from_env() -> Optional[bool]:
    """Resolve the ``CONTRA_SANITIZE`` environment variable.

    Returns ``None`` when unset (caller falls back to its default), ``False``
    for ``""``/``"0"``, ``True`` otherwise.  This is the *only* place the
    sanitizer opt-in touches the environment: the simulator package itself
    never reads ``os.environ`` (enforced by tools/lint_determinism.py), and
    the flag deliberately stays out of ``spec_hash`` — sanitizing a run must
    not re-key its results.
    """
    value = os.environ.get("CONTRA_SANITIZE")
    if value is None:
        return None
    return value.strip() not in ("", "0")


def procs_from_env() -> str:
    """Raw ``CONTRA_PROCS`` value (worker-count default for grid runs).

    Centralised here so every environment read outside the CLI lives in this
    module (lint-enforced); the caller parses and validates.
    """
    return os.environ.get("CONTRA_PROCS", "1")
