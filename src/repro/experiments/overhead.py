"""Traffic-overhead experiment (Figure 16 and the §6.5 loop measurement).

Figure 16 reports, for 10% and 60% load under both workloads, the total
traffic each system places on the wire normalised by ECMP.  Contra's extra
traffic comes from probes and per-packet tags; Hula's from its (smaller)
probes.  §6.5 additionally reports the fraction of traffic that experienced a
transient loop under the MU policy.

Because the simulator runs with scaled-down link capacities (DESIGN.md §4),
the *raw* probe-to-data ratio is inflated by the capacity scale: probes are
sent per real-time probe period while the links carry roughly two orders of
magnitude less data than 10 Gbps hardware would in the same period.  The
driver therefore reports both the raw ratio and a capacity-corrected ratio
(probe bytes divided by ``capacity_scale``), and EXPERIMENTS.md quotes the
corrected number next to the paper's 0.79%.

Runs full-duration (no early stop): the probe byte budget is the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.fct import fattree_spec
from repro.experiments.runner import RunResult, ScenarioSpec, run_grid

__all__ = ["OverheadPoint", "overhead_specs", "to_overhead_points",
           "run_overhead_experiment", "DEFAULT_CAPACITY_SCALE"]

#: Ratio between the paper's 10 Gbps links (~833 full packets per ms) and the
#: simulator's default 100 packets/ms hosts — the factor by which the scaled
#: simulation under-represents data bytes per probe period.
DEFAULT_CAPACITY_SCALE = 8.33


@dataclass
class OverheadPoint:
    """Traffic accounting for one (workload, load, system) run."""

    workload: str
    load: float
    system: str
    data_bytes: float
    ack_bytes: float
    probe_bytes: float
    tag_bytes: float
    total_bytes: float
    #: traffic inflation factor (data+ack+control)/(data+ack); equals the
    #: paper's "normalised by ECMP" because ECMP carries no control traffic.
    normalized_vs_ecmp: float
    #: same, after dividing control bytes by the capacity scale (DESIGN.md §4).
    normalized_vs_ecmp_scaled: float
    loop_fraction: float


def overhead_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("ecmp", "hula", "contra"),
    workloads: Sequence[str] = ("web_search", "cache"),
    loads: Sequence[float] = (0.1, 0.6),
) -> List[ScenarioSpec]:
    """The Figure 16 traffic-overhead grid as specs."""
    return [
        ScenarioSpec(
            name=f"overhead:{workload}:{load}:{system}",
            system=system,
            topology=fattree_spec(config),
            config=config,
            policy="datacenter",
            workload=workload,
            load=load,
            seed=config.seed,
            record_paths=True,
        )
        for workload in workloads
        for load in loads
        for system in systems
    ]


def run_overhead_experiment(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("ecmp", "hula", "contra"),
    workloads: Sequence[str] = ("web_search", "cache"),
    loads: Sequence[float] = (0.1, 0.6),
    capacity_scale: float = DEFAULT_CAPACITY_SCALE,
    processes: Optional[int] = None,
) -> List[OverheadPoint]:
    """Measure the Figure 16 traffic overhead table."""
    config = config or default_config()
    results = run_grid(overhead_specs(config, systems, workloads, loads), processes)
    return to_overhead_points(results, capacity_scale)


def to_overhead_points(results: Sequence[RunResult],
                       capacity_scale: float = DEFAULT_CAPACITY_SCALE,
                       ) -> List[OverheadPoint]:
    """Project grid results onto the overhead report rows."""
    points: List[OverheadPoint] = []
    for result in results:
        summary = result.summary
        control = summary["probe_bytes"] + summary["tag_overhead_bytes"]
        goodput = summary["data_bytes"] + summary["ack_bytes"]
        total = goodput + control
        scaled_total = goodput + control / capacity_scale
        # The paper normalises each system's total traffic by ECMP's.  In its
        # testbed every system transmits (essentially) the same data volume,
        # so that equals the per-system inflation factor total/(data+ack); we
        # report the inflation factor directly so that retransmission-volume
        # differences between transports do not contaminate the
        # control-overhead comparison.
        points.append(OverheadPoint(
            workload=result.workload,
            load=result.load,
            system=result.system,
            data_bytes=summary["data_bytes"],
            ack_bytes=summary["ack_bytes"],
            probe_bytes=summary["probe_bytes"],
            tag_bytes=summary["tag_overhead_bytes"],
            total_bytes=total,
            normalized_vs_ecmp=total / goodput if goodput else 1.0,
            normalized_vs_ecmp_scaled=scaled_total / goodput if goodput else 1.0,
            loop_fraction=summary["loop_fraction"],
        ))
    return points
