"""Common machinery for the evaluation experiments.

Two tiers live here:

* the single-run helpers the seed started from — :func:`build_routing_system`
  turns a system name plus configuration into a ready
  :class:`~repro.simulator.network.RoutingSystem`, and :func:`run_simulation`
  wires a network, injects a workload and returns the statistics summary;
* the **experiment layer** every figure driver now builds on — a declarative
  :class:`ScenarioSpec` describes one (topology, system, workload, load, seed)
  point as plain data, a :class:`RunContext` executes specs while caching
  topologies, compiled policies and generated workloads, and :func:`run_grid`
  hands a list of specs to a pluggable :class:`ExecutionBackend` (inline
  :class:`SerialBackend`, process-pool :class:`PoolBackend`, or the sharded
  store-backed backend from :mod:`repro.experiments.results`), returning
  :class:`RunResult` objects in spec order;
* **spec hashing** — :func:`spec_hash` digests a spec's canonical plain-data
  form (:func:`canonical_spec`) into a stable SHA-256 key, which is what the
  persistent results store keys completed grid points by.

Because a spec is pure data (strings, numbers, tuples and the frozen
:class:`~repro.experiments.config.ExperimentConfig`), it pickles cleanly into
worker processes, and because every derived object (topology, compiled
policy, workload) is reconstructed deterministically from it, a grid run
produces byte-identical summaries whether executed serially or on any number
of workers.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import EcmpSystem, HulaSystem, ShortestPathSystem, SpainSystem
from repro.core.ast import Policy
from repro.core.builder import minimize, path, rank_tuple
from repro.core.compiler import CompiledPolicy, compile_policy
from repro.exceptions import ExperimentError
from repro.experiments.config import (ExperimentConfig, procs_from_env,
                                      sanitize_from_env)
from repro.protocol import ContraSystem
from repro.simulator import Network, StatsCollector
from repro.simulator.flow import Flow
from repro.simulator.fluid import (FLUID_SYSTEM_NAMES, FluidSimulation,
                                   FluidStats, build_path_model)
from repro.topology.abilene import abilene
from repro.topology.fattree import fattree
from repro.topology.graph import Topology
from repro.topology.leafspine import leafspine
from repro.topology.random_graphs import random_network
from repro.topology.zoo import builtin_topology
from repro.workloads import distribution_by_name, generate_workload
from repro.workloads.generator import (incast_pairs, permutation_pairs,
                                       split_senders_receivers,
                                       stream_workload)

__all__ = [
    "SimulationResult",
    "datacenter_policy",
    "wan_policy",
    "build_routing_system",
    "run_simulation",
    "SYSTEM_NAMES",
    "POLICY_BUILDERS",
    "TopologySpec",
    "LinkEvent",
    "ScenarioSpec",
    "RunResult",
    "RunContext",
    "canonical_spec",
    "spec_hash",
    "compile_group_key",
    "group_label",
    "ExecutionBackend",
    "SerialBackend",
    "PoolBackend",
    "default_backend",
    "run_grid",
    "grid_map",
    "resolve_processes",
    "default_failed_link",
]

SYSTEM_NAMES = ("ecmp", "hula", "contra", "spain", "shortest-path")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    system: str
    load: float
    workload: str
    summary: Dict[str, float]
    stats: StatsCollector
    network: Network

    @property
    def avg_fct(self) -> float:
        return self.summary["avg_fct_ms"]


def datacenter_policy() -> Policy:
    """The policy Contra runs in the fat-tree FCT experiments.

    The paper's datacenter comparison uses the least-utilized *shortest* path
    (§6.3 explains Contra carries path length as well as utilization there),
    i.e. ``minimize((path.len, path.util))``.
    """
    return minimize(rank_tuple(path.len, path.util), name="MU-datacenter")


def wan_policy() -> Policy:
    """The minimum-utilization policy used on Abilene (Figure 15, "Contra (MU)").

    Unlike the datacenter policy this is the pure bottleneck-utilization
    objective: on a WAN the whole point is that Contra may take longer detours
    around congested links, which neither shortest-path routing nor SPAIN's
    static path sets can do.
    """
    return minimize(path.util, name="MU-wan")


#: Named policy builders a ScenarioSpec can reference (a spec carries the
#: *name*, each worker compiles the policy locally and caches the result).
POLICY_BUILDERS: Dict[str, Callable[[], Policy]] = {
    "datacenter": datacenter_policy,
    "wan": wan_policy,
}


def default_failed_link(topology: Topology) -> Tuple[str, str]:
    """The aggregation–core link failed in the asymmetric experiments (§6.3)."""
    for agg in topology.switches_with_role("aggregation"):
        for neighbor in topology.switch_neighbors(agg):
            if topology.node_role(neighbor) == "core":
                return (agg, neighbor)
    raise ValueError("topology has no aggregation-core link to fail")


def build_routing_system(
    name: str,
    topology: Topology,
    config: ExperimentConfig,
    policy: Optional[Policy] = None,
    compiled: Optional[CompiledPolicy] = None,
    use_versioning: bool = True,
):
    """Instantiate one routing system by name under the shared configuration."""
    name = name.lower()
    if name == "ecmp":
        return EcmpSystem()
    if name == "shortest-path":
        return ShortestPathSystem()
    if name == "spain":
        return SpainSystem()
    if name == "hula":
        return HulaSystem(
            probe_period=config.probe_period,
            flowlet_timeout=config.flowlet_timeout,
            failure_periods=config.failure_periods,
        )
    if name == "contra":
        if compiled is None:
            compiled = compile_policy(policy if policy is not None else datacenter_policy(),
                                      topology)
        return ContraSystem(
            compiled,
            probe_period=config.probe_period,
            flowlet_timeout=config.flowlet_timeout,
            failure_periods=config.failure_periods,
            use_versioning=use_versioning,
        )
    raise ExperimentError(f"unknown routing system {name!r}; available: {SYSTEM_NAMES}")


def run_simulation(
    topology: Topology,
    system,
    flows: Sequence[Flow],
    config: ExperimentConfig,
    run_duration: Optional[float] = None,
    failed_link: Optional[Tuple[str, str]] = None,
    failure_time: float = 0.0,
    system_name: str = "",
    load: float = 0.0,
    workload_name: str = "",
    record_paths: bool = False,
    stop_after_completion: bool = False,
) -> SimulationResult:
    """Run one simulation with the shared transport/switch parameters."""
    network = Network(
        topology,
        system,
        buffer_packets=config.buffer_packets,
        host_window=config.host_window,
        host_rto=config.host_rto,
        util_window=config.util_window,
        stats=StatsCollector(record_paths=record_paths),
        transport=config.transport,
    )
    network.schedule_flows(flows)
    if failed_link is not None:
        network.fail_link(failed_link[0], failed_link[1], at_time=failure_time)
    stats = network.run(run_duration if run_duration is not None else config.run_duration,
                        stop_after_completion=stop_after_completion)
    return SimulationResult(
        system=system_name or getattr(system, "name", type(system).__name__),
        load=load,
        workload=workload_name,
        summary=stats.summary(),
        stats=stats,
        network=network,
    )


# =============================================================================
# Experiment layer: declarative scenarios and the grid runner
# =============================================================================

#: Per-link propagation delay every generator defaults to; a spec leaving
#: ``latency`` at this value means "family default".
_DEFAULT_LATENCY = 0.05


@dataclass(frozen=True)
class TopologySpec:
    """A declarative, hashable description of a topology (cache key + recipe).

    Specs are cache keys, so :meth:`build` applies **every** field that is
    meaningful for the family and raises :class:`ExperimentError` for fields
    set to a non-default value the family cannot honour — a silently dropped
    field would let two specs that *meaningfully differ* cache under distinct
    keys yet build identical networks.  (The sentinel shorthands — 0 meaning
    "family default" for ``hosts_per_switch``/``oversubscription``/``leaves``/
    ``spines`` — intentionally alias their spelled-out equivalents; a grid
    should pick one spelling to share the cache.)
    """

    family: str                         # fattree | leafspine | abilene | random | zoo
    k: int = 4                          # fat-tree arity / square leaf-spine size
    size: int = 0                       # random-graph switch count
    capacity: float = 100.0
    #: Uplink oversubscription ratio for the Clos families; 0 means the
    #: generator default (1:1, no oversubscription).
    oversubscription: float = 0.0
    #: Hosts attached per edge/leaf/PoP switch; 0 means the family default
    #: (k/2 per fat-tree edge switch, 2 per leaf, 1 per WAN PoP).
    hosts_per_switch: int = 0
    seed: int = 0
    leaves: int = 0                     # leaf-spine leaf count (0 -> k)
    spines: int = 0                     # leaf-spine spine count (0 -> k)
    latency: float = _DEFAULT_LATENCY
    name: str = ""                      # zoo: bundled topology name (nsfnet, ...)

    def _reject_unsupported(self, **used) -> None:
        """Raise if a field with a non-default value is unused by this family.

        Defaults come from the dataclass fields themselves, so changing a
        field default cannot drift out of sync with this validation.
        ``family`` is the discriminator and ``capacity`` is honoured by every
        family; everything else must be declared used or left at its default.
        """
        for spec_field in fields(self):
            if spec_field.name in ("family", "capacity"):
                continue
            if used.get(spec_field.name):
                continue
            if getattr(self, spec_field.name) != spec_field.default:
                raise ExperimentError(
                    f"TopologySpec field {spec_field.name!r}="
                    f"{getattr(self, spec_field.name)!r} "
                    f"is not supported by family {self.family!r}")

    def build(self) -> Topology:
        if self.family == "fattree":
            self._reject_unsupported(k=True, oversubscription=True,
                                     hosts_per_switch=True, latency=True)
            return fattree(self.k, capacity=self.capacity,
                           hosts_per_edge=self.hosts_per_switch or None,
                           oversubscription=self.oversubscription or 1.0,
                           latency=self.latency)
        if self.family == "leafspine":
            # k is the square-fabric shorthand; once both leaves and spines
            # are explicit it would be silently dropped, so reject it then.
            self._reject_unsupported(k=not (self.leaves and self.spines),
                                     oversubscription=True,
                                     hosts_per_switch=True, leaves=True,
                                     spines=True, latency=True)
            return leafspine(self.leaves or self.k, self.spines or self.k,
                             hosts_per_leaf=self.hosts_per_switch or 2,
                             capacity=self.capacity,
                             oversubscription=self.oversubscription or 1.0,
                             latency=self.latency)
        if self.family == "abilene":
            self._reject_unsupported(hosts_per_switch=True)
            return abilene(capacity=self.capacity,
                           hosts_per_switch=self.hosts_per_switch or 1)
        if self.family == "random":
            self._reject_unsupported(size=True, seed=True,
                                     hosts_per_switch=True, latency=True)
            if self.size < 2:
                raise ExperimentError("random topology spec needs size >= 2")
            return random_network(self.size, seed=self.seed,
                                  capacity=self.capacity,
                                  hosts_per_switch=self.hosts_per_switch,
                                  latency=self.latency)
        if self.family == "zoo":
            # Abilene's generator has per-link latencies (scaled), not a
            # single default; a generic latency would be silently dropped.
            self._reject_unsupported(name=True, hosts_per_switch=True,
                                     latency=self.name != "abilene")
            if not self.name:
                raise ExperimentError("zoo topology spec needs a builtin name")
            kwargs = dict(hosts_per_switch=self.hosts_per_switch or 1,
                          default_capacity=self.capacity)
            if self.name != "abilene":
                kwargs["default_latency"] = self.latency
            return builtin_topology(self.name, **kwargs)
        raise ExperimentError(f"unknown topology family {self.family!r}")


@dataclass(frozen=True)
class LinkEvent:
    """One scheduled topology event: fail or recover the (a, b) link at ``time``.

    Events are plain picklable data, so a spec can carry an arbitrary
    fail/recover schedule (multi-failure sequences, fail→recover sweeps)
    through the grid runner unchanged.
    """

    time: float
    a: str
    b: str
    action: str = "fail"                # "fail" | "recover"


@dataclass(frozen=True)
class ScenarioSpec:
    """One (system × topology × workload × load × seed) grid point as pure data.

    Everything a worker process needs to reproduce the run deterministically
    is carried by value; nothing is pickled that is not a plain string,
    number, tuple or frozen dataclass.
    """

    name: str
    system: str
    topology: TopologySpec
    config: ExperimentConfig
    policy: str = "datacenter"          # key into POLICY_BUILDERS
    workload: str = "web_search"
    load: float = 0.0
    seed: int = 1

    #: Host transport mode override ("fixed" | "slowstart" | "paced"); None
    #: uses the config's transport.  Pure data, so transport grids are plain
    #: spec grids with the full determinism contract.
    transport: Optional[str] = None
    #: Receiver ACK coalescing: one cumulative ACK per this many in-order
    #: segments (delayed-ACK analogue; out-of-order, duplicate and completing
    #: segments always ACK immediately).  1 — the default — is the historical
    #: one-ACK-per-segment wire behaviour, byte-identical to before the knob.
    ack_every: int = 1

    # Traffic shape: Poisson flow arrivals ("flows"), N-to-1 fan-in flow
    # arrivals ("incast"), derangement-paired flow arrivals ("permutation"),
    # or constant-rate UDP streams between host pairs ("streams", the
    # Figure 14 traffic).
    traffic: str = "flows"
    workload_host_rate: Optional[float] = None   # per-sender offered rate override
    #: Flow-size distribution scale override (sensitivity knob); None uses the
    #: config's per-workload scale (1.0 for non-paper workloads).
    workload_scale: Optional[float] = None
    senders: Optional[Tuple[str, ...]] = None
    receivers: Optional[Tuple[str, ...]] = None
    pair_senders_receivers: bool = False
    #: Incast shape: how many senders fan in (None = every other host) and to
    #: which host (None = a seed-deterministic choice).
    incast_fanin: Optional[int] = None
    incast_receiver: Optional[str] = None
    stream_rate: Optional[float] = None          # packets/ms per stream
    stream_start: float = 0.5
    streams_per_pair: int = 1

    # Failure/recovery schedule: an ordered tuple of LinkEvents (or plain
    # (time, a, b, action) tuples).  The single-failure fields below remain
    # as a compatibility shim and are folded into the schedule at run time.
    events: Tuple[LinkEvent, ...] = ()
    fail_agg_core_link: bool = False
    failed_link: Optional[Tuple[str, str]] = None
    failure_time: float = 0.0

    # Protocol overrides (the ablation experiments sweep these).
    probe_period: Optional[float] = None
    flowlet_timeout: Optional[float] = None
    use_versioning: bool = True
    #: Clamp the probe period to the compiler's RTT-derived bound (§5.2) —
    #: required on WANs whose detour paths exceed the datacenter default.
    respect_compiled_probe_period: bool = False

    # Measurement.
    record_paths: bool = False
    stop_after_completion: bool = False
    run_duration: Optional[float] = None
    cdf_points: Tuple[float, ...] = ()           # collect the queue-length CDF
    collect_throughput: bool = False             # collect the throughput series

    # Data path selection (v3 hash fields; at these defaults they are omitted
    # from the canonical form, so packet-default spec hashes predating the
    # fields keep resolving in existing results stores).
    #: Which simulation plane executes the point: "packet" (the default and
    #: the validation oracle) or "fluid" (epoch-driven max-min rate
    #: allocation — see ARCHITECTURE.md §7 for what it does and doesn't model).
    flow_model: str = "packet"
    #: Opt-in per-switch flow-cardinality HyperLogLog sketch (fluid only:
    #: the packet plane never feeds the sketch, so it would silently report
    #: nothing there).
    flow_sketch: bool = False
    #: Extra FCT percentiles reported as ``p<q>_fct_ms`` summary keys
    #: (both planes; the fidelity scenario compares medians through this).
    fct_percentiles: Tuple[float, ...] = ()


# ---------------------------------------------------------------- spec hashing

#: Bumped whenever the canonical spec encoding changes shape, so stale results
#: stores can never satisfy a lookup from a newer encoder.  v2: ScenarioSpec
#: gained ``ack_every``.  v3: ``flow_model`` / ``flow_sketch`` /
#: ``fct_percentiles`` — encoded *only* when set away from their defaults
#: (and the version tag stays 2 when none is), so every pre-existing
#: packet-default hash keeps resolving in long-lived results stores.
_SPEC_HASH_VERSION = 3

#: The v3 fields and the default under which each is omitted from the
#: canonical form.  Appending to this dict (never mutating an entry) is the
#: established pattern for adding spec fields without re-keying old stores.
_V3_FIELDS: Dict[str, object] = {
    "flow_model": "packet",
    "flow_sketch": False,
    "fct_percentiles": (),
}


def canonical_spec(spec: ScenarioSpec) -> Dict:
    """The canonical plain-data form of a spec used for hashing.

    Canonicalization rules (the results-store contract, see ARCHITECTURE.md):

    * every dataclass (the spec itself, its :class:`TopologySpec`,
      :class:`~repro.experiments.config.ExperimentConfig` and
      :class:`LinkEvent` entries) becomes a plain dict of its fields;
    * ``events`` entries given as bare ``(time, a, b, action)`` tuples are
      normalized to :class:`LinkEvent` first, so the two accepted spellings
      of the same schedule hash identically;
    * the :data:`_V3_FIELDS` entries are dropped when equal to their default
      (a default-valued new field must not re-key every old store record);
    * tuples become JSON arrays; nothing else is transformed — in particular
      no *other* field is ever dropped, so two specs that differ anywhere
      (including the config) never collide by construction.
    """
    events = tuple(event if isinstance(event, LinkEvent) else LinkEvent(*event)
                   for event in spec.events)
    canonical = asdict(replace(spec, events=events))
    for name, default in _V3_FIELDS.items():
        if canonical[name] == default:
            del canonical[name]
    return canonical


def spec_hash(spec: ScenarioSpec) -> str:
    """A stable content hash of one grid point.

    The canonical form is serialized as compact JSON with sorted keys and
    hashed with SHA-256: the digest is identical across processes,
    interpreter invocations and platforms (CPython's shortest-repr float
    serialization is deterministic, and no randomized ``hash()`` is
    involved), which is what makes results stores shardable and resumable.

    Specs whose v3 fields all sit at their defaults hash under version tag 2
    — byte-identical payloads to the pre-v3 encoder — so resuming an old
    packet results store under the new encoder skips exactly the points it
    already holds.
    """
    canonical = canonical_spec(spec)
    version = _SPEC_HASH_VERSION \
        if any(name in canonical for name in _V3_FIELDS) else 2
    payload = json.dumps({"v": version, "spec": canonical},
                         sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def compile_group_key(spec: ScenarioSpec) -> Tuple[str, TopologySpec]:
    """The locality group of one grid point: its compile-cache footprint.

    Mirrors :meth:`RunContext.compiled_policy`'s cache key: points that
    compile a policy group under ``(policy, topology)``; points that never
    touch the compiler (non-Contra systems without
    ``respect_compiled_probe_period``) group under ``("", topology)`` — they
    still share the topology cache.  The sweep coordinator clusters points
    of one group onto one worker so a ~20 s k=32 compile is paid once per
    worker, not once per point.
    """
    if spec.system == "contra" or spec.respect_compiled_probe_period:
        return (spec.policy, spec.topology)
    return ("", spec.topology)


def group_label(group: Tuple[str, TopologySpec]) -> str:
    """A short human-readable name for a compile group (status displays)."""
    policy, topo = group
    detail = topo.name or (f"k={topo.k}" if topo.family in ("fattree", "leafspine")
                           else f"size={topo.size}" if topo.family == "random" else "")
    label = f"{topo.family}({detail})" if detail else topo.family
    return f"{label}+{policy}" if policy else label


@dataclass
class RunResult:
    """The per-spec outcome a grid run returns (picklable, no live objects)."""

    name: str
    system: str
    workload: str
    load: float
    seed: int
    summary: Dict[str, float]
    queue_cdf: Optional[Dict[float, float]] = None
    throughput: Optional[List[Tuple[float, float]]] = None


class RunContext:
    """Per-process execution context with memoized derived state.

    Topologies, compiled policies (keyed by ``(policy, topology)``) and
    generated workloads are deterministic functions of the spec, so each
    worker builds them at most once however many grid points share them —
    Contra is no longer recompiled for every (system, load, seed) point.
    """

    def __init__(self, sanitize: Optional[bool] = None) -> None:
        self._topologies: Dict[TopologySpec, Topology] = {}
        self._compiled: Dict[Tuple[str, TopologySpec], CompiledPolicy] = {}
        self._workloads: Dict[Tuple, object] = {}
        #: Sanitizer plane opt-in: explicit argument wins, else the
        #: CONTRA_SANITIZE environment variable (resolved here, once per
        #: context, so worker processes pick it up from their environment).
        #: Deliberately NOT part of spec_hash — sanitizing never re-keys runs.
        self._sanitize = sanitize if sanitize is not None else sanitize_from_env()
        #: Test/race-detector hook, called with each freshly built Network
        #: before its run starts (e.g. to install the race permuter).
        self.network_hook: Optional[Callable[[Network], None]] = None

    # ------------------------------------------------------------------ caches

    def topology(self, spec: TopologySpec) -> Topology:
        topology = self._topologies.get(spec)
        if topology is None:
            topology = self._topologies[spec] = spec.build()
        return topology

    def compiled_policy(self, policy_name: str, topo_spec: TopologySpec) -> CompiledPolicy:
        key = (policy_name, topo_spec)
        compiled = self._compiled.get(key)
        if compiled is None:
            try:
                builder = POLICY_BUILDERS[policy_name]
            except KeyError:
                raise ExperimentError(
                    f"unknown policy {policy_name!r}; available: {sorted(POLICY_BUILDERS)}"
                ) from None
            compiled = compile_policy(builder(), self.topology(topo_spec))
            self._compiled[key] = compiled
        return compiled

    def _workload_scale(self, spec: ScenarioSpec) -> float:
        if spec.workload_scale is not None:
            return spec.workload_scale
        config = spec.config
        if spec.workload == "web_search":
            return config.websearch_scale
        if spec.workload == "cache":
            return config.cache_scale
        return 1.0

    def _flows(self, spec: ScenarioSpec, topology: Topology) -> Sequence[Flow]:
        config = spec.config
        scale = self._workload_scale(spec)

        senders, receivers = spec.senders, spec.receivers
        paired = spec.pair_senders_receivers
        load = spec.load
        if spec.traffic == "incast":
            incast_senders, incast_receivers = incast_pairs(
                topology, receiver=spec.incast_receiver, fanin=spec.incast_fanin,
                seed=spec.seed)
            senders, receivers = tuple(incast_senders), tuple(incast_receivers)
            paired = True
            # Incast load targets the *receiver* access link: N senders share
            # the offered load so the fan-in sums to ``load`` at the sink.
            load = spec.load / len(senders)
        elif spec.traffic == "permutation":
            perm_senders, perm_receivers = permutation_pairs(topology, seed=spec.seed)
            senders, receivers = tuple(perm_senders), tuple(perm_receivers)
            paired = True

        key = (spec.topology, spec.traffic, spec.workload, scale, spec.load,
               spec.seed, config.workload_duration,
               spec.workload_host_rate or config.host_capacity,
               senders, receivers, paired,
               spec.incast_fanin, spec.incast_receiver, config.warmup)
        cached = self._workloads.get(key)
        if cached is None:
            distribution = distribution_by_name(spec.workload, scale)
            cached = generate_workload(
                topology, distribution, load=load,
                duration=config.workload_duration,
                host_capacity=spec.workload_host_rate or config.host_capacity,
                seed=spec.seed,
                senders=list(senders) if senders else None,
                receivers=list(receivers) if receivers else None,
                pair_senders_receivers=paired,
                start_after=config.warmup,
            )
            self._workloads[key] = cached
        return cached.flows

    # --------------------------------------------------------------- execution

    @staticmethod
    def _validate_traffic_fields(spec: ScenarioSpec) -> None:
        """Reject spec fields the selected traffic shape would silently ignore."""
        if spec.traffic in ("incast", "permutation") and (
                spec.senders is not None or spec.receivers is not None
                or spec.pair_senders_receivers):
            raise ExperimentError(
                f"traffic={spec.traffic!r} computes its own sender/receiver "
                f"pairing; explicit senders/receivers/pair_senders_receivers "
                f"would be ignored")
        if spec.traffic != "incast" and (
                spec.incast_fanin is not None or spec.incast_receiver is not None):
            raise ExperimentError(
                f"incast_fanin/incast_receiver require traffic='incast', "
                f"got traffic={spec.traffic!r}")

    @staticmethod
    def _validate_fluid_fields(spec: ScenarioSpec) -> None:
        """Reject spec fields the fluid plane would silently ignore.

        The fluid model has no segments, windows, probes or queues, so every
        packet-plane knob that would change nothing must fail loudly — a
        silently dropped field would let two meaningfully different specs
        produce identical runs (the same contract
        :meth:`TopologySpec._reject_unsupported` enforces for topologies).
        """
        if spec.system not in FLUID_SYSTEM_NAMES:
            raise ExperimentError(
                f"flow_model='fluid' does not support system {spec.system!r}; "
                f"available: {FLUID_SYSTEM_NAMES}")
        if spec.traffic == "streams":
            raise ExperimentError(
                "flow_model='fluid' models flow arrivals, not constant-rate "
                "UDP streams; use the packet plane for traffic='streams'")
        rejected = [
            ("transport", spec.transport, None),
            ("ack_every", spec.ack_every, 1),
            ("record_paths", spec.record_paths, False),
            ("cdf_points", spec.cdf_points, ()),
            ("collect_throughput", spec.collect_throughput, False),
            ("probe_period", spec.probe_period, None),
            ("flowlet_timeout", spec.flowlet_timeout, None),
            ("respect_compiled_probe_period",
             spec.respect_compiled_probe_period, False),
            ("use_versioning", spec.use_versioning, True),
        ]
        for name, value, default in rejected:
            if value != default:
                raise ExperimentError(
                    f"spec field {name}={value!r} has no fluid-plane "
                    f"equivalent (packets, probes and queues are not "
                    f"modelled); leave it at its default or use "
                    f"flow_model='packet'")

    #: Expected flow count above which the fluid plane streams the workload
    #: lazily (seed-deterministic, O(senders) memory) instead of
    #: materializing the eager list.  The two draws differ, so the threshold
    #: is part of the determinism contract — never derive it from available
    #: memory or core count.
    _STREAM_THRESHOLD = 100_000

    def _fluid_flows(self, spec: ScenarioSpec, topology: Topology):
        """The fluid run's flow source: eager list, or a lazy stream at scale."""
        config = spec.config
        if spec.traffic == "flows":
            scale = self._workload_scale(spec)
            distribution = distribution_by_name(spec.workload, scale)
            if spec.senders is not None:
                sender_count = len(spec.senders)
            else:
                sender_count = len(split_senders_receivers(topology)[0])
            host_rate = spec.workload_host_rate or config.host_capacity
            expected = (sender_count * spec.load * host_rate
                        / distribution.mean() * config.workload_duration)
            if expected >= self._STREAM_THRESHOLD:
                stream = stream_workload(
                    topology, distribution, load=spec.load,
                    duration=config.workload_duration,
                    host_capacity=host_rate, seed=spec.seed,
                    senders=list(spec.senders) if spec.senders else None,
                    receivers=list(spec.receivers) if spec.receivers else None,
                    pair_senders_receivers=spec.pair_senders_receivers,
                    start_after=config.warmup)
                return iter(stream)
        return self._flows(spec, topology)

    def _run_fluid(self, spec: ScenarioSpec) -> RunResult:
        self._validate_traffic_fields(spec)
        self._validate_fluid_fields(spec)
        topology = self.topology(spec.topology)
        config = spec.config
        model = build_path_model(spec.system, topology, policy=spec.policy)
        simulation = FluidSimulation(
            topology, model,
            stats=FluidStats(fct_percentiles=spec.fct_percentiles,
                             flow_sketch=spec.flow_sketch),
            host_window=config.host_window,
            sanitize=self._sanitize,
        )
        simulation.add_flows(self._fluid_flows(spec, topology))
        for event in self._link_events(spec, topology):
            if event.action == "fail":
                simulation.fail_link(event.a, event.b, at_time=event.time)
            elif event.action == "recover":
                simulation.recover_link(event.a, event.b, at_time=event.time)
            else:
                raise ExperimentError(
                    f"unknown link event action {event.action!r} "
                    f"(expected 'fail' or 'recover')")
        run_duration = spec.run_duration if spec.run_duration is not None \
            else config.run_duration
        stats = simulation.run(run_duration,
                               stop_after_completion=spec.stop_after_completion)
        return RunResult(
            name=spec.name,
            system=spec.system,
            workload=spec.workload,
            load=spec.load,
            seed=spec.seed,
            summary=stats.summary(),
        )

    def run(self, spec: ScenarioSpec) -> RunResult:
        if spec.flow_model == "fluid":
            return self._run_fluid(spec)
        if spec.flow_model != "packet":
            raise ExperimentError(
                f"unknown flow model {spec.flow_model!r} "
                f"(expected 'packet' or 'fluid')")
        if spec.flow_sketch:
            raise ExperimentError(
                "flow_sketch requires flow_model='fluid': the packet plane "
                "never feeds the cardinality sketch, so the option would "
                "silently report nothing")
        self._validate_traffic_fields(spec)
        topology = self.topology(spec.topology)
        config = spec.config

        compiled: Optional[CompiledPolicy] = None
        if spec.system == "contra" or spec.respect_compiled_probe_period:
            compiled = self.compiled_policy(spec.policy, spec.topology)

        overrides = {}
        if spec.probe_period is not None:
            overrides["probe_period"] = spec.probe_period
        if spec.flowlet_timeout is not None:
            overrides["flowlet_timeout"] = spec.flowlet_timeout
        if spec.respect_compiled_probe_period and compiled is not None:
            overrides["probe_period"] = max(
                overrides.get("probe_period", config.probe_period), compiled.probe_period)
        if overrides:
            config = replace(config, **overrides)

        system = build_routing_system(spec.system, topology, config, compiled=compiled,
                                      use_versioning=spec.use_versioning)

        network = Network(
            topology, system,
            buffer_packets=config.buffer_packets,
            host_window=config.host_window,
            host_rto=config.host_rto,
            util_window=config.util_window,
            stats=StatsCollector(record_paths=spec.record_paths,
                                 fct_percentiles=spec.fct_percentiles),
            transport=spec.transport if spec.transport is not None else config.transport,
            host_ack_every=spec.ack_every,
            sanitize=self._sanitize,
        )
        if self.network_hook is not None:
            self.network_hook(network)

        run_duration = spec.run_duration if spec.run_duration is not None \
            else config.run_duration
        if spec.traffic in ("flows", "incast", "permutation"):
            network.schedule_flows(self._flows(spec, topology))
        elif spec.traffic == "streams":
            self._schedule_streams(spec, topology, network, run_duration)
        else:
            raise ExperimentError(f"unknown traffic shape {spec.traffic!r}")

        for event in self._link_events(spec, topology):
            if event.action == "fail":
                network.fail_link(event.a, event.b, at_time=event.time)
            elif event.action == "recover":
                network.recover_link(event.a, event.b, at_time=event.time)
            else:
                raise ExperimentError(
                    f"unknown link event action {event.action!r} "
                    f"(expected 'fail' or 'recover')")

        stats = network.run(run_duration,
                            stop_after_completion=spec.stop_after_completion)
        return RunResult(
            name=spec.name,
            system=spec.system,
            workload=spec.workload,
            load=spec.load,
            seed=spec.seed,
            summary=stats.summary(),
            queue_cdf=stats.queue_length_cdf(spec.cdf_points) if spec.cdf_points else None,
            throughput=stats.throughput_series() if spec.collect_throughput else None,
        )

    def _link_events(self, spec: ScenarioSpec, topology: Topology) -> List[LinkEvent]:
        """The spec's full event schedule, legacy single-failure fields folded in."""
        events = [event if isinstance(event, LinkEvent) else LinkEvent(*event)
                  for event in spec.events]
        failed_link = spec.failed_link
        if failed_link is None and spec.fail_agg_core_link:
            failed_link = default_failed_link(topology)
        if failed_link is not None:
            events.append(LinkEvent(spec.failure_time, failed_link[0], failed_link[1],
                                    "fail"))
        for event in events:
            if not topology.has_link(event.a, event.b):
                raise ExperimentError(
                    f"link event references unknown link {event.a!r}-{event.b!r}")
        return sorted(events, key=lambda event: event.time)

    def _schedule_streams(self, spec: ScenarioSpec, topology: Topology,
                          network: Network, run_duration: float) -> None:
        rate = spec.stream_rate
        if rate is None:
            rate = 0.06 * spec.config.host_capacity
        if spec.senders is not None and spec.receivers is not None:
            pairs = list(zip(spec.senders, spec.receivers))
        else:
            hosts = topology.hosts
            half = len(hosts) // 2
            pairs = list(zip(hosts[:half], hosts[half:]))

        def start_streams() -> None:
            for src, dst in pairs:
                for _ in range(spec.streams_per_pair):
                    network.hosts[src].start_constant_stream(dst, rate, run_duration)

        network.sim.call_at(spec.stream_start, start_streams)


# ----------------------------------------------------------------- backends

#: Worker-process context, created lazily on first task (survives across
#: tasks of one pool, so caches amortize over every spec the worker executes).
_WORKER_CONTEXT: Optional[RunContext] = None


def _worker_run(spec: ScenarioSpec) -> RunResult:
    global _WORKER_CONTEXT
    if _WORKER_CONTEXT is None:
        _WORKER_CONTEXT = RunContext()
    return _WORKER_CONTEXT.run(spec)


def _worker_run_timed(spec: ScenarioSpec) -> Tuple[RunResult, float]:
    started = time.perf_counter()
    result = _worker_run(spec)
    return result, time.perf_counter() - started


def resolve_processes(processes: Optional[int], tasks: int) -> int:
    """How many workers to use: explicit argument, else $CONTRA_PROCS, else 1.

    The default stays serial: grid results are byte-identical either way, and
    forking only pays off once the per-point runtime exceeds worker startup.
    """
    if processes is None:
        try:
            processes = int(procs_from_env())
        except ValueError:
            processes = 1
    if processes < 1:
        processes = os.cpu_count() or 1
    return max(1, min(processes, tasks))


class ExecutionBackend:
    """How a grid of specs gets executed.

    Backends are interchangeable behind :func:`run_grid`: given the same
    specs, every backend returns the same :class:`RunResult` list in spec
    order (the determinism contract).  ``serial`` and ``pool`` live here;
    the store-coupled ``sharded`` backend (deterministic 1/n slices plus
    skip-complete resume) lives in :mod:`repro.experiments.results`, and
    the lease-coordinated work-stealing ``CoordinatedBackend`` (dynamic
    multi-worker drain of one store) in
    :mod:`repro.experiments.coordinator`.

    Subclasses override :meth:`run_iter_timed` (preferred — it lets wrappers
    stream results as they complete, e.g. for per-point persistence, with
    each point's wall-clock measured where it actually executed) or
    :meth:`run`; the defaults delegate to one another.
    """

    def run(self, specs: Sequence[ScenarioSpec]) -> List[RunResult]:
        return list(self.run_iter(specs))

    def run_iter(self, specs: Sequence[ScenarioSpec]):
        """Yield results in spec order, as each point completes."""
        return (result for result, _ in self.run_iter_timed(specs))

    def run_iter_timed(self, specs: Sequence[ScenarioSpec]):
        """Yield ``(result, wall_s)`` pairs in spec order.

        The default measures on the consumer side — exact for inline
        backends, an arrival-gap approximation for anything that computes
        ahead of the consumer; such backends should override this with
        in-worker measurement.
        """
        iterator = iter(self.run(specs))
        while True:
            started = time.perf_counter()
            try:
                result = next(iterator)
            except StopIteration:
                return
            yield result, time.perf_counter() - started


class SerialBackend(ExecutionBackend):
    """Run every spec inline in this process, through one shared context."""

    def __init__(self, context: Optional[RunContext] = None):
        self._context = context

    def run_iter_timed(self, specs: Sequence[ScenarioSpec]):
        context = self._context if self._context is not None else RunContext()
        for spec in specs:
            started = time.perf_counter()
            result = context.run(spec)
            yield result, time.perf_counter() - started


class PoolBackend(ExecutionBackend):
    """Fan specs across a process pool; falls back to serial for tiny grids."""

    def __init__(self, processes: Optional[int] = None):
        self.processes = processes

    def run_iter_timed(self, specs: Sequence[ScenarioSpec]):
        specs = list(specs)
        if not specs:
            return
        workers = resolve_processes(self.processes, len(specs))
        if workers <= 1:
            yield from SerialBackend().run_iter_timed(specs)
            return
        chunksize = max(1, len(specs) // workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            # pool.map yields in spec order as chunks complete, so a
            # streaming consumer sees results well before the grid finishes;
            # wall-clock is measured inside the worker, so per-point costs
            # are real compute, not consumer-side arrival gaps.
            yield from pool.map(_worker_run_timed, specs, chunksize=chunksize)


def default_backend(processes: Optional[int] = None, tasks: int = 0,
                    context: Optional[RunContext] = None) -> ExecutionBackend:
    """The backend ``run_grid`` uses when none is supplied explicitly."""
    if resolve_processes(processes, tasks) <= 1:
        return SerialBackend(context)
    return PoolBackend(processes)


def run_grid(specs: Sequence[ScenarioSpec], processes: Optional[int] = None,
             context: Optional[RunContext] = None,
             backend: Optional[ExecutionBackend] = None) -> List[RunResult]:
    """Execute every spec through an :class:`ExecutionBackend`, in spec order.

    With no explicit ``backend``, ``processes=None`` consults
    ``$CONTRA_PROCS`` (default serial) and ``processes=0`` uses every core.
    Results are returned in input order regardless of completion order, and
    are byte-identical whichever backend executes them.
    """
    specs = list(specs)
    if not specs:
        return []
    if backend is None:
        backend = default_backend(processes, len(specs), context)
    return backend.run(specs)


def grid_map(fn: Callable, items: Sequence, processes: Optional[int] = None) -> List:
    """Map a picklable module-level function over items, optionally in a pool.

    The compile-scalability sweep uses this for (topology, policy) compile
    jobs, which carry no simulation state.
    """
    items = list(items)
    if not items:
        return []
    workers = resolve_processes(processes, len(items))
    if workers <= 1:
        return [fn(item) for item in items]
    chunksize = max(1, len(items) // workers)
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, items, chunksize=chunksize))
