"""Common machinery for the evaluation experiments.

:func:`build_routing_system` turns a system name (``ecmp``, ``hula``,
``contra``, ``spain``, ``shortest-path``) plus an experiment configuration into
a ready :class:`~repro.simulator.network.RoutingSystem`; :func:`run_simulation`
wires a network, injects the workload and optional failures, runs it and
returns the statistics summary.  Every experiment driver builds on these two
functions so that all systems are compared under identical conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines import EcmpSystem, HulaSystem, ShortestPathSystem, SpainSystem
from repro.core.ast import Policy
from repro.core.builder import minimize, path, rank_tuple
from repro.core.compiler import CompiledPolicy, compile_policy
from repro.exceptions import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.protocol import ContraSystem
from repro.simulator import Network, StatsCollector
from repro.simulator.flow import Flow
from repro.topology.graph import Topology
from repro.workloads import EmpiricalCDF, WorkloadSpec, generate_workload

__all__ = [
    "SimulationResult",
    "datacenter_policy",
    "wan_policy",
    "build_routing_system",
    "run_simulation",
    "SYSTEM_NAMES",
]

SYSTEM_NAMES = ("ecmp", "hula", "contra", "spain", "shortest-path")


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    system: str
    load: float
    workload: str
    summary: Dict[str, float]
    stats: StatsCollector
    network: Network

    @property
    def avg_fct(self) -> float:
        return self.summary["avg_fct_ms"]


def datacenter_policy() -> Policy:
    """The policy Contra runs in the fat-tree FCT experiments.

    The paper's datacenter comparison uses the least-utilized *shortest* path
    (§6.3 explains Contra carries path length as well as utilization there),
    i.e. ``minimize((path.len, path.util))``.
    """
    return minimize(rank_tuple(path.len, path.util), name="MU-datacenter")


def wan_policy() -> Policy:
    """The minimum-utilization policy used on Abilene (Figure 15, "Contra (MU)").

    Unlike the datacenter policy this is the pure bottleneck-utilization
    objective: on a WAN the whole point is that Contra may take longer detours
    around congested links, which neither shortest-path routing nor SPAIN's
    static path sets can do.
    """
    return minimize(path.util, name="MU-wan")


def build_routing_system(
    name: str,
    topology: Topology,
    config: ExperimentConfig,
    policy: Optional[Policy] = None,
    compiled: Optional[CompiledPolicy] = None,
):
    """Instantiate one routing system by name under the shared configuration."""
    name = name.lower()
    if name == "ecmp":
        return EcmpSystem()
    if name == "shortest-path":
        return ShortestPathSystem()
    if name == "spain":
        return SpainSystem()
    if name == "hula":
        return HulaSystem(
            probe_period=config.probe_period,
            flowlet_timeout=config.flowlet_timeout,
            failure_periods=config.failure_periods,
        )
    if name == "contra":
        if compiled is None:
            compiled = compile_policy(policy if policy is not None else datacenter_policy(),
                                      topology)
        return ContraSystem(
            compiled,
            probe_period=config.probe_period,
            flowlet_timeout=config.flowlet_timeout,
            failure_periods=config.failure_periods,
        )
    raise ExperimentError(f"unknown routing system {name!r}; available: {SYSTEM_NAMES}")


def run_simulation(
    topology: Topology,
    system,
    flows: Sequence[Flow],
    config: ExperimentConfig,
    run_duration: Optional[float] = None,
    failed_link: Optional[Tuple[str, str]] = None,
    failure_time: float = 0.0,
    system_name: str = "",
    load: float = 0.0,
    workload_name: str = "",
    record_paths: bool = False,
) -> SimulationResult:
    """Run one simulation with the shared transport/switch parameters."""
    network = Network(
        topology,
        system,
        buffer_packets=config.buffer_packets,
        host_window=config.host_window,
        host_rto=config.host_rto,
        util_window=config.util_window,
        stats=StatsCollector(record_paths=record_paths),
    )
    network.schedule_flows(flows)
    if failed_link is not None:
        network.fail_link(failed_link[0], failed_link[1], at_time=failure_time)
    stats = network.run(run_duration if run_duration is not None else config.run_duration)
    return SimulationResult(
        system=system_name or getattr(system, "name", type(system).__name__),
        load=load,
        workload=workload_name,
        summary=stats.summary(),
        stats=stats,
        network=network,
    )
