"""Compiler scalability experiments (Figures 9 and 10).

Figure 9 measures compilation time and Figure 10 the per-switch state of the
generated programs, both as a function of topology size (20–500 switches) for
three policies:

* **MU** — minimum utilization: no regexes, one metric;
* **WP** — waypointing: three regular expressions, one metric;
* **CA** — congestion-aware routing: no regexes, non-isotonic, two metrics.

The driver sweeps fat-trees and random networks, compiles each (policy,
topology) pair and records wall-clock compile time plus the maximum per-switch
state estimate.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.ast import Policy
from repro.core.builder import if_, inf, matches, minimize, path
from repro.core.compiler import CompileOptions, compile_policy
from repro.core.policies import CA, MU
from repro.topology.fattree import fattree_for_switch_count
from repro.topology.graph import Topology
from repro.topology.random_graphs import random_network

__all__ = [
    "ScalabilityPoint",
    "scalability_policies",
    "waypoint_policy_for",
    "run_scalability_sweep",
    "FATTREE_SIZES",
    "RANDOM_SIZES",
]

#: The paper's Figure 9a/10a x-axis (switch counts of growing fat-trees).
FATTREE_SIZES = (20, 125, 245, 405, 500)
#: The paper's Figure 9b/10b x-axis.
RANDOM_SIZES = (100, 200, 300, 400, 500)


@dataclass
class ScalabilityPoint:
    """One measurement: a (topology family, size, policy) triple."""

    family: str
    size: int
    actual_switches: int
    policy: str
    compile_time_s: float
    max_state_kb: float
    pg_nodes: int
    pg_edges: int
    num_probe_ids: int


def waypoint_policy_for(topology: Topology, waypoints: int = 2) -> Policy:
    """The WP policy instantiated with concrete waypoint switches of a topology.

    WP uses three regular expressions: a preferred waypoint group, a backup
    waypoint, and the fallback pattern — mirroring the paper's description of
    a waypointing policy with three regexes.
    """
    switches = topology.switches
    chosen = switches[len(switches) // 2: len(switches) // 2 + max(1, waypoints)]
    if len(chosen) < 2:
        chosen = switches[:2] if len(switches) >= 2 else switches
    first, second = chosen[0], chosen[-1]
    expression = if_(matches(f".* {first} .*"), path.util,
                     if_(matches(f".* {second} .*"), path.util,
                         if_(matches(".*"), inf, inf)))
    return minimize(expression, name="WP")


def scalability_policies(topology: Topology) -> Dict[str, Policy]:
    """The three policies of the Figure 9/10 sweep, bound to a topology."""
    return {
        "MU": MU(),
        "WP": waypoint_policy_for(topology),
        "CA": CA(),
    }


def _compile_one(task: Tuple[str, int, str, int, Optional[CompileOptions]]) -> ScalabilityPoint:
    """Compile one (family, size, policy) point; module-level for pool pickling."""
    family, size, policy_name, seed, options = task
    topology = _build_topology(family, size, seed)
    policy = scalability_policies(topology)[policy_name]
    started = time.perf_counter()
    compiled = compile_policy(policy, topology, options)
    elapsed = time.perf_counter() - started
    return ScalabilityPoint(
        family=family,
        size=size,
        actual_switches=len(topology.switches),
        policy=policy_name,
        compile_time_s=elapsed,
        max_state_kb=compiled.max_state_kb(),
        pg_nodes=compiled.product_graph.num_nodes,
        pg_edges=compiled.product_graph.num_edges,
        num_probe_ids=compiled.num_probe_ids,
    )


def run_scalability_sweep(
    families: Sequence[str] = ("fattree", "random"),
    fattree_sizes: Sequence[int] = FATTREE_SIZES,
    random_sizes: Sequence[int] = RANDOM_SIZES,
    policies: Optional[Sequence[str]] = None,
    options: Optional[CompileOptions] = None,
    seed: int = 0,
    processes: Optional[int] = None,
) -> List[ScalabilityPoint]:
    """Compile every (family, size, policy) combination and measure it.

    Compile jobs are independent, so the sweep distributes them through
    :func:`~repro.experiments.runner.grid_map` (``processes=`` /
    ``$CONTRA_PROCS``); note that wall-clock compile *times* are only
    comparable within a run when executed serially on an idle machine.
    """
    from repro.experiments.runner import grid_map

    if policies is None:
        policies = ("MU", "WP", "CA")
    tasks = [
        (family, size, policy_name, seed, options)
        for family in families
        for size in (fattree_sizes if family == "fattree" else random_sizes)
        for policy_name in policies
    ]
    return grid_map(_compile_one, tasks, processes)


def _build_topology(family: str, size: int, seed: int) -> Topology:
    if family == "fattree":
        return fattree_for_switch_count(size)
    if family == "random":
        return random_network(size, seed=seed, degree=4)
    raise ValueError(f"unknown topology family {family!r}")
