"""Failure and recovery experiments (Figure 14 and the scenario-diversity runs).

The paper sends constant-rate UDP traffic across a fat-tree, fails an
aggregation–core link mid-run, and plots the aggregate received throughput
over time: both Contra and Hula detect the failure within a few probe periods
and recover the throughput within about a millisecond.

Three drivers live here, all executing through the grid runner:

* :func:`run_failure_recovery` — the Figure 14 timeline (single permanent
  failure on a fat-tree) plus measured detection and recovery delays;
* :func:`run_recovery_sweep` — a fail→recover schedule on a (non-square)
  leaf-spine: throughput dips at the failure and must return to the baseline
  after the link comes back (§6.3's "and back" half that a permanent failure
  cannot exercise);
* :func:`run_multi_failure` — a sequence of distant link failures on a
  Topology-Zoo WAN (the Crux-style scenario), comparing how static and
  probe-driven systems degrade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.fct import fattree_spec
from repro.experiments.runner import (
    LinkEvent,
    RunResult,
    ScenarioSpec,
    TopologySpec,
    run_grid,
)

__all__ = [
    "RecoveryResult",
    "run_failure_recovery",
    "RecoverySweepResult",
    "run_recovery_sweep",
    "MULTI_FAILURE_DEFAULT_EVENTS",
    "run_multi_failure",
]


@dataclass
class RecoveryResult:
    """Throughput timeline around a link failure for one routing system."""

    system: str
    failure_time: float
    #: (time ms, delivered packets/ms) series, one entry per millisecond bin.
    throughput: List[Tuple[float, float]]
    baseline_rate: float
    #: Time (ms after failure) of the first throughput bin showing a loss of
    #: more than max(1 packet/ms, 5%) versus the pre-failure rate; NaN if the
    #: failure never produced a visible dip.
    dip_delay: float
    #: Time (ms after failure) of the first later bin back above that
    #: threshold; NaN if throughput never recovered within the run.
    recovery_delay: float
    failure_detections: int

    @property
    def recovered(self) -> bool:
        return not np.isnan(self.recovery_delay)


def run_failure_recovery(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("contra", "hula"),
    stream_rate: Optional[float] = None,
    failure_time: float = 30.0,
    run_duration: float = 60.0,
    streams_per_pair: int = 1,
    processes: Optional[int] = None,
) -> Dict[str, RecoveryResult]:
    """Run the Figure 14 experiment for each requested system."""
    config = config or default_config()
    if stream_rate is None:
        # The paper sends a stable 4.25 Gbps over a fabric with ample headroom:
        # rerouting around the failed link must be able to restore the full
        # rate even if the rerouted flowlets concentrate on one core link.
        # 6% of the host capacity per stream makes the dip visible (the
        # streams crossing the failed link lose several packets during the
        # detection window) while guaranteeing that the rerouted traffic fits
        # on the remaining core links of the 4:1 scaled fabric even if every
        # affected flowlet lands on the same one.
        stream_rate = 0.06 * config.host_capacity

    specs = [
        ScenarioSpec(
            name=f"recovery:{system}",
            system=system,
            topology=fattree_spec(config),
            config=config,
            policy="datacenter",
            workload="",
            traffic="streams",
            stream_rate=stream_rate,
            stream_start=0.5,
            streams_per_pair=streams_per_pair,
            fail_agg_core_link=True,
            failure_time=failure_time,
            run_duration=run_duration,
            collect_throughput=True,
        )
        for system in systems
    ]
    results: Dict[str, RecoveryResult] = {}
    for result in run_grid(specs, processes):
        results[result.system] = _analyse(
            result.system, result.throughput or [], failure_time,
            int(result.summary["failure_detections"]))
    return results


def _analyse(system: str, series: List[Tuple[float, float]], failure_time: float,
             failure_detections: int) -> RecoveryResult:
    if not series:
        return RecoveryResult(system, failure_time, [], 0.0, float("nan"), float("nan"),
                              failure_detections)
    before = [rate for time, rate in series if 5.0 <= time < failure_time - 1.0]
    baseline = float(np.mean(before)) if before else 0.0
    # A dip is any bin losing more than one packet/ms (or 5%, whichever is
    # larger) relative to the pre-failure rate; recovery is the first later
    # bin back above that threshold.
    threshold = baseline - max(1.0, 0.05 * baseline)

    dip_delay = float("nan")
    recovery_delay = float("nan")
    dipped = False
    for time, rate in series:
        if time < failure_time:
            continue
        if not dipped and rate < threshold:
            dipped = True
            dip_delay = time - failure_time
        elif dipped and rate >= threshold and np.isnan(recovery_delay):
            recovery_delay = time - failure_time
    return RecoveryResult(
        system=system,
        failure_time=failure_time,
        throughput=series,
        baseline_rate=baseline,
        dip_delay=dip_delay,
        recovery_delay=recovery_delay,
        failure_detections=failure_detections,
    )


# =============================================================================
# Fail→recover sweep (leaf-spine) and multi-failure schedules (WAN)
# =============================================================================

@dataclass
class RecoverySweepResult:
    """Throughput timeline around a fail→recover schedule for one system."""

    system: str
    fail_time: float
    recover_time: float
    throughput: List[Tuple[float, float]]
    baseline_rate: float
    #: ms after the failure of the first visibly dipped throughput bin
    #: (NaN if the dip was too small to register).
    dip_delay: float
    #: mean delivered rate measured after the link came back.
    post_recovery_rate: float

    @property
    def recovery_ratio(self) -> float:
        """Post-recovery rate as a fraction of the pre-failure baseline."""
        if self.baseline_rate <= 0:
            return float("nan")
        return self.post_recovery_rate / self.baseline_rate


def recovery_sweep_topology(config: ExperimentConfig) -> TopologySpec:
    """The non-square leaf-spine fabric of the recovery sweep (4 leaves, 2 spines)."""
    return TopologySpec("leafspine", leaves=4, spines=2, hosts_per_switch=2,
                        capacity=config.host_capacity, oversubscription=1.0)


def run_recovery_sweep(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("contra", "hula"),
    fail_time: float = 10.0,
    recover_time: float = 25.0,
    run_duration: float = 40.0,
    stream_rate: Optional[float] = None,
    streams_per_pair: int = 4,
    failed_link: Tuple[str, str] = ("spine0", "leaf2"),
    processes: Optional[int] = None,
) -> Dict[str, RecoverySweepResult]:
    """Fail a leaf-spine link mid-run and bring it back: the full cycle.

    Constant-rate streams cross the fabric; the schedule fails
    ``failed_link`` at ``fail_time`` and recovers it at ``recover_time``.
    The default failure is a spine *down-link* towards a receiver leaf — a
    failure **remote** from the sending leaves' path choice, so traffic
    pinned through that spine blackholes until probe silence exposes it
    (failing a sender-adjacent uplink would be absorbed instantly by the
    local ``link_failed`` check and never dip).  Throughput must dip at the
    failure and return to the pre-failure baseline once probes flow through
    the recovered link again.
    """
    config = config or default_config()
    if not fail_time < recover_time < run_duration:
        raise ValueError("expected fail_time < recover_time < run_duration")
    if stream_rate is None:
        stream_rate = 0.06 * config.host_capacity

    specs = [
        ScenarioSpec(
            name=f"recovery-sweep:{system}",
            system=system,
            topology=recovery_sweep_topology(config),
            config=config,
            policy="datacenter",
            workload="",
            traffic="streams",
            stream_rate=stream_rate,
            stream_start=0.5,
            streams_per_pair=streams_per_pair,
            events=(LinkEvent(fail_time, failed_link[0], failed_link[1], "fail"),
                    LinkEvent(recover_time, failed_link[0], failed_link[1], "recover")),
            run_duration=run_duration,
            collect_throughput=True,
        )
        for system in systems
    ]
    results: Dict[str, RecoverySweepResult] = {}
    for result in run_grid(specs, processes):
        results[result.system] = _analyse_sweep(
            result.system, result.throughput or [], fail_time, recover_time)
    return results


def _analyse_sweep(system: str, series: List[Tuple[float, float]], fail_time: float,
                   recover_time: float) -> RecoverySweepResult:
    before = [rate for time, rate in series if 2.0 <= time < fail_time - 1.0]
    baseline = float(np.mean(before)) if before else 0.0
    threshold = baseline - max(1.0, 0.05 * baseline)
    dip_delay = float("nan")
    for time, rate in series:
        if time >= fail_time and rate < threshold:
            dip_delay = time - fail_time
            break
    # Give the recovered link one millisecond of settling before measuring,
    # and stop short of the final bin, which may be truncated by the run end —
    # unless that final bin is the only post-recovery sample available.
    after = [rate for time, rate in series[:-1] if time >= recover_time + 1.0]
    if not after:
        after = [rate for time, rate in series if time >= recover_time + 1.0]
    post = float(np.mean(after)) if after else float("nan")
    return RecoverySweepResult(
        system=system,
        fail_time=fail_time,
        recover_time=recover_time,
        throughput=series,
        baseline_rate=baseline,
        dip_delay=dip_delay,
        post_recovery_rate=post,
    )


#: Two geographically distant NSFNET failures (west-coast feed, then the
#: NY–NJ east-coast link) — a Crux-style sequence that forces rerouting
#: decisions far from the first failure while the backbone stays connected.
MULTI_FAILURE_DEFAULT_EVENTS: Tuple[Tuple[float, str, str, str], ...] = (
    (6.0, "WA", "IL", "fail"),
    (12.0, "NY", "NJ", "fail"),
)


def multi_failure_topology(config: ExperimentConfig, name: str = "nsfnet") -> TopologySpec:
    """The Topology-Zoo WAN the multi-failure scenario runs on."""
    return TopologySpec("zoo", name=name, hosts_per_switch=1,
                        capacity=config.abilene_capacity)


def run_multi_failure(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("shortest-path", "contra"),
    events: Sequence[Tuple[float, str, str, str]] = MULTI_FAILURE_DEFAULT_EVENTS,
    topology_name: str = "nsfnet",
    workload: str = "web_search",
    load: float = 0.6,
    processes: Optional[int] = None,
) -> List[RunResult]:
    """A sequence of link failures on a WAN, as a plain grid of scenarios.

    Static shortest-path routing keeps sending into the failed links and
    loses the affected flows; Contra's probes route around each failure in
    turn.  The returned :class:`RunResult` summaries carry completion counts
    and drops for the report table.
    """
    config = config or default_config()
    schedule = tuple(LinkEvent(*event) for event in events)
    specs = [
        ScenarioSpec(
            name=f"multi-failure:{system}",
            system=system,
            topology=multi_failure_topology(config, topology_name),
            config=config,
            policy="wan",
            workload=workload,
            load=load,
            seed=config.seed,
            events=schedule,
            respect_compiled_probe_period=True,
        )
        for system in systems
    ]
    return run_grid(specs, processes)
