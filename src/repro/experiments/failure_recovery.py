"""Failure and recovery experiments (Figure 14 and the scenario-diversity runs).

The paper sends constant-rate UDP traffic across a fat-tree, fails an
aggregation–core link mid-run, and plots the aggregate received throughput
over time: both Contra and Hula detect the failure within a few probe periods
and recover the throughput within about a millisecond.

Three drivers live here, all executing through the grid runner:

* :func:`run_failure_recovery` — the Figure 14 timeline (single permanent
  failure on a fat-tree) plus measured detection and recovery delays;
* :func:`run_recovery_sweep` — a fail→recover schedule on a (non-square)
  leaf-spine: throughput dips at the failure and must return to the baseline
  after the link comes back (§6.3's "and back" half that a permanent failure
  cannot exercise);
* :func:`run_multi_failure` — a sequence of distant link failures on a
  Topology-Zoo WAN (the Crux-style scenario), comparing how static and
  probe-driven systems degrade;
* :func:`run_recovery_curve` — a grid whose swept axis is the ``events``
  schedule itself: one fail→recover cycle per outage duration, yielding the
  recovery-time vs dip-depth curve.

Each driver is split into a pure spec builder (``*_specs``) and a result
projection (``analyse_*``), so the registry can execute the same grid
through any :class:`~repro.experiments.runner.ExecutionBackend` — including
the sharded, resumable store-backed one — and finish it from stored results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.nputil import mean as _mean

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.fct import fattree_spec
from repro.experiments.runner import (
    LinkEvent,
    RunResult,
    ScenarioSpec,
    TopologySpec,
    run_grid,
)

__all__ = [
    "RecoveryResult",
    "failure_recovery_specs",
    "analyse_recovery_results",
    "run_failure_recovery",
    "RecoverySweepResult",
    "recovery_sweep_specs",
    "analyse_recovery_sweep_results",
    "run_recovery_sweep",
    "MULTI_FAILURE_DEFAULT_EVENTS",
    "multi_failure_specs",
    "run_multi_failure",
    "RecoveryCurvePoint",
    "RECOVERY_CURVE_DEFAULT_OUTAGES",
    "recovery_curve_specs",
    "analyse_recovery_curve",
    "run_recovery_curve",
]

#: Figure 14 schedule defaults, shared by the driver and the registry's
#: result-side analysis (the analysis must use the same instants the spec
#: builder injected).
FIG14_FAILURE_TIME = 30.0
FIG14_RUN_DURATION = 60.0

#: Recovery-sweep schedule defaults (same sharing rationale).
SWEEP_FAIL_TIME = 10.0
SWEEP_RECOVER_TIME = 25.0
SWEEP_RUN_DURATION = 40.0


@dataclass
class RecoveryResult:
    """Throughput timeline around a link failure for one routing system."""

    system: str
    failure_time: float
    #: (time ms, delivered packets/ms) series, one entry per millisecond bin.
    throughput: List[Tuple[float, float]]
    baseline_rate: float
    #: Time (ms after failure) of the first throughput bin showing a loss of
    #: more than max(1 packet/ms, 5%) versus the pre-failure rate; NaN if the
    #: failure never produced a visible dip.
    dip_delay: float
    #: Time (ms after failure) of the first later bin back above that
    #: threshold; NaN if throughput never recovered within the run.
    recovery_delay: float
    failure_detections: int

    @property
    def recovered(self) -> bool:
        return not math.isnan(self.recovery_delay)


def failure_recovery_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("contra", "hula"),
    stream_rate: Optional[float] = None,
    failure_time: float = FIG14_FAILURE_TIME,
    run_duration: float = FIG14_RUN_DURATION,
    streams_per_pair: int = 1,
) -> List[ScenarioSpec]:
    """The Figure 14 grid (one permanent fat-tree failure per system) as specs."""
    if stream_rate is None:
        # The paper sends a stable 4.25 Gbps over a fabric with ample headroom:
        # rerouting around the failed link must be able to restore the full
        # rate even if the rerouted flowlets concentrate on one core link.
        # 6% of the host capacity per stream makes the dip visible (the
        # streams crossing the failed link lose several packets during the
        # detection window) while guaranteeing that the rerouted traffic fits
        # on the remaining core links of the 4:1 scaled fabric even if every
        # affected flowlet lands on the same one.
        stream_rate = 0.06 * config.host_capacity
    return [
        ScenarioSpec(
            name=f"recovery:{system}",
            system=system,
            topology=fattree_spec(config),
            config=config,
            policy="datacenter",
            workload="",
            traffic="streams",
            stream_rate=stream_rate,
            stream_start=0.5,
            streams_per_pair=streams_per_pair,
            fail_agg_core_link=True,
            failure_time=failure_time,
            run_duration=run_duration,
            collect_throughput=True,
        )
        for system in systems
    ]


def analyse_recovery_results(results: Sequence[RunResult],
                             failure_time: float = FIG14_FAILURE_TIME,
                             ) -> Dict[str, RecoveryResult]:
    """Project Figure 14 grid results onto per-system recovery timelines."""
    analysed: Dict[str, RecoveryResult] = {}
    for result in results:
        analysed[result.system] = _analyse(
            result.system, result.throughput or [], failure_time,
            int(result.summary["failure_detections"]))
    return analysed


def run_failure_recovery(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("contra", "hula"),
    stream_rate: Optional[float] = None,
    failure_time: float = FIG14_FAILURE_TIME,
    run_duration: float = FIG14_RUN_DURATION,
    streams_per_pair: int = 1,
    processes: Optional[int] = None,
) -> Dict[str, RecoveryResult]:
    """Run the Figure 14 experiment for each requested system."""
    config = config or default_config()
    specs = failure_recovery_specs(config, systems, stream_rate, failure_time,
                                   run_duration, streams_per_pair)
    return analyse_recovery_results(run_grid(specs, processes), failure_time)


def _analyse(system: str, series: List[Tuple[float, float]], failure_time: float,
             failure_detections: int) -> RecoveryResult:
    if not series:
        return RecoveryResult(system, failure_time, [], 0.0, float("nan"), float("nan"),
                              failure_detections)
    before = [rate for time, rate in series if 5.0 <= time < failure_time - 1.0]
    baseline = _mean(before) if before else 0.0
    # A dip is any bin losing more than one packet/ms (or 5%, whichever is
    # larger) relative to the pre-failure rate; recovery is the first later
    # bin back above that threshold.
    threshold = baseline - max(1.0, 0.05 * baseline)

    dip_delay = float("nan")
    recovery_delay = float("nan")
    dipped = False
    for time, rate in series:
        if time < failure_time:
            continue
        if not dipped and rate < threshold:
            dipped = True
            dip_delay = time - failure_time
        elif dipped and rate >= threshold and math.isnan(recovery_delay):
            recovery_delay = time - failure_time
    return RecoveryResult(
        system=system,
        failure_time=failure_time,
        throughput=series,
        baseline_rate=baseline,
        dip_delay=dip_delay,
        recovery_delay=recovery_delay,
        failure_detections=failure_detections,
    )


# =============================================================================
# Fail→recover sweep (leaf-spine) and multi-failure schedules (WAN)
# =============================================================================

@dataclass
class RecoverySweepResult:
    """Throughput timeline around a fail→recover schedule for one system."""

    system: str
    fail_time: float
    recover_time: float
    throughput: List[Tuple[float, float]]
    baseline_rate: float
    #: ms after the failure of the first visibly dipped throughput bin
    #: (NaN if the dip was too small to register).
    dip_delay: float
    #: mean delivered rate measured after the link came back.
    post_recovery_rate: float

    @property
    def recovery_ratio(self) -> float:
        """Post-recovery rate as a fraction of the pre-failure baseline."""
        if self.baseline_rate <= 0:
            return float("nan")
        return self.post_recovery_rate / self.baseline_rate


def recovery_sweep_topology(config: ExperimentConfig) -> TopologySpec:
    """The non-square leaf-spine fabric of the recovery sweep (4 leaves, 2 spines)."""
    return TopologySpec("leafspine", leaves=4, spines=2, hosts_per_switch=2,
                        capacity=config.host_capacity, oversubscription=1.0)


def recovery_sweep_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("contra", "hula"),
    fail_time: float = SWEEP_FAIL_TIME,
    recover_time: float = SWEEP_RECOVER_TIME,
    run_duration: float = SWEEP_RUN_DURATION,
    stream_rate: Optional[float] = None,
    streams_per_pair: int = 4,
    failed_link: Tuple[str, str] = ("spine0", "leaf2"),
) -> List[ScenarioSpec]:
    """The fail→recover cycle grid on the leaf-spine fabric as specs."""
    if not fail_time < recover_time < run_duration:
        raise ValueError("expected fail_time < recover_time < run_duration")
    if stream_rate is None:
        stream_rate = 0.06 * config.host_capacity
    return [
        ScenarioSpec(
            name=f"recovery-sweep:{system}",
            system=system,
            topology=recovery_sweep_topology(config),
            config=config,
            policy="datacenter",
            workload="",
            traffic="streams",
            stream_rate=stream_rate,
            stream_start=0.5,
            streams_per_pair=streams_per_pair,
            events=(LinkEvent(fail_time, failed_link[0], failed_link[1], "fail"),
                    LinkEvent(recover_time, failed_link[0], failed_link[1], "recover")),
            run_duration=run_duration,
            collect_throughput=True,
        )
        for system in systems
    ]


def analyse_recovery_sweep_results(results: Sequence[RunResult],
                                   fail_time: float = SWEEP_FAIL_TIME,
                                   recover_time: float = SWEEP_RECOVER_TIME,
                                   ) -> Dict[str, RecoverySweepResult]:
    """Project fail→recover grid results onto per-system sweep timelines."""
    analysed: Dict[str, RecoverySweepResult] = {}
    for result in results:
        analysed[result.system] = _analyse_sweep(
            result.system, result.throughput or [], fail_time, recover_time)
    return analysed


def run_recovery_sweep(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("contra", "hula"),
    fail_time: float = SWEEP_FAIL_TIME,
    recover_time: float = SWEEP_RECOVER_TIME,
    run_duration: float = SWEEP_RUN_DURATION,
    stream_rate: Optional[float] = None,
    streams_per_pair: int = 4,
    failed_link: Tuple[str, str] = ("spine0", "leaf2"),
    processes: Optional[int] = None,
) -> Dict[str, RecoverySweepResult]:
    """Fail a leaf-spine link mid-run and bring it back: the full cycle.

    Constant-rate streams cross the fabric; the schedule fails
    ``failed_link`` at ``fail_time`` and recovers it at ``recover_time``.
    The default failure is a spine *down-link* towards a receiver leaf — a
    failure **remote** from the sending leaves' path choice, so traffic
    pinned through that spine blackholes until probe silence exposes it
    (failing a sender-adjacent uplink would be absorbed instantly by the
    local ``link_failed`` check and never dip).  Throughput must dip at the
    failure and return to the pre-failure baseline once probes flow through
    the recovered link again.
    """
    config = config or default_config()
    specs = recovery_sweep_specs(config, systems, fail_time, recover_time,
                                 run_duration, stream_rate, streams_per_pair,
                                 failed_link)
    return analyse_recovery_sweep_results(run_grid(specs, processes),
                                          fail_time, recover_time)


def _analyse_sweep(system: str, series: List[Tuple[float, float]], fail_time: float,
                   recover_time: float) -> RecoverySweepResult:
    before = [rate for time, rate in series if 2.0 <= time < fail_time - 1.0]
    baseline = _mean(before) if before else 0.0
    threshold = baseline - max(1.0, 0.05 * baseline)
    dip_delay = float("nan")
    for time, rate in series:
        if time >= fail_time and rate < threshold:
            dip_delay = time - fail_time
            break
    # Give the recovered link one millisecond of settling before measuring,
    # and stop short of the final bin, which may be truncated by the run end —
    # unless that final bin is the only post-recovery sample available.
    after = [rate for time, rate in series[:-1] if time >= recover_time + 1.0]
    if not after:
        after = [rate for time, rate in series if time >= recover_time + 1.0]
    post = _mean(after) if after else float("nan")
    return RecoverySweepResult(
        system=system,
        fail_time=fail_time,
        recover_time=recover_time,
        throughput=series,
        baseline_rate=baseline,
        dip_delay=dip_delay,
        post_recovery_rate=post,
    )


#: Two geographically distant NSFNET failures (west-coast feed, then the
#: NY–NJ east-coast link) — a Crux-style sequence that forces rerouting
#: decisions far from the first failure while the backbone stays connected.
MULTI_FAILURE_DEFAULT_EVENTS: Tuple[Tuple[float, str, str, str], ...] = (
    (6.0, "WA", "IL", "fail"),
    (12.0, "NY", "NJ", "fail"),
)


def multi_failure_topology(config: ExperimentConfig, name: str = "nsfnet") -> TopologySpec:
    """The Topology-Zoo WAN the multi-failure scenario runs on."""
    return TopologySpec("zoo", name=name, hosts_per_switch=1,
                        capacity=config.abilene_capacity)


def multi_failure_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("shortest-path", "contra"),
    events: Sequence[Tuple[float, str, str, str]] = MULTI_FAILURE_DEFAULT_EVENTS,
    topology_name: str = "nsfnet",
    workload: str = "web_search",
    load: float = 0.6,
) -> List[ScenarioSpec]:
    """The WAN multi-failure grid as specs."""
    schedule = tuple(LinkEvent(*event) for event in events)
    return [
        ScenarioSpec(
            name=f"multi-failure:{system}",
            system=system,
            topology=multi_failure_topology(config, topology_name),
            config=config,
            policy="wan",
            workload=workload,
            load=load,
            seed=config.seed,
            events=schedule,
            respect_compiled_probe_period=True,
        )
        for system in systems
    ]


def run_multi_failure(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("shortest-path", "contra"),
    events: Sequence[Tuple[float, str, str, str]] = MULTI_FAILURE_DEFAULT_EVENTS,
    topology_name: str = "nsfnet",
    workload: str = "web_search",
    load: float = 0.6,
    processes: Optional[int] = None,
) -> List[RunResult]:
    """A sequence of link failures on a WAN, as a plain grid of scenarios.

    Static shortest-path routing keeps sending into the failed links and
    loses the affected flows; Contra's probes route around each failure in
    turn.  The returned :class:`RunResult` summaries carry completion counts
    and drops for the report table.
    """
    config = config or default_config()
    specs = multi_failure_specs(config, systems, events, topology_name,
                                workload, load)
    return run_grid(specs, processes)


# =============================================================================
# Recovery curve: a grid whose axis is the fail→recover schedule itself
# =============================================================================

@dataclass
class RecoveryCurvePoint:
    """One (system, outage duration) point of the recovery curve."""

    system: str
    outage_ms: float
    fail_time: float
    recover_time: float
    baseline_rate: float
    #: Deepest relative throughput loss during the outage window:
    #: ``(baseline - min_rate) / baseline``; NaN without a baseline.
    dip_depth: float
    #: ms after the failure of the first visibly dipped bin (NaN if none).
    dip_delay: float
    #: ms after the *recovery* event until throughput first returns to >= 95%
    #: of the pre-failure baseline; NaN if it never does within the run.
    recovery_time_ms: float


#: Outage durations (ms) the default recovery curve sweeps.  Short outages
#: probe the detection window (the dip may not fully develop before the link
#: returns); long ones probe steady-state rerouting and the cost of coming
#: back.
RECOVERY_CURVE_DEFAULT_OUTAGES: Tuple[float, ...] = (2.0, 5.0, 10.0)

#: Schedule frame for the curve: every point fails at the same instant and
#: simulates the same settle-out tail after its recovery.
CURVE_FAIL_TIME = 10.0
CURVE_TAIL = 15.0


def recovery_curve_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("contra", "hula"),
    outages: Sequence[float] = RECOVERY_CURVE_DEFAULT_OUTAGES,
    fail_time: float = CURVE_FAIL_TIME,
    stream_rate: Optional[float] = None,
    streams_per_pair: int = 4,
    failed_link: Tuple[str, str] = ("spine0", "leaf2"),
) -> List[ScenarioSpec]:
    """A grid whose swept axis is the ``events`` schedule, not a scalar.

    Each grid point carries a different fail→recover schedule (same failure
    instant, different outage duration), which is exactly the ROADMAP's
    "sweeps that grid over schedules": the declarative ``events`` tuple
    makes an outage-duration sweep an ordinary spec grid with the full
    determinism and shardability contracts.
    """
    if stream_rate is None:
        stream_rate = 0.06 * config.host_capacity
    return [
        ScenarioSpec(
            name=f"recovery-curve:{system}:{outage}ms",
            system=system,
            topology=recovery_sweep_topology(config),
            config=config,
            policy="datacenter",
            workload="",
            traffic="streams",
            stream_rate=stream_rate,
            stream_start=0.5,
            streams_per_pair=streams_per_pair,
            events=(LinkEvent(fail_time, failed_link[0], failed_link[1], "fail"),
                    LinkEvent(fail_time + outage, failed_link[0], failed_link[1],
                              "recover")),
            run_duration=fail_time + outage + CURVE_TAIL,
            collect_throughput=True,
        )
        for outage in outages
        for system in systems
    ]


def analyse_recovery_curve(results: Sequence[RunResult],
                           fail_time: float = CURVE_FAIL_TIME,
                           ) -> List[RecoveryCurvePoint]:
    """Project the schedule grid onto (dip depth, recovery time) points.

    The outage duration is recovered from each spec's own schedule via the
    result name (``recovery-curve:<system>:<outage>ms``), so the analysis
    needs no side channel beyond the grid results themselves.
    """
    points: List[RecoveryCurvePoint] = []
    for result in results:
        outage = float(result.name.rsplit(":", 1)[1].removesuffix("ms"))
        recover_time = fail_time + outage
        series = result.throughput or []
        before = [rate for time, rate in series if 2.0 <= time < fail_time - 1.0]
        baseline = _mean(before) if before else 0.0
        threshold = baseline - max(1.0, 0.05 * baseline)

        dip_delay = float("nan")
        min_rate = baseline
        for time, rate in series:
            if fail_time <= time < recover_time + 1.0:
                min_rate = min(min_rate, rate)
                if math.isnan(dip_delay) and rate < threshold:
                    dip_delay = time - fail_time
        dip_depth = (baseline - min_rate) / baseline if baseline > 0 else float("nan")

        recovery_time = float("nan")
        for time, rate in series:
            if time >= recover_time and rate >= 0.95 * baseline:
                recovery_time = time - recover_time
                break
        points.append(RecoveryCurvePoint(
            system=result.system,
            outage_ms=outage,
            fail_time=fail_time,
            recover_time=recover_time,
            baseline_rate=baseline,
            dip_depth=dip_depth,
            dip_delay=dip_delay,
            recovery_time_ms=recovery_time,
        ))
    return points


def run_recovery_curve(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("contra", "hula"),
    outages: Sequence[float] = RECOVERY_CURVE_DEFAULT_OUTAGES,
    fail_time: float = CURVE_FAIL_TIME,
    stream_rate: Optional[float] = None,
    streams_per_pair: int = 4,
    failed_link: Tuple[str, str] = ("spine0", "leaf2"),
    processes: Optional[int] = None,
) -> List[RecoveryCurvePoint]:
    """The recovery-time vs dip-depth curve over outage durations."""
    config = config or default_config()
    specs = recovery_curve_specs(config, systems, outages, fail_time,
                                 stream_rate, streams_per_pair, failed_link)
    return analyse_recovery_curve(run_grid(specs, processes), fail_time)
