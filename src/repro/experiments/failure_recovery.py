"""Failure recovery experiment (Figure 14).

The paper sends constant-rate UDP traffic across a fat-tree, fails an
aggregation–core link mid-run, and plots the aggregate received throughput
over time: both Contra and Hula detect the failure within a few probe periods
and recover the throughput within about a millisecond.

:func:`run_failure_recovery` reproduces that timeline for any of the
probe-driven systems and also reports the measured detection and recovery
delays so EXPERIMENTS.md can compare them against the paper's 800 µs / 1 ms.
The per-system runs are grid scenarios (constant-stream traffic shape), so
they fan across cores like every other experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.fct import fattree_spec
from repro.experiments.runner import ScenarioSpec, run_grid

__all__ = ["RecoveryResult", "run_failure_recovery"]


@dataclass
class RecoveryResult:
    """Throughput timeline around a link failure for one routing system."""

    system: str
    failure_time: float
    #: (time ms, delivered packets/ms) series, one entry per millisecond bin.
    throughput: List[Tuple[float, float]]
    baseline_rate: float
    #: Time (ms after failure) of the first throughput bin showing a loss of
    #: more than max(1 packet/ms, 5%) versus the pre-failure rate; NaN if the
    #: failure never produced a visible dip.
    dip_delay: float
    #: Time (ms after failure) of the first later bin back above that
    #: threshold; NaN if throughput never recovered within the run.
    recovery_delay: float
    failure_detections: int

    @property
    def recovered(self) -> bool:
        return not np.isnan(self.recovery_delay)


def run_failure_recovery(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("contra", "hula"),
    stream_rate: Optional[float] = None,
    failure_time: float = 30.0,
    run_duration: float = 60.0,
    streams_per_pair: int = 1,
    processes: Optional[int] = None,
) -> Dict[str, RecoveryResult]:
    """Run the Figure 14 experiment for each requested system."""
    config = config or default_config()
    if stream_rate is None:
        # The paper sends a stable 4.25 Gbps over a fabric with ample headroom:
        # rerouting around the failed link must be able to restore the full
        # rate even if the rerouted flowlets concentrate on one core link.
        # 6% of the host capacity per stream makes the dip visible (the
        # streams crossing the failed link lose several packets during the
        # detection window) while guaranteeing that the rerouted traffic fits
        # on the remaining core links of the 4:1 scaled fabric even if every
        # affected flowlet lands on the same one.
        stream_rate = 0.06 * config.host_capacity

    specs = [
        ScenarioSpec(
            name=f"recovery:{system}",
            system=system,
            topology=fattree_spec(config),
            config=config,
            policy="datacenter",
            workload="",
            traffic="streams",
            stream_rate=stream_rate,
            stream_start=0.5,
            streams_per_pair=streams_per_pair,
            fail_agg_core_link=True,
            failure_time=failure_time,
            run_duration=run_duration,
            collect_throughput=True,
        )
        for system in systems
    ]
    results: Dict[str, RecoveryResult] = {}
    for result in run_grid(specs, processes):
        results[result.system] = _analyse(
            result.system, result.throughput or [], failure_time,
            int(result.summary["failure_detections"]))
    return results


def _analyse(system: str, series: List[Tuple[float, float]], failure_time: float,
             failure_detections: int) -> RecoveryResult:
    if not series:
        return RecoveryResult(system, failure_time, [], 0.0, float("nan"), float("nan"),
                              failure_detections)
    before = [rate for time, rate in series if 5.0 <= time < failure_time - 1.0]
    baseline = float(np.mean(before)) if before else 0.0
    # A dip is any bin losing more than one packet/ms (or 5%, whichever is
    # larger) relative to the pre-failure rate; recovery is the first later
    # bin back above that threshold.
    threshold = baseline - max(1.0, 0.05 * baseline)

    dip_delay = float("nan")
    recovery_delay = float("nan")
    dipped = False
    for time, rate in series:
        if time < failure_time:
            continue
        if not dipped and rate < threshold:
            dipped = True
            dip_delay = time - failure_time
        elif dipped and rate >= threshold and np.isnan(recovery_delay):
            recovery_delay = time - failure_time
    return RecoveryResult(
        system=system,
        failure_time=failure_time,
        throughput=series,
        baseline_rate=baseline,
        dip_delay=dip_delay,
        recovery_delay=recovery_delay,
        failure_detections=failure_detections,
    )
