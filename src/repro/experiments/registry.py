"""Named experiment scenarios for the grid runner.

The registry maps a scenario name (``fig11``, ``fig13``, ``ablations``, …) to
a callable that executes the experiment — through the process-pool grid
runner — and returns a :class:`ScenarioOutcome` with the formatted report and
a JSON-serializable payload.  ``contra run-grid`` and the benchmark harness
both resolve experiments through this table, so the CLI, the benchmarks and
the library always run the same code path.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from repro.experiments import report
from repro.experiments.ablations import (
    run_flowlet_timeout_ablation,
    run_probe_period_ablation,
    run_versioning_ablation,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.failure_recovery import (
    run_failure_recovery,
    run_multi_failure,
    run_recovery_sweep,
)
from repro.experiments.fct import (
    run_abilene_fct,
    run_fattree_fct,
    run_incast,
    run_queue_cdf,
    run_transport_sensitivity,
)
from repro.experiments.overhead import run_overhead_experiment
from repro.experiments.scalability import run_scalability_sweep

__all__ = ["ScenarioOutcome", "SCENARIOS", "run_scenario", "scenario_names"]


@dataclass
class ScenarioOutcome:
    """What one named scenario produced: a printable report plus raw data."""

    name: str
    text: str
    payload: Any


def _fig9_10(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    points = run_scalability_sweep(fattree_sizes=config.scalability_fattree_sizes,
                                   random_sizes=config.scalability_random_sizes,
                                   processes=processes)
    return ScenarioOutcome("fig9-10", report.format_scalability(points),
                           [asdict(p) for p in points])


def _fig11(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    points = run_fattree_fct(config, processes=processes)
    return ScenarioOutcome("fig11",
                           report.format_fct(points, "Figure 11: symmetric fat-tree FCT"),
                           [asdict(p) for p in points])


def _fig11_k8(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    """The Figure 11 sweep on a k=8 fat-tree (80 switches, 128 hosts; slow)."""
    points = run_fattree_fct(replace(config, fattree_k=8), processes=processes)
    return ScenarioOutcome("fig11-k8",
                           report.format_fct(points,
                                             "Figure 11 at k=8: symmetric fat-tree FCT"),
                           [asdict(p) for p in points])


def _fig12(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    points = run_fattree_fct(config, asymmetric=True, processes=processes)
    return ScenarioOutcome("fig12",
                           report.format_fct(points, "Figure 12: asymmetric fat-tree FCT"),
                           [asdict(p) for p in points])


def _fig13(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    cdfs = run_queue_cdf(config, processes=processes)
    return ScenarioOutcome("fig13", report.format_queue_cdf(cdfs),
                           {system: {str(p): v for p, v in cdf.items()}
                            for system, cdf in cdfs.items()})


def _fig14(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    results = run_failure_recovery(config, processes=processes)
    payload = {
        system: {
            "baseline_rate": outcome.baseline_rate,
            "dip_delay_ms": outcome.dip_delay,
            "recovery_delay_ms": outcome.recovery_delay,
            "failure_detections": outcome.failure_detections,
        }
        for system, outcome in results.items()
    }
    return ScenarioOutcome("fig14", report.format_recovery(results), payload)


def _fig15(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    points = run_abilene_fct(config, processes=processes)
    return ScenarioOutcome("fig15", report.format_fct(points, "Figure 15: Abilene FCT"),
                           [asdict(p) for p in points])


def _fig16(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    points = run_overhead_experiment(config, processes=processes)
    return ScenarioOutcome("fig16", report.format_overhead(points),
                           [asdict(p) for p in points])


def _ablations(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    probe = run_probe_period_ablation(config, processes=processes)
    flowlet = run_flowlet_timeout_ablation(config, processes=processes)
    versioning = run_versioning_ablation(config, processes=processes)
    text = "\n\n".join([
        report.format_ablation(probe, "Probe period ablation"),
        report.format_ablation(flowlet, "Flowlet timeout ablation"),
        report.format_ablation(versioning, "Versioning ablation"),
    ])
    payload = {
        "probe_period": [asdict(p) for p in probe],
        "flowlet_timeout": [asdict(p) for p in flowlet],
        "versioning": [asdict(p) for p in versioning],
    }
    return ScenarioOutcome("ablations", text, payload)


def _incast(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    results = run_incast(config, processes=processes)
    return ScenarioOutcome("incast",
                           report.format_grid(results, "Incast: N-to-1 fan-in FCT"),
                           [asdict(r) for r in results])


def _multi_failure(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    results = run_multi_failure(config, processes=processes)
    return ScenarioOutcome(
        "multi-failure",
        report.format_grid(results, "Multi-failure schedule on NSFNET (WAN)"),
        [asdict(r) for r in results])


def _recovery_sweep(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    results = run_recovery_sweep(config, processes=processes)
    payload = {
        system: {
            "fail_time_ms": outcome.fail_time,
            "recover_time_ms": outcome.recover_time,
            "baseline_rate": outcome.baseline_rate,
            "dip_delay_ms": outcome.dip_delay,
            "post_recovery_rate": outcome.post_recovery_rate,
            "recovery_ratio": outcome.recovery_ratio,
        }
        for system, outcome in results.items()
    }
    return ScenarioOutcome("recovery-sweep", report.format_recovery_sweep(results),
                           payload)


def _transport_sensitivity(config: ExperimentConfig,
                           processes: Optional[int]) -> ScenarioOutcome:
    results = run_transport_sensitivity(config, processes=processes)
    return ScenarioOutcome("transport-sensitivity",
                           report.format_transport(results),
                           [asdict(r) for r in results])


#: Scenario name -> runner; each entry executes through the grid runner.
SCENARIOS: Dict[str, Callable[[ExperimentConfig, Optional[int]], ScenarioOutcome]] = {
    "fig9-10": _fig9_10,
    "fig11": _fig11,
    "fig11-k8": _fig11_k8,
    "fig12": _fig12,
    "fig13": _fig13,
    "fig14": _fig14,
    "fig15": _fig15,
    "fig16": _fig16,
    "ablations": _ablations,
    "incast": _incast,
    "multi-failure": _multi_failure,
    "recovery-sweep": _recovery_sweep,
    "transport-sensitivity": _transport_sensitivity,
}


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def run_scenario(name: str, config: ExperimentConfig,
                 processes: Optional[int] = None) -> ScenarioOutcome:
    """Execute one named scenario; raises KeyError for unknown names."""
    try:
        runner = SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; available: {scenario_names()}") from None
    return runner(config, processes)
