"""Named experiment scenarios for the grid runner.

The registry maps a scenario name (``fig11``, ``fig13``, ``ablations``, …) to
its runner.  ``contra run-grid`` and the benchmark harness both resolve
experiments through this table, so the CLI, the benchmarks and the library
always run the same code path.

Two kinds of entries exist:

* a :class:`GridScenario` — the declarative form: a pure **spec builder**
  (``config -> [ScenarioSpec]``) plus a pure **finisher**
  (``config, [RunResult] -> ScenarioOutcome``).  Because building the grid
  and reporting over its results are separated from *executing* it, a grid
  scenario runs through any :class:`~repro.experiments.runner
  .ExecutionBackend` — including the sharded, resumable store-backed one —
  and :func:`merge_scenario` can reassemble the exact unsharded report from
  shard artifacts;
* a legacy callable ``(config, processes) -> ScenarioOutcome`` for the
  drivers that are not a single spec grid (compile-scalability jobs, the
  multi-grid ablations), which therefore cannot shard through the store.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Union

from repro.exceptions import ExperimentError
from repro.experiments import report
from repro.experiments.coordinator import (
    DEFAULT_LEASE_TTL,
    CoordinatedBackend,
    SweepStatus,
    sweep_status,
)
from repro.experiments.ablations import (
    run_flowlet_timeout_ablation,
    run_probe_period_ablation,
    run_versioning_ablation,
)
from repro.experiments.config import ExperimentConfig
from repro.experiments.failure_recovery import (
    analyse_recovery_curve,
    analyse_recovery_results,
    analyse_recovery_sweep_results,
    failure_recovery_specs,
    multi_failure_specs,
    recovery_curve_specs,
    recovery_sweep_specs,
)
from repro.experiments.fct import (
    abilene_fct_specs,
    fattree_fct_specs,
    flow_size_sensitivity_specs,
    incast_specs,
    queue_cdf_specs,
    to_fct_points,
    transport_sensitivity_specs,
)
from repro.experiments.fluid_scale import (
    fluid_fidelity_specs,
    fluid_million_specs,
    to_fidelity_points,
)
from repro.experiments.overhead import overhead_specs, to_overhead_points
from repro.experiments.results import (
    ResultsStore,
    ShardedBackend,
    collect_results,
    gc_results,
)
from repro.experiments.runner import (
    RunResult,
    ScenarioSpec,
    default_backend,
    run_grid,
)
from repro.experiments.scalability import run_scalability_sweep

__all__ = [
    "ScenarioOutcome",
    "ShardOutcome",
    "CoordinatedOutcome",
    "GridScenario",
    "SCENARIOS",
    "run_scenario",
    "run_scenario_shard",
    "run_scenario_coordinated",
    "sweep_status_scenario",
    "merge_scenario",
    "gc_scenario",
    "scenario_names",
    "shardable_scenario_names",
    "scenario_is_shardable",
]


@dataclass
class ScenarioOutcome:
    """What one named scenario produced: a printable report plus raw data."""

    name: str
    text: str
    payload: Any


@dataclass
class ShardOutcome:
    """What one shard of a sharded scenario run produced."""

    name: str
    shard_index: int
    shard_count: int
    total_points: int
    assigned: int
    executed: int
    skipped: int
    results_path: str
    wall_s: float

    @property
    def text(self) -> str:
        return (f"{self.name} shard {self.shard_index}/{self.shard_count}: "
                f"{self.assigned} of {self.total_points} grid points assigned, "
                f"{self.executed} executed, {self.skipped} already complete "
                f"({self.wall_s:.1f} s)\n"
                f"results: {self.results_path}")


@dataclass
class CoordinatedOutcome:
    """What one ``--coordinate`` invocation of a scenario produced.

    Unlike a :class:`ShardOutcome`, every coordinated invocation converges
    to the *full* grid (it waits out other workers' in-flight leases), so
    ``outcome`` carries the complete merged report — byte-identical to an
    unsharded run.
    """

    name: str
    total_points: int
    workers: List[Dict[str, Any]]
    results_dir: str
    wall_s: float
    outcome: ScenarioOutcome

    @property
    def text(self) -> str:
        executed = sum(int(worker["executed"]) for worker in self.workers)
        lines = [f"{self.name} coordinated drain: {executed} of "
                 f"{self.total_points} grid points executed here by "
                 f"{len(self.workers)} worker(s) ({self.wall_s:.1f} s)"]
        for worker in self.workers:
            lines.append(
                f"  {worker['owner']}: {worker['executed']} executed, "
                f"{worker['stolen']} stolen, {worker['reclaimed']} reclaimed, "
                f"idle {worker['idle_s']:.1f} s")
        lines.append(f"results: {self.results_dir}")
        return "\n".join(lines)


@dataclass(frozen=True)
class GridScenario:
    """A scenario that is one spec grid: shardable, resumable, mergeable."""

    build_specs: Callable[[ExperimentConfig], List[ScenarioSpec]]
    finish: Callable[[ExperimentConfig, List[RunResult]], ScenarioOutcome]


# --------------------------------------------------------------- grid finishes

def _fct_scenario(name: str, title: str,
                  fattree_k: Optional[int] = None,
                  asymmetric: bool = False) -> GridScenario:
    def build(config: ExperimentConfig) -> List[ScenarioSpec]:
        if fattree_k is not None:
            config = replace(config, fattree_k=fattree_k)
        return fattree_fct_specs(config, asymmetric=asymmetric)

    def finish(config: ExperimentConfig, results: List[RunResult]) -> ScenarioOutcome:
        points = to_fct_points(results)
        return ScenarioOutcome(name, report.format_fct(points, title),
                               [asdict(p) for p in points])

    return GridScenario(build, finish)


def _fig13_finish(config: ExperimentConfig, results: List[RunResult]) -> ScenarioOutcome:
    cdfs = {result.system: result.queue_cdf for result in results}
    return ScenarioOutcome("fig13", report.format_queue_cdf(cdfs),
                           {system: {str(p): v for p, v in cdf.items()}
                            for system, cdf in cdfs.items()})


def _fig14_finish(config: ExperimentConfig, results: List[RunResult]) -> ScenarioOutcome:
    analysed = analyse_recovery_results(results)
    payload = {
        system: {
            "baseline_rate": outcome.baseline_rate,
            "dip_delay_ms": outcome.dip_delay,
            "recovery_delay_ms": outcome.recovery_delay,
            "failure_detections": outcome.failure_detections,
        }
        for system, outcome in analysed.items()
    }
    return ScenarioOutcome("fig14", report.format_recovery(analysed), payload)


def _fig15_finish(config: ExperimentConfig, results: List[RunResult]) -> ScenarioOutcome:
    points = to_fct_points(results)
    return ScenarioOutcome("fig15", report.format_fct(points, "Figure 15: Abilene FCT"),
                           [asdict(p) for p in points])


def _fig16_finish(config: ExperimentConfig, results: List[RunResult]) -> ScenarioOutcome:
    points = to_overhead_points(results)
    return ScenarioOutcome("fig16", report.format_overhead(points),
                           [asdict(p) for p in points])


def _incast_finish(config: ExperimentConfig, results: List[RunResult]) -> ScenarioOutcome:
    return ScenarioOutcome("incast",
                           report.format_grid(results, "Incast: N-to-1 fan-in FCT"),
                           [asdict(r) for r in results])


def _multi_failure_finish(config: ExperimentConfig,
                          results: List[RunResult]) -> ScenarioOutcome:
    return ScenarioOutcome(
        "multi-failure",
        report.format_grid(results, "Multi-failure schedule on NSFNET (WAN)"),
        [asdict(r) for r in results])


def _recovery_sweep_finish(config: ExperimentConfig,
                           results: List[RunResult]) -> ScenarioOutcome:
    analysed = analyse_recovery_sweep_results(results)
    payload = {
        system: {
            "fail_time_ms": outcome.fail_time,
            "recover_time_ms": outcome.recover_time,
            "baseline_rate": outcome.baseline_rate,
            "dip_delay_ms": outcome.dip_delay,
            "post_recovery_rate": outcome.post_recovery_rate,
            "recovery_ratio": outcome.recovery_ratio,
        }
        for system, outcome in analysed.items()
    }
    return ScenarioOutcome("recovery-sweep", report.format_recovery_sweep(analysed),
                           payload)


def _recovery_curve_finish(config: ExperimentConfig,
                           results: List[RunResult]) -> ScenarioOutcome:
    points = analyse_recovery_curve(results)
    return ScenarioOutcome("recovery-curve", report.format_recovery_curve(points),
                           [asdict(p) for p in points])


def _transport_finish(config: ExperimentConfig,
                      results: List[RunResult]) -> ScenarioOutcome:
    return ScenarioOutcome("transport-sensitivity",
                           report.format_transport(results),
                           [asdict(r) for r in results])


def _flow_size_finish(config: ExperimentConfig,
                      results: List[RunResult]) -> ScenarioOutcome:
    return ScenarioOutcome("flow-size-sensitivity",
                           report.format_flow_size(results),
                           [asdict(r) for r in results])


def _fidelity_finish(config: ExperimentConfig,
                     results: List[RunResult]) -> ScenarioOutcome:
    points = to_fidelity_points(results)
    return ScenarioOutcome("fluid-vs-packet", report.format_fidelity(points),
                           [asdict(p) for p in points])


def _fluid_million_finish(config: ExperimentConfig,
                          results: List[RunResult]) -> ScenarioOutcome:
    return ScenarioOutcome("fluid-million", report.format_fluid_million(results),
                           [asdict(r) for r in results])


# ------------------------------------------------------------ legacy scenarios

def _fig9_10(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    points = run_scalability_sweep(fattree_sizes=config.scalability_fattree_sizes,
                                   random_sizes=config.scalability_random_sizes,
                                   processes=processes)
    return ScenarioOutcome("fig9-10", report.format_scalability(points),
                           [asdict(p) for p in points])


def _ablations(config: ExperimentConfig, processes: Optional[int]) -> ScenarioOutcome:
    probe = run_probe_period_ablation(config, processes=processes)
    flowlet = run_flowlet_timeout_ablation(config, processes=processes)
    versioning = run_versioning_ablation(config, processes=processes)
    text = "\n\n".join([
        report.format_ablation(probe, "Probe period ablation"),
        report.format_ablation(flowlet, "Flowlet timeout ablation"),
        report.format_ablation(versioning, "Versioning ablation"),
    ])
    payload = {
        "probe_period": [asdict(p) for p in probe],
        "flowlet_timeout": [asdict(p) for p in flowlet],
        "versioning": [asdict(p) for p in versioning],
    }
    return ScenarioOutcome("ablations", text, payload)


#: Scenario name -> GridScenario (shardable) or legacy callable.
SCENARIOS: Dict[str, Union[GridScenario,
                           Callable[[ExperimentConfig, Optional[int]],
                                    ScenarioOutcome]]] = {
    "fig9-10": _fig9_10,
    "fig11": _fct_scenario("fig11", "Figure 11: symmetric fat-tree FCT"),
    "fig11-k8": _fct_scenario("fig11-k8",
                              "Figure 11 at k=8: symmetric fat-tree FCT",
                              fattree_k=8),
    "fig11-k16": _fct_scenario("fig11-k16",
                               "Figure 11 at k=16: symmetric fat-tree FCT",
                               fattree_k=16),
    # 1280 switches / 8192 hosts; run it sharded (`--shard i/n
    # --results-dir D`) with a coarsened probe period — the slow test
    # executes one Contra point of it under the micro config.
    "fig11-k32": _fct_scenario("fig11-k32",
                               "Figure 11 at k=32: symmetric fat-tree FCT",
                               fattree_k=32),
    "fig12": _fct_scenario("fig12", "Figure 12: asymmetric fat-tree FCT",
                           asymmetric=True),
    "fig13": GridScenario(queue_cdf_specs, _fig13_finish),
    "fig14": GridScenario(failure_recovery_specs, _fig14_finish),
    "fig15": GridScenario(abilene_fct_specs, _fig15_finish),
    "fig16": GridScenario(overhead_specs, _fig16_finish),
    "ablations": _ablations,
    "incast": GridScenario(incast_specs, _incast_finish),
    "multi-failure": GridScenario(multi_failure_specs, _multi_failure_finish),
    "recovery-sweep": GridScenario(recovery_sweep_specs, _recovery_sweep_finish),
    "recovery-curve": GridScenario(recovery_curve_specs, _recovery_curve_finish),
    "transport-sensitivity": GridScenario(transport_sensitivity_specs,
                                          _transport_finish),
    "flow-size-sensitivity": GridScenario(flow_size_sensitivity_specs,
                                          _flow_size_finish),
    "fluid-vs-packet": GridScenario(fluid_fidelity_specs, _fidelity_finish),
    "fluid-million": GridScenario(fluid_million_specs, _fluid_million_finish),
}


def scenario_names() -> List[str]:
    return list(SCENARIOS)


def scenario_is_shardable(name: str) -> bool:
    return isinstance(SCENARIOS.get(name), GridScenario)


def shardable_scenario_names() -> List[str]:
    return [name for name in SCENARIOS if scenario_is_shardable(name)]


def _scenario(name: str):
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(f"unknown scenario {name!r}; available: {scenario_names()}") from None


def _grid_scenario(name: str) -> GridScenario:
    entry = _scenario(name)
    if not isinstance(entry, GridScenario):
        raise ExperimentError(
            f"scenario {name!r} is not a single spec grid and cannot use a "
            f"results store; shardable scenarios: {shardable_scenario_names()}")
    return entry


def _with_flow_model(name: str, specs: List[ScenarioSpec],
                     flow_model: Optional[str]) -> List[ScenarioSpec]:
    """Apply the ``--flow-model`` override to a scenario's grid.

    Scenarios that already select flow models per grid point (fluid-vs-packet
    runs both planes by design, fluid-million pins fluid) reject the override
    — rewriting their specs would either collapse the comparison or silently
    re-key every point — mirroring how ``--transport`` refuses
    'transport-sensitivity'.
    """
    if flow_model is None:
        return specs
    pinned = sorted({spec.flow_model for spec in specs
                     if spec.flow_model != "packet"})
    if pinned:
        raise ExperimentError(
            f"scenario {name!r} selects flow models per grid point "
            f"({pinned}); --flow-model cannot override it")
    if flow_model == "packet":
        return specs
    return [replace(spec, flow_model=flow_model) for spec in specs]


def _build_specs(name: str, entry: GridScenario, config: ExperimentConfig,
                 flow_model: Optional[str]) -> List[ScenarioSpec]:
    return _with_flow_model(name, entry.build_specs(config), flow_model)


def run_scenario(name: str, config: ExperimentConfig,
                 processes: Optional[int] = None,
                 results_dir: Optional[str] = None,
                 flow_model: Optional[str] = None) -> ScenarioOutcome:
    """Execute one named scenario end to end; raises KeyError for unknown names.

    ``results_dir`` (grid scenarios only) makes the run resumable: completed
    points are loaded from the store and skipped, fresh points are appended
    as they finish, and the outcome is identical to an uninterrupted run.
    ``flow_model`` (grid scenarios only) re-points every spec of the grid at
    the named data path; specs re-pointed at ``"fluid"`` hash differently, so
    packet and fluid runs of one scenario never collide in a store.
    """
    entry = _scenario(name)
    if isinstance(entry, GridScenario):
        specs = _build_specs(name, entry, config, flow_model)
        if results_dir is not None:
            store = ResultsStore(results_dir)
            backend = ShardedBackend(store,
                                     inner=default_backend(processes, len(specs)))
            results = run_grid(specs, backend=backend)
        else:
            results = run_grid(specs, processes=processes)
        return entry.finish(config, results)
    if results_dir is not None:
        _grid_scenario(name)                # raises the authoritative error
    if flow_model is not None:
        raise ExperimentError(
            f"scenario {name!r} is not a single spec grid; --flow-model only "
            f"applies to grid scenarios: {shardable_scenario_names()}")
    return entry(config, processes)


def run_scenario_shard(name: str, config: ExperimentConfig, results_dir: str,
                       shard_index: int, shard_count: int,
                       processes: Optional[int] = None,
                       flow_model: Optional[str] = None) -> ShardOutcome:
    """Execute one deterministic 1/n slice of a grid scenario into a store.

    Shard ``i`` owns every spec at position ``p`` with ``p % n == i`` of the
    deterministically ordered grid; points already present in the store are
    skipped (resume).  Once every shard has run against the same directory,
    :func:`merge_scenario` produces the exact unsharded outcome.
    """
    entry = _grid_scenario(name)
    specs = _build_specs(name, entry, config, flow_model)
    store = ResultsStore(results_dir, shard_index, shard_count)
    backend = ShardedBackend(store, inner=default_backend(processes, len(specs)))
    started = time.perf_counter()
    run_grid(specs, backend=backend)
    wall_s = time.perf_counter() - started
    store.write_meta(name, wall_s, total=len(specs), assigned=backend.assigned,
                     executed=backend.executed, skipped=backend.skipped)
    return ShardOutcome(
        name=name,
        shard_index=shard_index,
        shard_count=shard_count,
        total_points=len(specs),
        assigned=backend.assigned,
        executed=backend.executed,
        skipped=backend.skipped,
        results_path=str(store.path),
        wall_s=wall_s,
    )


def _coordinate_worker(args) -> Dict[str, Any]:
    """One spawned drain worker (module-level so it pickles into a pool).

    Rebuilds the spec grid from the scenario name + config (specs are pure
    functions of both, so every worker sees the identical grid in identical
    order) and drains the shared store to claim-exhaustion.
    """
    name, config, results_dir, flow_model, ttl = args
    from repro.experiments.coordinator import drain_store

    entry = _grid_scenario(name)
    specs = _build_specs(name, entry, config, flow_model)
    return drain_store(specs, results_dir, ttl=ttl, scenario=name)


def run_scenario_coordinated(name: str, config: ExperimentConfig,
                             results_dir: str, workers: int = 1,
                             flow_model: Optional[str] = None,
                             ttl: float = DEFAULT_LEASE_TTL) -> CoordinatedOutcome:
    """Drain a grid scenario through the lease-based sweep coordinator.

    ``workers`` local drain processes claim points from the shared store
    (locality-grouped, work-stealing — see
    :mod:`repro.experiments.coordinator`); any number of *other* invocations
    of this function, on any hosts sharing ``results_dir``, drain the same
    grid concurrently.  After the local workers exhaust their claims, the
    calling process itself runs a :class:`CoordinatedBackend` to completion:
    it reclaims anything a killed worker (local or remote) left behind and
    waits out live leases, so every invocation returns the **full** merged
    outcome — byte-identical to an unsharded run.
    """
    if workers < 1:
        raise ExperimentError(f"--workers must be >= 1, got {workers}")
    entry = _grid_scenario(name)
    specs = _build_specs(name, entry, config, flow_model)
    started = time.perf_counter()
    accounts: List[Dict[str, Any]] = []
    if workers > 1:
        job = (name, config, results_dir, flow_model, ttl)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_coordinate_worker, job)
                       for _ in range(workers)]
            for future in futures:
                accounts.append(future.result())
    # The collector: executes the whole grid itself when workers == 1,
    # otherwise mops up (kills, reclaims, remote stragglers) and assembles
    # the full result list from the store.
    backend = CoordinatedBackend(results_dir, ttl=ttl, scenario=name)
    results = run_grid(specs, backend=backend)
    if workers == 1 or backend.executed:
        accounts.append(backend.accounting())
    wall_s = time.perf_counter() - started
    return CoordinatedOutcome(
        name=name,
        total_points=len(specs),
        workers=accounts,
        results_dir=str(results_dir),
        wall_s=wall_s,
        outcome=entry.finish(config, results),
    )


def sweep_status_scenario(name: str, config: ExperimentConfig,
                          results_dir: str,
                          flow_model: Optional[str] = None,
                          ttl: float = DEFAULT_LEASE_TTL) -> SweepStatus:
    """Snapshot a coordinated results directory against the scenario's grid."""
    entry = _grid_scenario(name)
    specs = _build_specs(name, entry, config, flow_model)
    return sweep_status(specs, results_dir, ttl=ttl)


def gc_scenario(name: str, config: ExperimentConfig, results_dir: str,
                flow_model: Optional[str] = None) -> Dict[str, int]:
    """Garbage-collect ``results_dir`` against the scenario's current grid.

    Records whose spec hash the scenario (under this config) no longer
    defines are dropped, duplicates and torn tails are compacted away, and
    the survivors are rewritten as one shard file — see
    :func:`repro.experiments.results.gc_results` for the exact contract.
    """
    entry = _grid_scenario(name)
    return gc_results(_build_specs(name, entry, config, flow_model), results_dir)


def merge_scenario(name: str, config: ExperimentConfig,
                   results_dir: str,
                   flow_model: Optional[str] = None) -> ScenarioOutcome:
    """Union the shard artifacts in ``results_dir`` into the full outcome.

    Runs nothing: every grid point must already be in the store (any shard
    layout), and the returned outcome is byte-identical to what an unsharded
    :func:`run_scenario` under the same config produces.
    """
    entry = _grid_scenario(name)
    specs = _build_specs(name, entry, config, flow_model)
    results = collect_results(specs, ResultsStore(results_dir))
    return entry.finish(config, results)
