"""Experiment drivers reproducing every figure of the paper's evaluation."""

from repro.experiments.ablations import (
    AblationPoint,
    run_flowlet_timeout_ablation,
    run_probe_period_ablation,
    run_tag_minimization_ablation,
    run_versioning_ablation,
)
from repro.experiments.config import (
    ExperimentConfig,
    config_from_env,
    default_config,
    full_config,
    quick_config,
)
from repro.experiments.failure_recovery import RecoveryResult, run_failure_recovery
from repro.experiments.fct import (
    FctPoint,
    default_failed_link,
    run_abilene_fct,
    run_fattree_fct,
    run_queue_cdf,
)
from repro.experiments.overhead import OverheadPoint, run_overhead_experiment
from repro.experiments.runner import (
    RunContext,
    RunResult,
    ScenarioSpec,
    SimulationResult,
    TopologySpec,
    build_routing_system,
    datacenter_policy,
    grid_map,
    run_grid,
    run_simulation,
    wan_policy,
)
from repro.experiments.scalability import (
    FATTREE_SIZES,
    RANDOM_SIZES,
    ScalabilityPoint,
    run_scalability_sweep,
    scalability_policies,
    waypoint_policy_for,
)
from repro.experiments import report

__all__ = [
    "ExperimentConfig",
    "default_config",
    "quick_config",
    "full_config",
    "config_from_env",
    "ScalabilityPoint",
    "run_scalability_sweep",
    "scalability_policies",
    "waypoint_policy_for",
    "FATTREE_SIZES",
    "RANDOM_SIZES",
    "FctPoint",
    "run_fattree_fct",
    "run_abilene_fct",
    "run_queue_cdf",
    "default_failed_link",
    "RecoveryResult",
    "run_failure_recovery",
    "OverheadPoint",
    "run_overhead_experiment",
    "AblationPoint",
    "run_probe_period_ablation",
    "run_flowlet_timeout_ablation",
    "run_versioning_ablation",
    "run_tag_minimization_ablation",
    "SimulationResult",
    "build_routing_system",
    "run_simulation",
    "datacenter_policy",
    "wan_policy",
    "ScenarioSpec",
    "TopologySpec",
    "RunContext",
    "RunResult",
    "run_grid",
    "grid_map",
    "report",
]
