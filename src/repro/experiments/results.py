"""Persistent, mergeable results store for grid sweeps.

A results store is a directory of append-only JSONL files: one record per
completed :class:`~repro.experiments.runner.ScenarioSpec` grid point, keyed
by the spec's canonical content hash (:func:`~repro.experiments.runner
.spec_hash`).  Because the key is a pure function of the spec — not of the
process, shard layout or execution order — the store gives two properties
for free:

* **resumability** — a rerun loads the store, skips every point whose hash
  is already present, and produces byte-identical output to an uninterrupted
  run (results are deterministic, so the stored copy *is* the recomputation);
* **shardability** — ``n`` independent processes each execute a deterministic
  ``1/n`` slice (round-robin by spec index: shard ``i`` owns every spec whose
  position satisfies ``index % n == i``) into their own shard file, and the
  union of the shard files contains exactly the records an unsharded run
  would have produced.  :func:`collect_results` then reassembles the full
  grid in spec order, so a merged report is byte-identical to an unsharded
  one.

Records round-trip exactly: summaries keep their float/int JSON types
(CPython's shortest-repr float serialization is lossless), queue CDFs are
stored as ``[point, value]`` pairs so their float keys survive JSON, and
throughput series are restored to tuples.  Two records for the same hash
must agree — a conflict means the store mixes incompatible runs and raises
:class:`~repro.exceptions.ExperimentError` rather than silently picking one.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ExperimentError
from repro.experiments.runner import (
    ExecutionBackend,
    RunResult,
    ScenarioSpec,
    SerialBackend,
    spec_hash,
)

__all__ = [
    "encode_result",
    "decode_result",
    "ResultsStore",
    "ShardedBackend",
    "collect_results",
    "gc_results",
    "parse_shard",
]


def encode_result(result: RunResult) -> dict:
    """One :class:`RunResult` as a JSON-serializable dict (exact round-trip)."""
    return {
        "name": result.name,
        "system": result.system,
        "workload": result.workload,
        "load": result.load,
        "seed": result.seed,
        "summary": result.summary,
        # Pairs, not an object: JSON object keys are strings, and the CDF is
        # keyed by float percentile points that must survive unchanged.
        "queue_cdf": [[point, value] for point, value in result.queue_cdf.items()]
        if result.queue_cdf is not None else None,
        "throughput": [[time, rate] for time, rate in result.throughput]
        if result.throughput is not None else None,
    }


def decode_result(record: dict) -> RunResult:
    """Rebuild the :class:`RunResult` written by :func:`encode_result`."""
    queue_cdf = record.get("queue_cdf")
    throughput = record.get("throughput")
    return RunResult(
        name=record["name"],
        system=record["system"],
        workload=record["workload"],
        load=record["load"],
        seed=record["seed"],
        summary=record["summary"],
        queue_cdf={point: value for point, value in queue_cdf}
        if queue_cdf is not None else None,
        throughput=[(time, rate) for time, rate in throughput]
        if throughput is not None else None,
    )


def parse_shard(text: str) -> Tuple[int, int]:
    """Parse an ``i/n`` shard selector; raises :class:`ExperimentError`."""
    try:
        index_text, count_text = text.split("/", 1)
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise ExperimentError(
            f"invalid shard selector {text!r}; expected i/n, e.g. 0/2") from None
    if count < 1 or not 0 <= index < count:
        raise ExperimentError(
            f"invalid shard selector {text!r}; need 0 <= i < n")
    return index, count


class ResultsStore:
    """One results directory: shard-local JSONL writes, union-of-files reads.

    Every store instance appends to its own shard file
    (``results-shard<i>of<n>.jsonl``) but :meth:`load` reads **all**
    ``results-*.jsonl`` files in the directory, so resume sees every shard's
    completed work regardless of which shard layout produced it.
    """

    def __init__(self, directory, shard_index: int = 0, shard_count: int = 1,
                 filename: Optional[str] = None):
        if shard_count < 1 or not 0 <= shard_index < shard_count:
            raise ExperimentError(
                f"invalid shard {shard_index}/{shard_count}; need 0 <= i < n")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shard_index = shard_index
        self.shard_count = shard_count
        if filename is None:
            filename = f"results-shard{shard_index}of{shard_count}.jsonl"
        elif not (filename.startswith("results-") and filename.endswith(".jsonl")):
            # load() unions results-*.jsonl; a write file outside that glob
            # would be invisible to every reader, merge and resume.
            raise ExperimentError(
                f"results filename {filename!r} must match results-*.jsonl")
        self.path = self.directory / filename
        self._repair_torn_tail()

    def _repair_torn_tail(self) -> None:
        """Truncate a partial final line of *this shard's own* file.

        A run killed mid-append leaves a line without a trailing newline;
        appending after it would glue two records into one undecodable line.
        Only the own shard file is repaired — other shards' files may be
        live right now, and their in-flight partial line is handled (skipped)
        by :meth:`load`'s final-line tolerance instead.
        """
        if not self.path.exists():
            return
        data = self.path.read_bytes()
        if not data or data.endswith(b"\n"):
            return
        self.path.write_bytes(data[:data.rfind(b"\n") + 1])

    # ------------------------------------------------------------------- read

    def load(self) -> Dict[str, RunResult]:
        """All completed points in the directory, keyed by spec hash.

        A file's *final* line may be a partial record — the in-flight append
        of a run that was killed mid-flush.  That line is skipped (its point
        simply re-executes on resume); an undecodable line anywhere else is
        real corruption and raises.
        """
        canonical: Dict[str, str] = {}
        payloads: Dict[str, dict] = {}
        for file, line_number, record in self._records():
            try:
                key, payload = record["spec_hash"], record["result"]
            except (KeyError, TypeError):
                raise ExperimentError(
                    f"corrupt results record at {file}:{line_number}") from None
            # Compare serialized forms, not dicts: summaries legitimately
            # carry NaN (e.g. avg_fct_ms of a streams-only run), and
            # NaN != NaN would make byte-identical duplicates look like a
            # conflict under dict equality.
            serialized = json.dumps(payload, sort_keys=True)
            if key in canonical and canonical[key] != serialized:
                raise ExperimentError(
                    f"conflicting results for spec hash {key[:12]}… in {file}: "
                    f"the store mixes records from incompatible runs")
            canonical[key] = serialized
            payloads[key] = payload
        return {key: decode_result(payload) for key, payload in payloads.items()}

    def _records(self):
        """Yield ``(file, line_number, record)`` over every decodable line."""
        for file in sorted(self.directory.glob("results-*.jsonl")):
            lines = file.read_text().splitlines()
            for line_number, line in enumerate(lines, 1):
                if not line.strip():
                    continue
                try:
                    yield file, line_number, json.loads(line)
                except json.JSONDecodeError:
                    if line_number == len(lines):
                        continue            # torn final append of a killed run
                    raise ExperimentError(
                        f"corrupt results record at {file}:{line_number}") from None

    # ------------------------------------------------------------------ write

    def record(self, spec: ScenarioSpec, result: RunResult,
               wall_s: Optional[float] = None,
               key: Optional[str] = None,
               owner: Optional[str] = None) -> None:
        """Append one completed grid point (flushed per record, crash-safe).

        ``wall_s`` is the wall-clock this execution spent on the point
        (measured where it executed); it lives *outside* the ``result``
        payload, so the conflict check stays on the deterministic result
        bytes while :meth:`total_wall_s` can sum the true compute invested
        in the store (every record is one actual execution — re-executed
        points count every time, skipped ones never).  ``key`` lets callers
        that already hold ``spec_hash(spec)`` skip recomputing it.  ``owner``
        tags the record with the coordinated worker that executed it — like
        ``point_wall_s`` it lives outside the ``result`` payload, so records
        for one point from different workers still deduplicate cleanly.
        """
        record = {
            "spec_hash": key if key is not None else spec_hash(spec),
            "spec_name": spec.name,
            "result": encode_result(result),
        }
        if wall_s is not None:
            record["point_wall_s"] = round(wall_s, 4)
        if owner is not None:
            record["owner"] = owner
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, separators=(",", ":")) + "\n")

    def total_wall_s(self) -> float:
        """Wall-clock summed over every record in the directory (see record)."""
        return sum(record.get("point_wall_s", 0.0)
                   for _, _, record in self._records())

    # ---------------------------------------------------------- shard metadata

    def write_meta(self, scenario: str, wall_s: float, total: int, assigned: int,
                   executed: int, skipped: int) -> Path:
        """Record this shard's run accounting next to its results file."""
        path = self.directory / (
            f"shard{self.shard_index}of{self.shard_count}.meta.json")
        path.write_text(json.dumps({
            "scenario": scenario,
            "shard_index": self.shard_index,
            "shard_count": self.shard_count,
            "wall_s": round(wall_s, 4),
            "total_points": total,
            "assigned": assigned,
            "executed": executed,
            "skipped": skipped,
        }, indent=2, sort_keys=True) + "\n")
        return path

    def load_metas(self) -> List[dict]:
        """Every shard meta record in the directory, in shard order.

        Sorted numerically by parsed ``(shard_count, shard_index)``, not by
        file name — lexicographic order would put ``shard10of12`` before
        ``shard2of12``.  Files whose names don't parse (there shouldn't be
        any; :meth:`write_meta` is the only writer) sort after the rest, by
        name.
        """
        files = []
        for file in sorted(self.directory.glob("shard*.meta.json")):
            match = re.match(r"shard(\d+)of(\d+)\.meta\.json$", file.name)
            order = ((0, int(match.group(2)), int(match.group(1)))
                     if match else (1, 0, 0))
            files.append((order, file))
        metas = []
        for _, file in sorted(files, key=lambda entry: (entry[0], entry[1].name)):
            try:
                metas.append(json.loads(file.read_text()))
            except json.JSONDecodeError:
                raise ExperimentError(f"corrupt shard meta file {file}") from None
        return metas


class ShardedBackend(ExecutionBackend):
    """Execute a deterministic 1/n slice of a grid against a results store.

    Shard ``i`` of ``n`` owns the specs at positions ``i, i+n, i+2n, …`` of
    the (deterministically ordered) spec list — round-robin assignment, so
    every shard gets a balanced cross-section of the grid axes.  Points whose
    hash is already in the store are skipped (resume); fresh points run on
    the ``inner`` backend and are appended to the shard's file as they
    complete.  ``run`` returns the shard's results in slice order — the
    *decoded store copies*, so a direct run and a later merge read the exact
    same bytes.
    """

    def __init__(self, store: ResultsStore, inner: Optional[ExecutionBackend] = None):
        self.store = store
        self.inner = inner if inner is not None else SerialBackend()
        # Accounting for the caller's progress report, filled in by run().
        self.assigned = 0
        self.executed = 0
        self.skipped = 0

    def run(self, specs: Sequence[ScenarioSpec]) -> List[RunResult]:
        specs = list(specs)
        count, index = self.store.shard_count, self.store.shard_index
        mine = [spec for position, spec in enumerate(specs)
                if position % count == index]
        hashes = [spec_hash(spec) for spec in mine]
        completed = self.store.load()
        todo = [(spec, key) for spec, key in zip(mine, hashes)
                if key not in completed]
        # Stream the inner backend: each point is recorded as it arrives
        # (per point from a serial inner, per completed chunk from a pool),
        # so an interrupted shard resumes from its last persisted point, not
        # from scratch.  Wall-clock comes from run_iter_timed, i.e. measured
        # where the point executed.  The encode/decode round-trip keeps the
        # returned objects identical to what a later merge reads back.
        fresh = self.inner.run_iter_timed([spec for spec, _ in todo])
        for (spec, key), (result, wall_s) in zip(todo, fresh):
            self.store.record(spec, result, wall_s=wall_s, key=key)
            completed[key] = decode_result(encode_result(result))
        self.assigned = len(mine)
        self.executed = len(todo)
        self.skipped = len(mine) - len(todo)
        return [completed[key] for key in hashes]


def gc_results(specs: Sequence[ScenarioSpec], directory) -> Dict[str, int]:
    """Garbage-collect a results directory against the current spec grid.

    Long-lived stores accumulate records a scenario no longer defines (spec
    or config drift re-keys every point), duplicate records from re-executed
    resumes, and torn half-written tails from killed runs.  GC rewrites the
    directory as **one** compacted shard file (``results-shard0of1.jsonl``)
    containing exactly one record per *current* spec hash, in spec-grid
    order, and removes the superseded shard files and their meta records.

    Kept records are byte-preserved (including their ``point_wall_s``), so a
    later :func:`collect_results` merge reads the same bytes; duplicate
    records are verified identical first — a conflict raises rather than
    silently picking a side.  Dropped-duplicate wall-clock history is
    discarded with the duplicates (``total_wall_s`` afterwards counts one
    execution per point).

    Returns a summary: total records seen, records kept, stale records
    dropped, duplicates dropped, and how many grid points remain missing.
    """
    store = ResultsStore(directory)
    valid = [spec_hash(spec) for spec in specs]
    valid_set = set(valid)
    kept: Dict[str, dict] = {}
    canonical: Dict[str, str] = {}
    total = stale = duplicates = 0
    for file, line_number, record in store._records():
        total += 1
        try:
            key, payload = record["spec_hash"], record["result"]
        except (KeyError, TypeError):
            raise ExperimentError(
                f"corrupt results record at {file}:{line_number}") from None
        if key not in valid_set:
            stale += 1
            continue
        serialized = json.dumps(payload, sort_keys=True)
        if key in kept:
            if canonical[key] != serialized:
                raise ExperimentError(
                    f"conflicting results for spec hash {key[:12]}… in {file}: "
                    f"the store mixes records from incompatible runs")
            duplicates += 1
            continue
        kept[key] = record
        canonical[key] = serialized
    compacted = store.directory / "results-shard0of1.jsonl"
    staging = store.directory / ".gc-compact.tmp"
    with staging.open("w", encoding="utf-8") as handle:
        for key in valid:
            record = kept.get(key)
            if record is not None:
                handle.write(json.dumps(record, separators=(",", ":")) + "\n")
    # Crash ordering: land the compacted file (atomic rename) *before*
    # unlinking the superseded shards — a kill anywhere in between leaves a
    # store that still holds every kept record (at worst alongside old shard
    # files whose records the compacted file duplicates identically, which
    # load() tolerates).  Deleting first would let a kill destroy the store.
    staging.replace(compacted)
    for file in sorted(store.directory.glob("results-*.jsonl")):
        if file != compacted:
            file.unlink()
    for file in sorted(store.directory.glob("shard*.meta.json")):
        file.unlink()
    for file in sorted(store.directory.glob("worker-*.meta.json")):
        file.unlink()
    # Lease hygiene: drop leases whose point is already recorded or no
    # longer in the grid, and stale ones left by killed workers; leases a
    # live drain still holds on pending points are reported, not touched.
    # Imported lazily — coordinator imports this module at top level.
    from repro.experiments.coordinator import gc_leases
    leases_removed, leases_live = gc_leases(directory, valid_set, set(kept))
    return {
        "total_records": total,
        "kept": len(kept),
        "dropped_stale": stale,
        "dropped_duplicates": duplicates,
        "missing": len(specs) - len(kept),
        "leases_removed": leases_removed,
        "leases_live": leases_live,
    }


def collect_results(specs: Sequence[ScenarioSpec], store: ResultsStore) -> List[RunResult]:
    """Assemble the full grid from the store, in spec order (merge semantics).

    Raises :class:`ExperimentError` naming the first missing point when any
    shard has not completed — a partial merge would silently produce a
    report computed over a different grid than the scenario defines.
    """
    completed = store.load()
    results = []
    missing = []
    for spec in specs:
        result = completed.get(spec_hash(spec))
        if result is None:
            missing.append(spec.name)
        else:
            results.append(result)
    if missing:
        raise ExperimentError(
            f"results store {store.directory} is missing {len(missing)} of "
            f"{len(specs)} grid points (first missing: {missing[0]!r}); "
            f"run the remaining shards before merging")
    return results
