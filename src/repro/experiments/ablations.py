"""Ablation studies of Contra's design choices.

These are not figures in the paper, but each corresponds to a refinement the
design section argues for; DESIGN.md lists them as the extension experiments:

* **probe period sweep** (§5.2) — too-short periods make slower paths look
  permanently stale; too-long periods slow reaction to congestion;
* **flowlet timeout sweep** (§5.3) — small timeouts reorder packets, large
  timeouts pin flows to stale paths;
* **versioned vs unversioned probes** (§5.1) — disabling version numbers
  re-creates the loop hazard of a naive distance-vector protocol;
* **tag minimisation** (§6.1/§6.2) — effect of the compiler optimisation on
  the number of tags and on switch state.

The simulation ablations are grid scenarios with protocol overrides
(``probe_period`` / ``flowlet_timeout`` / ``use_versioning``), so one sweep
fans its parameter points across cores.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.compiler import CompileOptions, compile_policy
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.fct import fattree_spec
from repro.experiments.runner import RunResult, ScenarioSpec, run_grid
from repro.experiments.scalability import waypoint_policy_for

__all__ = [
    "AblationPoint",
    "run_probe_period_ablation",
    "run_flowlet_timeout_ablation",
    "run_versioning_ablation",
    "run_tag_minimization_ablation",
]


@dataclass
class AblationPoint:
    """One ablation measurement."""

    parameter: str
    value: float
    avg_fct_ms: float
    loop_fraction: float
    loop_detections: int
    overhead_ratio: float
    completed: int
    flows: int


def _to_point(parameter: str, value: float, result: RunResult) -> AblationPoint:
    summary = result.summary
    return AblationPoint(
        parameter=parameter,
        value=value,
        avg_fct_ms=summary["avg_fct_ms"],
        loop_fraction=summary["loop_fraction"],
        loop_detections=int(summary["loop_detections"]),
        overhead_ratio=summary["overhead_ratio"],
        completed=int(summary["completed_flows"]),
        flows=int(summary["flows"]),
    )


def _contra_spec(config: ExperimentConfig, load: float, name: str, **overrides) -> ScenarioSpec:
    return ScenarioSpec(
        name=name,
        system="contra",
        topology=fattree_spec(config),
        config=config,
        policy="datacenter",
        workload="web_search",
        load=load,
        seed=config.seed,
        **overrides,
    )


def run_probe_period_ablation(
    config: Optional[ExperimentConfig] = None,
    periods: Sequence[float] = (0.128, 0.256, 0.512, 1.024),
    load: float = 0.6,
    processes: Optional[int] = None,
) -> List[AblationPoint]:
    """FCT and overhead as a function of the probe period (§5.2)."""
    config = config or default_config()
    specs = [_contra_spec(config, load, f"ablation:probe-period:{period}",
                          probe_period=period)
             for period in periods]
    results = run_grid(specs, processes)
    return [_to_point("probe_period_ms", period, result)
            for period, result in zip(periods, results)]


def run_flowlet_timeout_ablation(
    config: Optional[ExperimentConfig] = None,
    timeouts: Sequence[float] = (0.05, 0.2, 0.8, 3.2),
    load: float = 0.6,
    processes: Optional[int] = None,
) -> List[AblationPoint]:
    """FCT as a function of the flowlet timeout (§5.3)."""
    config = config or default_config()
    specs = [_contra_spec(config, load, f"ablation:flowlet-timeout:{timeout}",
                          flowlet_timeout=timeout)
             for timeout in timeouts]
    results = run_grid(specs, processes)
    return [_to_point("flowlet_timeout_ms", timeout, result)
            for timeout, result in zip(timeouts, results)]


def run_versioning_ablation(
    config: Optional[ExperimentConfig] = None,
    load: float = 0.6,
    processes: Optional[int] = None,
) -> List[AblationPoint]:
    """Versioned probes (§5.1) vs an unversioned distance-vector variant."""
    config = config or default_config()
    variants = (True, False)
    specs = [_contra_spec(config, load, f"ablation:versioning:{use_versioning}",
                          use_versioning=use_versioning)
             for use_versioning in variants]
    results = run_grid(specs, processes)
    return [_to_point("use_versioning", 1.0 if use_versioning else 0.0, result)
            for use_versioning, result in zip(variants, results)]


@dataclass
class TagMinimizationPoint:
    """Compiler statistics with and without tag minimisation."""

    minimize_tags: bool
    pg_nodes: int
    max_tags_per_switch: int
    max_state_kb: float
    compile_time_s: float


def run_tag_minimization_ablation(sizes: Sequence[int] = (20, 125)) -> List[TagMinimizationPoint]:
    """Effect of the tag-minimisation optimisation on a waypointing policy."""
    from repro.topology.fattree import fattree_for_switch_count

    points: List[TagMinimizationPoint] = []
    for size in sizes:
        topology = fattree_for_switch_count(size)
        policy = waypoint_policy_for(topology)
        for minimize_tags in (True, False):
            options = CompileOptions(minimize_tags=minimize_tags)
            compiled = compile_policy(policy, topology, options)
            points.append(TagMinimizationPoint(
                minimize_tags=minimize_tags,
                pg_nodes=compiled.product_graph.num_nodes,
                max_tags_per_switch=compiled.product_graph.max_tags_per_switch(),
                max_state_kb=compiled.max_state_kb(),
                compile_time_s=compiled.compile_time,
            ))
    return points
