"""Flow-completion-time experiments (Figures 11, 12, 13 and 15).

* :func:`run_fattree_fct` — symmetric fat-tree, ECMP vs Contra vs Hula over
  the web-search and cache workloads as load sweeps (Figure 11); passing a
  failed aggregation–core link reproduces the asymmetric variant (Figure 12).
* :func:`run_queue_cdf` — queue-length CDF of Contra vs ECMP at 60% load on
  the asymmetric fat-tree (Figure 13).
* :func:`run_abilene_fct` — shortest-path vs Contra(MU) vs SPAIN on Abilene
  with four random sender/receiver pairs (Figure 15).

All drivers are split into a pure spec builder (``*_specs``) and a result
projection, glued by ``run_*`` through
:func:`~repro.experiments.runner.run_grid` — so every sweep parallelizes
across cores (``processes=`` / ``$CONTRA_PROCS``) and shards/resumes through
the results store without any change to the results.
:func:`run_flow_size_sensitivity` additionally sweeps the flow-size
distribution scale (``workload_scale``) at fixed load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import (
    RunResult,
    ScenarioSpec,
    TopologySpec,
    default_failed_link,
    run_grid,
)
from repro.topology.abilene import abilene
from repro.topology.graph import Topology

__all__ = [
    "FctPoint",
    "default_failed_link",
    "fattree_spec",
    "fattree_fct_specs",
    "abilene_fct_specs",
    "queue_cdf_specs",
    "incast_specs",
    "transport_sensitivity_specs",
    "flow_size_sensitivity_specs",
    "to_fct_points",
    "run_fattree_fct",
    "run_abilene_fct",
    "run_queue_cdf",
    "run_incast",
    "run_transport_sensitivity",
    "run_flow_size_sensitivity",
]


@dataclass
class FctPoint:
    """One (workload, load, system) measurement."""

    workload: str
    load: float
    system: str
    avg_fct_ms: float
    p99_fct_ms: float
    completed: int
    flows: int
    drops: int
    overhead_ratio: float
    loop_fraction: float


def fattree_spec(config: ExperimentConfig) -> TopologySpec:
    """The shared fat-tree topology description of the datacenter experiments."""
    return TopologySpec("fattree", k=config.fattree_k, capacity=config.host_capacity,
                        oversubscription=config.oversubscription)


#: Default sender/receiver city pairs for the Abilene experiment.  The paper
#: picks four random pairs; we fix four pairs whose shortest paths all collide
#: on the IPL–CHI link while the backbone still has spare capacity on the
#: ATL–WDC–NYC side.  Static shortest-path routing therefore congests a single
#: link, SPAIN's pre-computed path sets spread some of the load, and Contra's
#: utilization-aware routing spreads it dynamically — the Figure 15 contrast.
ABILENE_DEFAULT_PAIRS = (
    ("DEN", "NYC"),
    ("KSC", "NYC"),
    ("HOU", "CHI"),
    ("ATL", "CHI"),
)


def abilene_pairs(topology: Topology, pairs: int) -> Tuple[List[str], List[str]]:
    """Sender/receiver hosts for the Figure 15 experiment (coast-to-coast)."""
    chosen = ABILENE_DEFAULT_PAIRS[:pairs]
    if len(chosen) < pairs:
        raise ValueError(f"at most {len(ABILENE_DEFAULT_PAIRS)} default Abilene pairs exist")
    senders = [topology.hosts_of_switch(src)[0] for src, _ in chosen]
    receivers = [topology.hosts_of_switch(dst)[0] for _, dst in chosen]
    return senders, receivers


def fattree_fct_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("ecmp", "contra", "hula"),
    workloads: Sequence[str] = ("web_search", "cache"),
    loads: Optional[Sequence[float]] = None,
    asymmetric: bool = False,
) -> List[ScenarioSpec]:
    """The Figure 11 (symmetric) / Figure 12 (asymmetric) grid as specs."""
    loads = tuple(loads) if loads is not None else config.loads
    topology = fattree_spec(config)
    return [
        ScenarioSpec(
            name=f"fct:{workload}:{load}:{system}",
            system=system,
            topology=topology,
            config=config,
            policy="datacenter",
            workload=workload,
            load=load,
            seed=config.seed,
            fail_agg_core_link=asymmetric,
            stop_after_completion=True,
        )
        for workload in workloads
        for load in loads
        for system in systems
    ]


def run_fattree_fct(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("ecmp", "contra", "hula"),
    workloads: Sequence[str] = ("web_search", "cache"),
    loads: Optional[Sequence[float]] = None,
    asymmetric: bool = False,
    processes: Optional[int] = None,
) -> List[FctPoint]:
    """The Figure 11 (symmetric) / Figure 12 (asymmetric) sweep."""
    config = config or default_config()
    specs = fattree_fct_specs(config, systems, workloads, loads, asymmetric)
    return to_fct_points(run_grid(specs, processes))


def abilene_fct_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("shortest-path", "contra", "spain"),
    workloads: Sequence[str] = ("web_search", "cache"),
    loads: Optional[Sequence[float]] = None,
    pairs: int = 4,
) -> List[ScenarioSpec]:
    """The Figure 15 grid on the Abilene topology as specs."""
    loads = tuple(loads) if loads is not None else config.loads
    topo_spec = TopologySpec("abilene", capacity=config.abilene_capacity,
                             hosts_per_switch=1)
    senders, receivers = abilene_pairs(
        abilene(capacity=config.abilene_capacity, hosts_per_switch=1), pairs)
    return [
        ScenarioSpec(
            name=f"abilene:{workload}:{load}:{system}",
            system=system,
            topology=topo_spec,
            config=config,
            policy="wan",
            workload=workload,
            load=load,
            seed=config.seed,
            workload_host_rate=config.abilene_host_rate,
            senders=tuple(senders),
            receivers=tuple(receivers),
            pair_senders_receivers=True,
            # A WAN's best (least-utilized) paths can be much longer in
            # propagation delay than its shortest paths, so the probe period
            # must respect the compiler's RTT-derived bound (§5.2) rather
            # than the datacenter default.
            respect_compiled_probe_period=True,
            stop_after_completion=True,
        )
        for workload in workloads
        for load in loads
        for system in systems
    ]


def run_abilene_fct(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("shortest-path", "contra", "spain"),
    workloads: Sequence[str] = ("web_search", "cache"),
    loads: Optional[Sequence[float]] = None,
    pairs: int = 4,
    processes: Optional[int] = None,
) -> List[FctPoint]:
    """The Figure 15 sweep on the Abilene topology."""
    config = config or default_config()
    specs = abilene_fct_specs(config, systems, workloads, loads, pairs)
    return to_fct_points(run_grid(specs, processes))


def queue_cdf_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("ecmp", "contra"),
    load: float = 0.6,
    workload: str = "web_search",
    cdf_points: Sequence[float] = (0.5, 0.75, 0.9, 0.95, 0.99, 1.0),
) -> List[ScenarioSpec]:
    """The Figure 13 queue-length CDF grid as specs."""
    return [
        ScenarioSpec(
            name=f"queue-cdf:{system}",
            system=system,
            topology=fattree_spec(config),
            config=config,
            policy="datacenter",
            workload=workload,
            load=load,
            seed=config.seed,
            fail_agg_core_link=True,
            cdf_points=tuple(cdf_points),
            stop_after_completion=True,
        )
        for system in systems
    ]


def run_queue_cdf(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("ecmp", "contra"),
    load: float = 0.6,
    workload: str = "web_search",
    cdf_points: Sequence[float] = (0.5, 0.75, 0.9, 0.95, 0.99, 1.0),
    processes: Optional[int] = None,
) -> Dict[str, Dict[float, float]]:
    """The Figure 13 queue-length CDF comparison (asymmetric fat-tree, 60% load)."""
    config = config or default_config()
    specs = queue_cdf_specs(config, systems, load, workload, cdf_points)
    return {result.system: result.queue_cdf for result in run_grid(specs, processes)}


def incast_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("ecmp", "contra", "hula"),
    fanins: Sequence[int] = (4, 8),
    load: float = 0.8,
    workload: str = "cache",
) -> List[ScenarioSpec]:
    """The N-to-1 fan-in grid as specs (``load`` is receiver-scoped)."""
    return [
        ScenarioSpec(
            name=f"incast:{fanin}to1:{system}",
            system=system,
            topology=fattree_spec(config),
            config=config,
            policy="datacenter",
            workload=workload,
            load=load,
            seed=config.seed,
            traffic="incast",
            incast_fanin=fanin,
            stop_after_completion=True,
        )
        for fanin in fanins
        for system in systems
    ]


def run_incast(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("ecmp", "contra", "hula"),
    fanins: Sequence[int] = (4, 8),
    load: float = 0.8,
    workload: str = "cache",
    processes: Optional[int] = None,
) -> List[RunResult]:
    """N-to-1 fan-in traffic on the fat-tree (the Harmonia-style workload).

    ``load`` is the offered load at the *receiver's* access link; the grid
    sweeps the fan-in degree so the report shows how each system copes as
    more senders converge on one host.
    """
    config = config or default_config()
    return run_grid(incast_specs(config, systems, fanins, load, workload), processes)


def transport_sensitivity_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("ecmp", "contra"),
    transports: Sequence[str] = ("fixed", "slowstart", "paced"),
    loads: Optional[Sequence[float]] = None,
    workload: str = "web_search",
) -> List[ScenarioSpec]:
    """The transport mode × load grid (asymmetric fat-tree) as specs."""
    loads = tuple(loads) if loads is not None else config.loads
    return [
        ScenarioSpec(
            name=f"transport:{transport}:{workload}:{load}:{system}",
            system=system,
            topology=fattree_spec(config),
            config=config,
            policy="datacenter",
            workload=workload,
            load=load,
            seed=config.seed,
            transport=transport,
            fail_agg_core_link=True,
            stop_after_completion=True,
        )
        for transport in transports
        for load in loads
        for system in systems
    ]


def run_transport_sensitivity(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("ecmp", "contra"),
    transports: Sequence[str] = ("fixed", "slowstart", "paced"),
    loads: Optional[Sequence[float]] = None,
    workload: str = "web_search",
    processes: Optional[int] = None,
) -> List[RunResult]:
    """Transport mode × load on the asymmetric fat-tree (Figure 13 setting).

    The Figure 13 tail comparison (Contra vs ECMP p99 under an asymmetric
    failure) sits on top of the host transport: a fixed-window sender blasts
    a full window at flow start, which both inflates tail queues and masks
    how much of the gap is transport artefact vs routing.  This grid reruns
    the comparison under every transport mode so the sensitivity of the tail
    (and of the goodput/retransmit split) to the sender model is quantified
    rather than assumed.
    """
    config = config or default_config()
    specs = transport_sensitivity_specs(config, systems, transports, loads, workload)
    return run_grid(specs, processes)


def flow_size_sensitivity_specs(
    config: ExperimentConfig,
    systems: Sequence[str] = ("ecmp", "contra"),
    scale_factors: Sequence[float] = (0.5, 1.0, 2.0),
    load: float = 0.6,
    workload: str = "web_search",
) -> List[ScenarioSpec]:
    """The flow-size sensitivity grid: ``workload_scale`` × system as specs.

    Each factor multiplies the config's per-workload distribution scale
    (``websearch_scale`` / ``cache_scale``), so ``1.0`` reproduces the
    standard sweep point and the other factors shrink/grow every flow while
    keeping arrivals and pairings identical — isolating how each system's
    FCT advantage depends on flow size (short flows barely see flowlet
    rerouting; long flows live or die by it).
    """
    base_scale = {"web_search": config.websearch_scale,
                  "cache": config.cache_scale}.get(workload, 1.0)
    return [
        ScenarioSpec(
            name=f"flow-size:{factor}x:{system}",
            system=system,
            topology=fattree_spec(config),
            config=config,
            policy="datacenter",
            workload=workload,
            load=load,
            seed=config.seed,
            workload_scale=base_scale * factor,
            stop_after_completion=True,
        )
        for factor in scale_factors
        for system in systems
    ]


def run_flow_size_sensitivity(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("ecmp", "contra"),
    scale_factors: Sequence[float] = (0.5, 1.0, 2.0),
    load: float = 0.6,
    workload: str = "web_search",
    processes: Optional[int] = None,
) -> List[RunResult]:
    """Sweep the flow-size distribution scale at fixed load (fat-tree)."""
    config = config or default_config()
    specs = flow_size_sensitivity_specs(config, systems, scale_factors, load, workload)
    return run_grid(specs, processes)


def to_fct_points(results: Sequence[RunResult]) -> List[FctPoint]:
    """Project grid results onto the FCT report rows."""
    return [_to_point(result) for result in results]


def _to_point(result: RunResult) -> FctPoint:
    summary = result.summary
    return FctPoint(
        workload=result.workload,
        load=result.load,
        system=result.system,
        avg_fct_ms=summary["avg_fct_ms"],
        p99_fct_ms=summary["p99_fct_ms"],
        completed=int(summary["completed_flows"]),
        flows=int(summary["flows"]),
        drops=int(summary["drops"]),
        overhead_ratio=summary["overhead_ratio"],
        loop_fraction=summary["loop_fraction"],
    )
