"""Flow-completion-time experiments (Figures 11, 12, 13 and 15).

* :func:`run_fattree_fct` — symmetric fat-tree, ECMP vs Contra vs Hula over
  the web-search and cache workloads as load sweeps (Figure 11); passing a
  failed aggregation–core link reproduces the asymmetric variant (Figure 12).
* :func:`run_queue_cdf` — queue-length CDF of Contra vs ECMP at 60% load on
  the asymmetric fat-tree (Figure 13).
* :func:`run_abilene_fct` — shortest-path vs Contra(MU) vs SPAIN on Abilene
  with four random sender/receiver pairs (Figure 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.compiler import compile_policy
from repro.experiments.config import ExperimentConfig, default_config
from repro.experiments.runner import (
    SimulationResult,
    build_routing_system,
    datacenter_policy,
    run_simulation,
    wan_policy,
)
from repro.topology.abilene import abilene
from repro.topology.fattree import fattree
from repro.topology.graph import Topology
from repro.workloads import distribution_by_name, generate_workload, random_pairs

__all__ = [
    "FctPoint",
    "default_failed_link",
    "run_fattree_fct",
    "run_abilene_fct",
    "run_queue_cdf",
]


@dataclass
class FctPoint:
    """One (workload, load, system) measurement."""

    workload: str
    load: float
    system: str
    avg_fct_ms: float
    p99_fct_ms: float
    completed: int
    flows: int
    drops: int
    overhead_ratio: float
    loop_fraction: float


def default_failed_link(topology: Topology) -> Tuple[str, str]:
    """The aggregation–core link failed in the asymmetric experiments (§6.3)."""
    for agg in topology.switches_with_role("aggregation"):
        for neighbor in topology.switch_neighbors(agg):
            if topology.node_role(neighbor) == "core":
                return (agg, neighbor)
    raise ValueError("topology has no aggregation-core link to fail")


def _workload_scale(config: ExperimentConfig, name: str) -> float:
    return config.websearch_scale if name == "web_search" else config.cache_scale


#: Default sender/receiver city pairs for the Abilene experiment.  The paper
#: picks four random pairs; we fix four pairs whose shortest paths all collide
#: on the IPL–CHI link while the backbone still has spare capacity on the
#: ATL–WDC–NYC side.  Static shortest-path routing therefore congests a single
#: link, SPAIN's pre-computed path sets spread some of the load, and Contra's
#: utilization-aware routing spreads it dynamically — the Figure 15 contrast.
ABILENE_DEFAULT_PAIRS = (
    ("DEN", "NYC"),
    ("KSC", "NYC"),
    ("HOU", "CHI"),
    ("ATL", "CHI"),
)


def abilene_pairs(topology: Topology, pairs: int) -> Tuple[List[str], List[str]]:
    """Sender/receiver hosts for the Figure 15 experiment (coast-to-coast)."""
    chosen = ABILENE_DEFAULT_PAIRS[:pairs]
    if len(chosen) < pairs:
        raise ValueError(f"at most {len(ABILENE_DEFAULT_PAIRS)} default Abilene pairs exist")
    senders = [topology.hosts_of_switch(src)[0] for src, _ in chosen]
    receivers = [topology.hosts_of_switch(dst)[0] for _, dst in chosen]
    return senders, receivers


def run_fattree_fct(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("ecmp", "contra", "hula"),
    workloads: Sequence[str] = ("web_search", "cache"),
    loads: Optional[Sequence[float]] = None,
    asymmetric: bool = False,
) -> List[FctPoint]:
    """The Figure 11 (symmetric) / Figure 12 (asymmetric) sweep."""
    config = config or default_config()
    loads = tuple(loads) if loads is not None else config.loads
    topology = fattree(config.fattree_k, capacity=config.host_capacity,
                       oversubscription=config.oversubscription)
    failed_link = default_failed_link(topology) if asymmetric else None
    compiled = compile_policy(datacenter_policy(), topology)

    results: List[FctPoint] = []
    for workload_name in workloads:
        distribution = distribution_by_name(workload_name, _workload_scale(config, workload_name))
        for load in loads:
            spec = generate_workload(
                topology, distribution, load=load,
                duration=config.workload_duration,
                host_capacity=config.host_capacity,
                seed=config.seed,
                start_after=config.warmup,
            )
            for system_name in systems:
                system = build_routing_system(system_name, topology, config, compiled=compiled)
                result = run_simulation(
                    topology, system, spec.flows, config,
                    failed_link=failed_link,
                    system_name=system_name, load=load, workload_name=workload_name,
                )
                results.append(_to_point(result))
    return results


def run_abilene_fct(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("shortest-path", "contra", "spain"),
    workloads: Sequence[str] = ("web_search", "cache"),
    loads: Optional[Sequence[float]] = None,
    pairs: int = 4,
) -> List[FctPoint]:
    """The Figure 15 sweep on the Abilene topology."""
    config = config or default_config()
    loads = tuple(loads) if loads is not None else config.loads
    topology = abilene(capacity=config.abilene_capacity, hosts_per_switch=1)
    senders, receivers = abilene_pairs(topology, pairs)
    compiled = compile_policy(wan_policy(), topology)
    # A WAN's best (least-utilized) paths can be much longer in propagation
    # delay than its shortest paths, so the probe period must respect the
    # compiler's RTT-derived bound (§5.2) rather than the datacenter default.
    from dataclasses import replace as _replace
    config = _replace(config, probe_period=max(config.probe_period, compiled.probe_period))

    results: List[FctPoint] = []
    for workload_name in workloads:
        distribution = distribution_by_name(workload_name, _workload_scale(config, workload_name))
        for load in loads:
            spec = generate_workload(
                topology, distribution, load=load,
                duration=config.workload_duration,
                host_capacity=config.abilene_host_rate,
                seed=config.seed,
                senders=senders, receivers=receivers,
                pair_senders_receivers=True,
                start_after=config.warmup,
            )
            for system_name in systems:
                system = build_routing_system(system_name, topology, config, compiled=compiled)
                result = run_simulation(
                    topology, system, spec.flows, config,
                    system_name=system_name, load=load, workload_name=workload_name,
                )
                results.append(_to_point(result))
    return results


def run_queue_cdf(
    config: Optional[ExperimentConfig] = None,
    systems: Sequence[str] = ("ecmp", "contra"),
    load: float = 0.6,
    workload: str = "web_search",
    cdf_points: Sequence[float] = (0.5, 0.75, 0.9, 0.95, 0.99, 1.0),
) -> Dict[str, Dict[float, float]]:
    """The Figure 13 queue-length CDF comparison (asymmetric fat-tree, 60% load)."""
    config = config or default_config()
    topology = fattree(config.fattree_k, capacity=config.host_capacity,
                       oversubscription=config.oversubscription)
    failed_link = default_failed_link(topology)
    compiled = compile_policy(datacenter_policy(), topology)
    distribution = distribution_by_name(workload, _workload_scale(config, workload))
    spec = generate_workload(
        topology, distribution, load=load,
        duration=config.workload_duration,
        host_capacity=config.host_capacity,
        seed=config.seed,
        start_after=config.warmup,
    )

    cdfs: Dict[str, Dict[float, float]] = {}
    for system_name in systems:
        system = build_routing_system(system_name, topology, config, compiled=compiled)
        result = run_simulation(topology, system, spec.flows, config,
                                failed_link=failed_link,
                                system_name=system_name, load=load, workload_name=workload)
        cdfs[system_name] = result.stats.queue_length_cdf(cdf_points)
    return cdfs


def _to_point(result: SimulationResult) -> FctPoint:
    summary = result.summary
    return FctPoint(
        workload=result.workload,
        load=result.load,
        system=result.system,
        avg_fct_ms=summary["avg_fct_ms"],
        p99_fct_ms=summary["p99_fct_ms"],
        completed=int(summary["completed_flows"]),
        flows=int(summary["flows"]),
        drops=int(summary["drops"]),
        overhead_ratio=summary["overhead_ratio"],
        loop_fraction=summary["loop_fraction"],
    )
