"""Core topology model.

A :class:`Topology` is a collection of named switches and hosts connected by
bidirectional links with capacities and propagation delays.  It is the input
to both the Contra compiler (which only needs the switch-level graph) and the
discrete-event simulator (which also needs the hosts and link parameters).

The model deliberately keeps units abstract:

* capacity is expressed in *packets per millisecond* so the simulator does not
  have to track bytes at 10 Gbps scale, and
* latency is expressed in *milliseconds*.

Relative comparisons between routing systems (the thing the Contra evaluation
measures) are invariant to this scaling; see DESIGN.md §4.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from repro.exceptions import TopologyError

__all__ = ["Link", "Topology", "NodeKind"]


class NodeKind:
    """Symbolic names for the node roles used by topology generators."""

    SWITCH = "switch"
    HOST = "host"
    # Finer-grained roles used by datacenter generators; all are switches.
    CORE = "core"
    AGGREGATION = "aggregation"
    EDGE = "edge"
    SPINE = "spine"
    LEAF = "leaf"

    SWITCH_ROLES = frozenset({SWITCH, CORE, AGGREGATION, EDGE, SPINE, LEAF})


@dataclass(frozen=True)
class Link:
    """A directed link between two nodes.

    Topologies are built from bidirectional links, but internally every
    bidirectional link is stored as two directed :class:`Link` objects so the
    simulator can model asymmetric queues and per-direction utilization.
    """

    src: str
    dst: str
    capacity: float = 10.0
    latency: float = 0.05
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise TopologyError(f"self-loop link {self.src!r} -> {self.dst!r} is not allowed")
        if self.capacity <= 0:
            raise TopologyError(f"link {self.src}->{self.dst} capacity must be positive")
        if self.latency < 0:
            raise TopologyError(f"link {self.src}->{self.dst} latency must be non-negative")

    @property
    def key(self) -> Tuple[str, str]:
        """The (src, dst) pair identifying this directed link."""
        return (self.src, self.dst)

    def reversed(self) -> "Link":
        """Return the same link in the opposite direction."""
        return replace(self, src=self.dst, dst=self.src)


class Topology:
    """A network topology of switches, hosts and links.

    Parameters
    ----------
    name:
        Human readable topology name, used in reports.
    """

    def __init__(self, name: str = "topology"):
        self.name = name
        self._nodes: Dict[str, str] = {}              # node -> kind
        self._links: Dict[Tuple[str, str], Link] = {}  # directed
        self._host_attachment: Dict[str, str] = {}     # host -> switch
        #: Lazily built adjacency index (node -> sorted out-neighbors).
        #: Without it every ``neighbors`` call scans all links, which turns
        #: the compiler's all-pairs passes (``max_rtt``, shortest paths) into
        #: O(V·V·E) and dominates compile time beyond a few hundred switches.
        self._neighbor_index: Dict[str, List[str]] = {}
        self._neighbor_index_built = False

    # ------------------------------------------------------------------ nodes

    def add_switch(self, node: str, role: str = NodeKind.SWITCH) -> None:
        """Add a switch (optionally with a datacenter role such as ``core``)."""
        if role not in NodeKind.SWITCH_ROLES:
            raise TopologyError(f"unknown switch role {role!r}")
        existing = self._nodes.get(node)
        if existing is not None and existing not in NodeKind.SWITCH_ROLES:
            raise TopologyError(f"node {node!r} already exists as a host")
        self._nodes[node] = role

    def add_host(self, host: str, switch: str) -> None:
        """Add a host attached to ``switch``; the attachment link is added separately."""
        if host in self._nodes and self._nodes[host] in NodeKind.SWITCH_ROLES:
            raise TopologyError(f"node {host!r} already exists as a switch")
        if switch not in self._nodes or self._nodes[switch] not in NodeKind.SWITCH_ROLES:
            raise TopologyError(f"host {host!r} attaches to unknown switch {switch!r}")
        self._nodes[host] = NodeKind.HOST
        self._host_attachment[host] = switch

    def has_node(self, node: str) -> bool:
        return node in self._nodes

    def node_role(self, node: str) -> str:
        try:
            return self._nodes[node]
        except KeyError:
            raise TopologyError(f"unknown node {node!r}") from None

    def is_switch(self, node: str) -> bool:
        return self._nodes.get(node) in NodeKind.SWITCH_ROLES

    def is_host(self, node: str) -> bool:
        return self._nodes.get(node) == NodeKind.HOST

    @property
    def switches(self) -> List[str]:
        """All switch names, sorted for determinism."""
        return sorted(n for n, kind in self._nodes.items() if kind in NodeKind.SWITCH_ROLES)

    @property
    def hosts(self) -> List[str]:
        """All host names, sorted for determinism."""
        return sorted(n for n, kind in self._nodes.items() if kind == NodeKind.HOST)

    @property
    def nodes(self) -> List[str]:
        return sorted(self._nodes)

    def switches_with_role(self, role: str) -> List[str]:
        """Switches whose role equals ``role`` (e.g. ``core``)."""
        return sorted(n for n, kind in self._nodes.items() if kind == role)

    def attachment_switch(self, host: str) -> str:
        """The switch a host is attached to."""
        try:
            return self._host_attachment[host]
        except KeyError:
            raise TopologyError(f"unknown host {host!r}") from None

    def hosts_of_switch(self, switch: str) -> List[str]:
        """Hosts attached to the given switch."""
        return sorted(h for h, s in self._host_attachment.items() if s == switch)

    # ------------------------------------------------------------------ links

    def add_link(
        self,
        a: str,
        b: str,
        capacity: float = 10.0,
        latency: float = 0.05,
        weight: float = 1.0,
        bidirectional: bool = True,
    ) -> None:
        """Add a link between existing nodes ``a`` and ``b``.

        By default both directions are added with identical parameters.
        """
        for node in (a, b):
            if node not in self._nodes:
                raise TopologyError(f"cannot link unknown node {node!r}")
        if (a, b) in self._links:
            raise TopologyError(f"duplicate link {a!r} -> {b!r}")
        self._links[(a, b)] = Link(a, b, capacity=capacity, latency=latency, weight=weight)
        if bidirectional:
            if (b, a) in self._links:
                raise TopologyError(f"duplicate link {b!r} -> {a!r}")
            self._links[(b, a)] = Link(b, a, capacity=capacity, latency=latency, weight=weight)
        self._invalidate_neighbor_index()

    def remove_link(self, a: str, b: str, bidirectional: bool = True) -> None:
        """Remove the link(s) between ``a`` and ``b``."""
        if (a, b) not in self._links:
            raise TopologyError(f"no link {a!r} -> {b!r} to remove")
        del self._links[(a, b)]
        if bidirectional and (b, a) in self._links:
            del self._links[(b, a)]
        self._invalidate_neighbor_index()

    def _invalidate_neighbor_index(self) -> None:
        if self._neighbor_index_built:
            self._neighbor_index = {}
            self._neighbor_index_built = False

    def has_link(self, a: str, b: str) -> bool:
        return (a, b) in self._links

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[(a, b)]
        except KeyError:
            raise TopologyError(f"no link {a!r} -> {b!r}") from None

    @property
    def links(self) -> List[Link]:
        """All directed links, sorted for determinism."""
        return [self._links[key] for key in sorted(self._links)]

    @property
    def undirected_links(self) -> List[Link]:
        """One representative per bidirectional pair (src < dst)."""
        seen: Set[Tuple[str, str]] = set()
        result: List[Link] = []
        for key in sorted(self._links):
            a, b = key
            if (b, a) in seen:
                continue
            seen.add(key)
            result.append(self._links[key])
        return result

    def neighbors(self, node: str) -> List[str]:
        """Nodes reachable from ``node`` over a single directed link (sorted)."""
        if node not in self._nodes:
            raise TopologyError(f"unknown node {node!r}")
        if not self._neighbor_index_built:
            index: Dict[str, List[str]] = {}
            for (src, dst) in self._links:
                index.setdefault(src, []).append(dst)
            for out in index.values():
                out.sort()
            self._neighbor_index = index
            self._neighbor_index_built = True
        cached = self._neighbor_index.get(node)
        # Callers own the returned list (the historical contract returned a
        # fresh list per call), so hand out a copy of the index row.
        return list(cached) if cached is not None else []

    def switch_neighbors(self, node: str) -> List[str]:
        """Neighboring switches of ``node`` (hosts excluded)."""
        is_switch = self._nodes.get
        return [n for n in self.neighbors(node)
                if is_switch(n) in NodeKind.SWITCH_ROLES]

    def degree(self, node: str) -> int:
        return len(self.neighbors(node))

    # ------------------------------------------------------------- algorithms

    def switch_graph(self) -> Dict[str, List[str]]:
        """Adjacency mapping restricted to switches (the compiler's view)."""
        return {s: self.switch_neighbors(s) for s in self.switches}

    def shortest_path_lengths(self, weighted: bool = False) -> Dict[str, Dict[str, float]]:
        """All-pairs shortest path lengths over the switch graph.

        Uses BFS for hop counts and Dijkstra when ``weighted`` is true (link
        ``weight`` attribute).  Only switches are considered.
        """
        lengths: Dict[str, Dict[str, float]] = {}
        for src in self.switches:
            lengths[src] = self._single_source_lengths(src, weighted)
        return lengths

    def _single_source_lengths(self, src: str, weighted: bool) -> Dict[str, float]:
        import heapq

        dist: Dict[str, float] = {src: 0.0}
        heap: List[Tuple[float, str]] = [(0.0, src)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for nbr in self.switch_neighbors(node):
                step = self._links[(node, nbr)].weight if weighted else 1.0
                nd = d + step
                if nd < dist.get(nbr, float("inf")):
                    dist[nbr] = nd
                    heapq.heappush(heap, (nd, nbr))
        return dist

    def shortest_paths(self, src: str, dst: str, weighted: bool = False) -> List[List[str]]:
        """All shortest switch-level paths from ``src`` to ``dst``.

        Returns a list of node sequences (including endpoints), sorted for
        determinism.  Used by ECMP/Hula/SPAIN baselines.
        """
        if src == dst:
            return [[src]]
        dist_from_src = self._single_source_lengths(src, weighted)
        if dst not in dist_from_src:
            return []
        dist_to_dst = self._reverse_lengths(dst, weighted)
        total = dist_from_src[dst]
        paths: List[List[str]] = []

        def extend(prefix: List[str]) -> None:
            node = prefix[-1]
            if node == dst:
                paths.append(list(prefix))
                return
            for nbr in self.switch_neighbors(node):
                step = self._links[(node, nbr)].weight if weighted else 1.0
                if nbr in dist_to_dst and (
                    abs(dist_from_src[node] + step + dist_to_dst[nbr] - total) < 1e-9
                ):
                    prefix.append(nbr)
                    extend(prefix)
                    prefix.pop()

        extend([src])
        return sorted(paths)

    def _reverse_lengths(self, dst: str, weighted: bool) -> Dict[str, float]:
        import heapq

        dist: Dict[str, float] = {dst: 0.0}
        heap: List[Tuple[float, str]] = [(0.0, dst)]
        while heap:
            d, node = heapq.heappop(heap)
            if d > dist.get(node, float("inf")):
                continue
            for src_node in self.switches:
                if (src_node, node) not in self._links:
                    continue
                step = self._links[(src_node, node)].weight if weighted else 1.0
                nd = d + step
                if nd < dist.get(src_node, float("inf")):
                    dist[src_node] = nd
                    heapq.heappush(heap, (nd, src_node))
        return dist

    def all_simple_paths(self, src: str, dst: str, cutoff: Optional[int] = None) -> List[List[str]]:
        """All simple switch-level paths up to ``cutoff`` hops (inclusive)."""
        if cutoff is None:
            cutoff = len(self.switches)
        paths: List[List[str]] = []

        def walk(prefix: List[str], visited: Set[str]) -> None:
            node = prefix[-1]
            if node == dst:
                paths.append(list(prefix))
                return
            if len(prefix) - 1 >= cutoff:
                return
            for nbr in self.switch_neighbors(node):
                if nbr in visited:
                    continue
                visited.add(nbr)
                prefix.append(nbr)
                walk(prefix, visited)
                prefix.pop()
                visited.remove(nbr)

        walk([src], {src})
        return sorted(paths)

    def is_connected(self) -> bool:
        """Whether the switch graph is connected (ignoring hosts)."""
        switches = self.switches
        if not switches:
            return True
        seen = {switches[0]}
        stack = [switches[0]]
        while stack:
            node = stack.pop()
            for nbr in self.switch_neighbors(node):
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        return len(seen) == len(switches)

    def diameter(self) -> int:
        """Switch-graph diameter in hops; raises if disconnected."""
        if not self.is_connected():
            raise TopologyError("cannot compute diameter of a disconnected topology")
        lengths = self.shortest_path_lengths()
        worst = 0.0
        for src, row in lengths.items():
            for dst in self.switches:
                if dst not in row:
                    raise TopologyError("cannot compute diameter of a disconnected topology")
                worst = max(worst, row[dst])
        return int(worst)

    def max_rtt(self) -> float:
        """The highest round-trip propagation time between any pair of switches.

        Contra's probe period must be at least 0.5x this value (§5.2).
        """
        import heapq

        worst = 0.0
        for src in self.switches:
            dist: Dict[str, float] = {src: 0.0}
            heap: List[Tuple[float, str]] = [(0.0, src)]
            while heap:
                d, node = heapq.heappop(heap)
                if d > dist.get(node, float("inf")):
                    continue
                for nbr in self.switch_neighbors(node):
                    nd = d + self._links[(node, nbr)].latency
                    if nd < dist.get(nbr, float("inf")):
                        dist[nbr] = nd
                        heapq.heappush(heap, (nd, nbr))
            if dist:
                worst = max(worst, max(dist.values()))
        return 2.0 * worst

    # ------------------------------------------------------------------ misc

    def copy(self, name: Optional[str] = None) -> "Topology":
        """A deep copy, optionally renamed."""
        clone = Topology(name or self.name)
        clone._nodes = dict(self._nodes)
        clone._links = dict(self._links)
        clone._host_attachment = dict(self._host_attachment)
        return clone

    def with_failed_link(self, a: str, b: str) -> "Topology":
        """A copy of this topology with the ``a``–``b`` link removed (both directions)."""
        clone = self.copy(name=f"{self.name}-failed-{a}-{b}")
        clone.remove_link(a, b, bidirectional=True)
        return clone

    def to_networkx(self):
        """Export the switch graph to a :mod:`networkx` graph (for analysis/plotting)."""
        import networkx as nx

        graph = nx.DiGraph(name=self.name)
        for node in self.nodes:
            graph.add_node(node, kind=self._nodes[node])
        for link in self.links:
            graph.add_edge(link.src, link.dst, capacity=link.capacity,
                           latency=link.latency, weight=link.weight)
        return graph

    def validate(self) -> None:
        """Raise :class:`TopologyError` if the topology is structurally invalid."""
        for (src, dst) in self._links:
            if src not in self._nodes or dst not in self._nodes:
                raise TopologyError(f"link {src}->{dst} references unknown node")
        for host, switch in self._host_attachment.items():
            if not self.has_link(host, switch) or not self.has_link(switch, host):
                raise TopologyError(f"host {host!r} has no link to its attachment switch {switch!r}")
        if not self.is_connected():
            raise TopologyError(f"topology {self.name!r} switch graph is disconnected")

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return (f"Topology({self.name!r}, switches={len(self.switches)}, "
                f"hosts={len(self.hosts)}, links={len(self._links)})")
