"""k-ary fat-tree topology generator (Al-Fares et al.).

A k-ary fat-tree has ``(k/2)^2`` core switches, ``k`` pods each containing
``k/2`` aggregation and ``k/2`` edge switches, and ``(k/2)`` hosts per edge
switch, for ``k^3/4`` hosts total.  The Contra evaluation uses fat-trees both
for the compiler-scalability experiments (Figure 9/10, switch counts 20–500)
and for the FCT experiments (Figure 11/12).

Node naming convention (stable and human readable):

* cores:        ``c0 .. c{(k/2)^2-1}``
* aggregation:  ``a{pod}_{i}``
* edge:         ``e{pod}_{i}``
* hosts:        ``h{pod}_{edge}_{j}``
"""

from __future__ import annotations

import math
from typing import Optional

from repro.exceptions import TopologyError
from repro.topology.graph import NodeKind, Topology

__all__ = ["fattree", "fattree_for_switch_count", "FATTREE_SWITCH_COUNTS"]

#: Switch counts of k=4,6,8,10,... fat-trees; the paper's Figure 9a x-axis
#: (20, 125, 245, 405, 500) corresponds approximately to k=4..12 fat-trees.
FATTREE_SWITCH_COUNTS = {4: 20, 6: 45, 8: 80, 10: 125, 12: 180, 14: 245, 16: 320, 18: 405, 20: 500}


def fattree(
    k: int = 4,
    hosts_per_edge: Optional[int] = None,
    capacity: float = 10.0,
    latency: float = 0.05,
    host_capacity: Optional[float] = None,
    oversubscription: float = 1.0,
    name: Optional[str] = None,
) -> Topology:
    """Build a k-ary fat-tree.

    Parameters
    ----------
    k:
        Fat-tree arity; must be even and >= 2.
    hosts_per_edge:
        Hosts attached to each edge switch (default ``k/2``).
    capacity:
        Switch-to-switch link capacity (packets per millisecond).
    latency:
        Per-link propagation delay in milliseconds.
    host_capacity:
        Host uplink capacity; defaults to ``capacity``.
    oversubscription:
        Ratio by which the edge-to-aggregation capacity is reduced relative to
        the host-facing capacity (the paper uses 4:1 in §6.3).  A value of 4.0
        divides the edge uplink capacity by 4.
    """
    if k < 2 or k % 2 != 0:
        raise TopologyError(f"fat-tree arity k must be even and >= 2, got {k}")
    if oversubscription <= 0:
        raise TopologyError("oversubscription must be positive")

    half = k // 2
    if hosts_per_edge is None:
        hosts_per_edge = half
    if host_capacity is None:
        host_capacity = capacity
    uplink_capacity = capacity / oversubscription

    topo = Topology(name or f"fattree-k{k}")

    cores = [f"c{i}" for i in range(half * half)]
    for core in cores:
        topo.add_switch(core, role=NodeKind.CORE)

    for pod in range(k):
        aggs = [f"a{pod}_{i}" for i in range(half)]
        edges = [f"e{pod}_{i}" for i in range(half)]
        for agg in aggs:
            topo.add_switch(agg, role=NodeKind.AGGREGATION)
        for edge in edges:
            topo.add_switch(edge, role=NodeKind.EDGE)

        # Edge <-> aggregation: complete bipartite within the pod.
        for edge in edges:
            for agg in aggs:
                topo.add_link(edge, agg, capacity=uplink_capacity, latency=latency)

        # Aggregation <-> core: agg i connects to cores [i*half, (i+1)*half).
        for i, agg in enumerate(aggs):
            for j in range(half):
                core = cores[i * half + j]
                topo.add_link(agg, core, capacity=uplink_capacity, latency=latency)

        # Hosts.
        for e_idx, edge in enumerate(edges):
            for j in range(hosts_per_edge):
                host = f"h{pod}_{e_idx}_{j}"
                topo.add_host(host, edge)
                topo.add_link(host, edge, capacity=host_capacity, latency=latency)

    topo.validate()
    return topo


def fattree_for_switch_count(target_switches: int, with_hosts: bool = False, **kwargs) -> Topology:
    """Build the smallest fat-tree with at least ``target_switches`` switches.

    Used by the Figure 9/10 scalability sweep, whose x-axis is switch count.
    Hosts are omitted by default because the compiler only sees switches.
    """
    if target_switches < 1:
        raise TopologyError("target_switches must be positive")
    k = 2
    while True:
        k += 2
        switch_count = 5 * (k // 2) ** 2  # (k/2)^2 cores + k pods * k switches = 5(k/2)^2
        if switch_count >= target_switches:
            hosts_per_edge = None if with_hosts else 0
            return fattree(k, hosts_per_edge=hosts_per_edge, **kwargs)
        if k > 64:
            raise TopologyError(f"refusing to build a fat-tree larger than k=64 "
                                f"for target {target_switches}")
