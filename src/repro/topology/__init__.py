"""Topology substrate: the graph model and generators used by the evaluation."""

from repro.topology.abilene import ABILENE_LINKS, ABILENE_NODES, abilene
from repro.topology.fattree import FATTREE_SWITCH_COUNTS, fattree, fattree_for_switch_count
from repro.topology.graph import Link, NodeKind, Topology
from repro.topology.leafspine import leafspine
from repro.topology.random_graphs import erdos_renyi, random_network, random_regular, waxman
from repro.topology.zoo import (
    builtin_topologies,
    builtin_topology,
    from_adjacency,
    from_edge_list,
    from_edge_list_file,
)

__all__ = [
    "Topology",
    "Link",
    "NodeKind",
    "fattree",
    "fattree_for_switch_count",
    "FATTREE_SWITCH_COUNTS",
    "leafspine",
    "abilene",
    "ABILENE_NODES",
    "ABILENE_LINKS",
    "random_regular",
    "erdos_renyi",
    "waxman",
    "random_network",
    "from_edge_list",
    "from_edge_list_file",
    "from_adjacency",
    "builtin_topologies",
    "builtin_topology",
]
