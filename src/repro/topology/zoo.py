"""Loading real-world topologies in the style of the Internet Topology Zoo.

The paper's evaluation mentions real-world topologies from the Topology Zoo.
The Zoo distributes GraphML files; since this environment is offline we accept
two simple on-disk formats instead and bundle a handful of well-known research
topologies so experiments can run without any external data:

* an **edge-list** format: one ``A B [capacity [latency]]`` line per link,
  ``#`` comments allowed, and
* an **adjacency dict** passed programmatically.

:func:`builtin_topologies` returns the bundled networks by name.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import TopologyError
from repro.topology.abilene import abilene
from repro.topology.graph import Topology

__all__ = [
    "from_edge_list",
    "from_edge_list_file",
    "from_adjacency",
    "builtin_topologies",
    "builtin_topology",
]

#: A few small, published research/ISP topologies (node names abbreviated),
#: expressed as undirected edge lists.  These stand in for the Topology Zoo
#: GraphML files that are unavailable offline.
_BUILTIN_EDGE_LISTS: Dict[str, List[Tuple[str, str]]] = {
    # NSFNET T1 backbone (14 nodes) — a standard benchmark WAN.
    "nsfnet": [
        ("WA", "CA1"), ("WA", "CA2"), ("WA", "IL"), ("CA1", "CA2"), ("CA1", "UT"),
        ("CA2", "TX"), ("UT", "CO"), ("UT", "MI"), ("CO", "TX"), ("CO", "NE"),
        ("TX", "DC"), ("TX", "GA"), ("NE", "IL"), ("NE", "MD"), ("IL", "PA"),
        ("PA", "MD"), ("PA", "NY"), ("MD", "NJ"), ("NY", "NJ"), ("NY", "MI"),
        ("GA", "MI"), ("GA", "NJ"), ("DC", "MD"),
    ],
    # GÉANT-like European research backbone (subset, 12 nodes).
    "geant_small": [
        ("UK", "FR"), ("UK", "NL"), ("FR", "ES"), ("FR", "CH"), ("NL", "DE"),
        ("DE", "CH"), ("DE", "PL"), ("DE", "DK"), ("CH", "IT"), ("IT", "AT"),
        ("AT", "PL"), ("AT", "HU"), ("PL", "CZ"), ("CZ", "DE"), ("ES", "IT"),
        ("DK", "SE"), ("SE", "PL"), ("HU", "CZ"),
    ],
    # A small ring-with-chords ISP-style network useful in tests.
    "ring8": [
        ("r0", "r1"), ("r1", "r2"), ("r2", "r3"), ("r3", "r4"), ("r4", "r5"),
        ("r5", "r6"), ("r6", "r7"), ("r7", "r0"), ("r0", "r4"), ("r2", "r6"),
    ],
}


def from_edge_list(
    edges: Iterable[Union[Tuple[str, str], Tuple[str, str, float], Tuple[str, str, float, float]]],
    name: str = "custom",
    default_capacity: float = 10.0,
    default_latency: float = 0.05,
    hosts_per_switch: int = 0,
) -> Topology:
    """Build a topology from an iterable of (a, b[, capacity[, latency]]) tuples."""
    topo = Topology(name)
    parsed: List[Tuple[str, str, float, float]] = []
    for edge in edges:
        if len(edge) == 2:
            a, b = edge  # type: ignore[misc]
            cap, lat = default_capacity, default_latency
        elif len(edge) == 3:
            a, b, cap = edge  # type: ignore[misc]
            lat = default_latency
        elif len(edge) == 4:
            a, b, cap, lat = edge  # type: ignore[misc]
        else:
            raise TopologyError(f"edge tuple must have 2-4 elements, got {edge!r}")
        parsed.append((str(a), str(b), float(cap), float(lat)))

    for a, b, _, _ in parsed:
        if not topo.has_node(a):
            topo.add_switch(a)
        if not topo.has_node(b):
            topo.add_switch(b)
    for a, b, cap, lat in parsed:
        if not topo.has_link(a, b):
            topo.add_link(a, b, capacity=cap, latency=lat)

    for switch in list(topo.switches):
        for j in range(hosts_per_switch):
            host = f"h_{switch}_{j}"
            topo.add_host(host, switch)
            topo.add_link(host, switch, capacity=default_capacity, latency=default_latency)

    topo.validate()
    return topo


def from_edge_list_file(path: Union[str, Path], **kwargs) -> Topology:
    """Parse an edge-list file: ``A B [capacity [latency]]`` per line, ``#`` comments."""
    path = Path(path)
    edges: List[Tuple] = []
    with path.open() as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) < 2 or len(parts) > 4:
                raise TopologyError(f"{path}:{lineno}: expected 'A B [cap [lat]]', got {raw!r}")
            try:
                edge: Tuple = tuple(parts[:2]) + tuple(float(x) for x in parts[2:])
            except ValueError as exc:
                raise TopologyError(f"{path}:{lineno}: bad numeric field in {raw!r}") from exc
            edges.append(edge)
    kwargs.setdefault("name", path.stem)
    return from_edge_list(edges, **kwargs)


def from_adjacency(
    adjacency: Mapping[str, Sequence[str]],
    name: str = "custom",
    **kwargs,
) -> Topology:
    """Build a topology from an adjacency mapping ``{node: [neighbors...]}``."""
    edges = []
    seen = set()
    for a, nbrs in adjacency.items():
        for b in nbrs:
            if (b, a) in seen or (a, b) in seen:
                continue
            seen.add((a, b))
            edges.append((a, b))
    return from_edge_list(edges, name=name, **kwargs)


def builtin_topologies() -> List[str]:
    """Names of the bundled real-world topologies."""
    return sorted(list(_BUILTIN_EDGE_LISTS) + ["abilene"])


def builtin_topology(name: str, hosts_per_switch: int = 0, **kwargs) -> Topology:
    """Load a bundled topology by name (``abilene``, ``nsfnet``, ``geant_small``, ``ring8``)."""
    if name == "abilene":
        # Abilene has its own generator: default_capacity maps onto its
        # backbone capacity, but its per-link latencies are intrinsic —
        # reject default_latency rather than silently dropping it.
        if "default_latency" in kwargs:
            raise TopologyError(
                "abilene has intrinsic per-link latencies; default_latency is "
                "not supported (use scale_latency)")
        capacity = kwargs.pop("default_capacity", None)
        if capacity is not None:
            kwargs.setdefault("capacity", capacity)
        return abilene(hosts_per_switch=hosts_per_switch, **kwargs)
    try:
        edges = _BUILTIN_EDGE_LISTS[name]
    except KeyError:
        raise TopologyError(
            f"unknown builtin topology {name!r}; available: {builtin_topologies()}") from None
    return from_edge_list(edges, name=name, hosts_per_switch=hosts_per_switch, **kwargs)
