"""The Abilene (Internet2) research network topology.

Figure 15 evaluates Contra on a network "modeled after the Abilene topology"
with all links set to 40 Gbps.  Abilene is the classic 11-node US research
backbone; the node set and link list below follow the standard published
topology (e.g. the Internet2 network maps and the TOTEM/SNDlib datasets).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.topology.graph import Topology

__all__ = ["abilene", "ABILENE_NODES", "ABILENE_LINKS"]

#: City abbreviations used as switch names.
ABILENE_NODES: List[str] = [
    "NYC",   # New York
    "CHI",   # Chicago
    "WDC",   # Washington DC
    "SEA",   # Seattle
    "SNV",   # Sunnyvale
    "LAX",   # Los Angeles
    "DEN",   # Denver
    "KSC",   # Kansas City
    "HOU",   # Houston
    "ATL",   # Atlanta
    "IPL",   # Indianapolis
]

#: Bidirectional backbone links with approximate one-way propagation delays in
#: milliseconds (great-circle distance / ~2/3 c, rounded).  The simulator works
#: in scaled units, but keeping realistic *relative* latencies matters for
#: latency-aware policies.
ABILENE_LINKS: List[Tuple[str, str, float]] = [
    ("NYC", "CHI", 5.0),
    ("NYC", "WDC", 2.0),
    ("CHI", "IPL", 1.5),
    ("WDC", "ATL", 4.0),
    ("SEA", "SNV", 5.5),
    ("SEA", "DEN", 7.0),
    ("SNV", "LAX", 3.0),
    ("SNV", "DEN", 6.5),
    ("LAX", "HOU", 9.0),
    ("DEN", "KSC", 4.0),
    ("KSC", "HOU", 4.5),
    ("KSC", "IPL", 3.5),
    ("HOU", "ATL", 5.5),
    ("ATL", "IPL", 3.0),
]


def abilene(
    capacity: float = 40.0,
    hosts_per_switch: int = 1,
    host_capacity: Optional[float] = None,
    scale_latency: float = 0.02,
    name: str = "abilene",
) -> Topology:
    """Build the Abilene topology.

    Parameters
    ----------
    capacity:
        Backbone link capacity (the paper uses 40 Gbps links; in simulator
        units the default is 40 packets/ms).
    hosts_per_switch:
        Number of hosts attached to every city PoP (the FCT experiment picks
        sender/receiver pairs among these).
    scale_latency:
        Multiplier applied to the realistic millisecond latencies so that the
        scaled-down simulator's RTTs stay comparable to its bandwidths.
    """
    if host_capacity is None:
        host_capacity = capacity
    topo = Topology(name)
    for node in ABILENE_NODES:
        topo.add_switch(node)
    for a, b, latency in ABILENE_LINKS:
        topo.add_link(a, b, capacity=capacity, latency=latency * scale_latency)
    for node in ABILENE_NODES:
        for j in range(hosts_per_switch):
            host = f"h_{node}_{j}"
            topo.add_host(host, node)
            topo.add_link(host, node, capacity=host_capacity, latency=0.01)
    topo.validate()
    return topo
