"""Leaf-spine (two-tier Clos) topology generator.

The strawman example in the paper's §3 (Figure 4a) is a leaf-spine network:
every leaf switch connects to every spine switch, and hosts attach to leaves.
This generator is used by the quickstart example and by several unit and
integration tests because it is the smallest topology that exhibits multipath.
"""

from __future__ import annotations

from typing import Optional

from repro.exceptions import TopologyError
from repro.topology.graph import NodeKind, Topology

__all__ = ["leafspine"]


def leafspine(
    leaves: int = 2,
    spines: int = 2,
    hosts_per_leaf: int = 2,
    capacity: float = 10.0,
    latency: float = 0.05,
    host_capacity: Optional[float] = None,
    oversubscription: float = 1.0,
    name: Optional[str] = None,
) -> Topology:
    """Build a leaf-spine topology.

    Parameters mirror :func:`repro.topology.fattree.fattree`; leaf switches are
    named ``leaf0..``, spines ``spine0..`` and hosts ``h{leaf}_{j}``.
    ``oversubscription`` divides the leaf-to-spine uplink capacity relative to
    the host-facing capacity, the same convention the fat-tree generator uses
    for its edge-to-aggregation links.
    """
    if leaves < 1 or spines < 1:
        raise TopologyError("leaf-spine requires at least one leaf and one spine")
    if hosts_per_leaf < 0:
        raise TopologyError("hosts_per_leaf must be non-negative")
    if oversubscription <= 0:
        raise TopologyError("oversubscription must be positive")
    if host_capacity is None:
        host_capacity = capacity
    uplink_capacity = capacity / oversubscription

    topo = Topology(name or f"leafspine-{leaves}x{spines}")
    spine_names = [f"spine{i}" for i in range(spines)]
    leaf_names = [f"leaf{i}" for i in range(leaves)]

    for spine in spine_names:
        topo.add_switch(spine, role=NodeKind.SPINE)
    for leaf in leaf_names:
        topo.add_switch(leaf, role=NodeKind.LEAF)

    for leaf in leaf_names:
        for spine in spine_names:
            topo.add_link(leaf, spine, capacity=uplink_capacity, latency=latency)

    for l_idx, leaf in enumerate(leaf_names):
        for j in range(hosts_per_leaf):
            host = f"h{l_idx}_{j}"
            topo.add_host(host, leaf)
            topo.add_link(host, leaf, capacity=host_capacity, latency=latency)

    topo.validate()
    return topo
