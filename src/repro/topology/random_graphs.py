"""Random graph topologies for the compiler scalability experiments.

Figure 9b/10b sweep "random networks" with 100–500 nodes.  The paper does not
specify the random-graph family, so we provide three standard families, all
guaranteed connected and all deterministic given a seed:

* :func:`random_regular` — every switch has the same degree (the most common
  choice for synthetic network fabrics),
* :func:`erdos_renyi` — G(n, p) with a connectivity repair pass,
* :func:`waxman` — the classic geographic random-topology model used in much
  WAN literature.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.exceptions import TopologyError
from repro.topology.graph import Topology

__all__ = ["random_regular", "erdos_renyi", "waxman", "random_network"]


def _names(n: int) -> list:
    width = max(2, len(str(n - 1)))
    return [f"s{str(i).zfill(width)}" for i in range(n)]


def _attach_hosts(topo: Topology, hosts_per_switch: int, capacity: float, latency: float) -> None:
    for switch in list(topo.switches):
        for j in range(hosts_per_switch):
            host = f"h_{switch}_{j}"
            topo.add_host(host, switch)
            topo.add_link(host, switch, capacity=capacity, latency=latency)


def _ensure_connected(topo: Topology, rng: random.Random, capacity: float, latency: float) -> None:
    """Add links between components until the switch graph is connected."""
    while not topo.is_connected():
        switches = topo.switches
        seen = {switches[0]}
        stack = [switches[0]]
        while stack:
            node = stack.pop()
            for nbr in topo.switch_neighbors(node):
                if nbr not in seen:
                    seen.add(nbr)
                    stack.append(nbr)
        outside = [s for s in switches if s not in seen]
        a = rng.choice(sorted(seen))
        b = rng.choice(outside)
        if not topo.has_link(a, b):
            topo.add_link(a, b, capacity=capacity, latency=latency)


def random_regular(
    n: int,
    degree: int = 4,
    seed: int = 0,
    capacity: float = 10.0,
    latency: float = 0.05,
    hosts_per_switch: int = 0,
    name: Optional[str] = None,
) -> Topology:
    """A connected random (approximately) ``degree``-regular graph on ``n`` switches."""
    if n < 2:
        raise TopologyError("random_regular needs at least 2 switches")
    if degree < 1 or degree >= n:
        raise TopologyError(f"degree must be in [1, n-1], got {degree} for n={n}")

    rng = random.Random(seed)
    names = _names(n)
    topo = Topology(name or f"random-regular-{n}-d{degree}")
    for s in names:
        topo.add_switch(s)

    # Pairing model: create degree "stubs" per node, match them randomly, skip
    # self-loops/duplicates, then repair connectivity.
    stubs = [s for s in names for _ in range(degree)]
    rng.shuffle(stubs)
    for i in range(0, len(stubs) - 1, 2):
        a, b = stubs[i], stubs[i + 1]
        if a != b and not topo.has_link(a, b):
            topo.add_link(a, b, capacity=capacity, latency=latency)
    _ensure_connected(topo, rng, capacity, latency)
    _attach_hosts(topo, hosts_per_switch, capacity, latency)
    topo.validate()
    return topo


def erdos_renyi(
    n: int,
    p: Optional[float] = None,
    seed: int = 0,
    capacity: float = 10.0,
    latency: float = 0.05,
    hosts_per_switch: int = 0,
    name: Optional[str] = None,
) -> Topology:
    """A connected Erdős–Rényi G(n, p) switch graph.

    The default ``p`` is ``2 * ln(n) / n``, comfortably above the connectivity
    threshold; any remaining disconnection is repaired deterministically.
    """
    if n < 2:
        raise TopologyError("erdos_renyi needs at least 2 switches")
    if p is None:
        p = min(1.0, 2.0 * math.log(n) / n)
    if not 0.0 < p <= 1.0:
        raise TopologyError(f"edge probability must be in (0, 1], got {p}")

    rng = random.Random(seed)
    names = _names(n)
    topo = Topology(name or f"erdos-renyi-{n}")
    for s in names:
        topo.add_switch(s)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                topo.add_link(names[i], names[j], capacity=capacity, latency=latency)
    _ensure_connected(topo, rng, capacity, latency)
    _attach_hosts(topo, hosts_per_switch, capacity, latency)
    topo.validate()
    return topo


def waxman(
    n: int,
    alpha: float = 0.4,
    beta: float = 0.4,
    seed: int = 0,
    capacity: float = 10.0,
    latency_scale: float = 0.2,
    hosts_per_switch: int = 0,
    name: Optional[str] = None,
) -> Topology:
    """A connected Waxman random topology.

    Switches are placed uniformly in the unit square; an edge between ``u`` and
    ``v`` exists with probability ``alpha * exp(-d(u, v) / (beta * L))`` where
    ``L`` is the maximum possible distance.  Link latency is proportional to
    Euclidean distance (scaled by ``latency_scale`` ms), which makes Waxman
    topologies a natural substrate for latency-aware policies.
    """
    if n < 2:
        raise TopologyError("waxman needs at least 2 switches")
    rng = random.Random(seed)
    names = _names(n)
    positions = {s: (rng.random(), rng.random()) for s in names}
    max_dist = math.sqrt(2.0)

    topo = Topology(name or f"waxman-{n}")
    for s in names:
        topo.add_switch(s)
    for i in range(n):
        for j in range(i + 1, n):
            a, b = names[i], names[j]
            (x1, y1), (x2, y2) = positions[a], positions[b]
            dist = math.hypot(x1 - x2, y1 - y2)
            if rng.random() < alpha * math.exp(-dist / (beta * max_dist)):
                topo.add_link(a, b, capacity=capacity,
                              latency=max(0.01, latency_scale * dist))
    _ensure_connected(topo, rng, capacity, 0.05)
    _attach_hosts(topo, hosts_per_switch, capacity, 0.05)
    topo.validate()
    return topo


def random_network(n: int, seed: int = 0, **kwargs) -> Topology:
    """The default "random network" family used by the Figure 9b/10b sweep."""
    degree = kwargs.pop("degree", 4)
    return random_regular(n, degree=degree, seed=seed, **kwargs)
