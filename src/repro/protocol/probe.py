"""Contra probe payloads.

A probe carries five fields (§4.3 plus the §5.1 refinement): the *origin*
switch (the traffic destination it advertises), the *probe id* of the
decomposed subpolicy it belongs to, a *version* number incremented every
probe period by the origin, the product-graph *tag* of the virtual node the
probe currently sits at, and the accumulated *metric vector*.
"""

from __future__ import annotations

from repro.core.attributes import MetricVector
from repro.simulator.packet import BASE_PROBE_BYTES, Packet, PacketKind

__all__ = ["ProbePayload", "make_probe_packet", "payload_from_packet"]


class ProbePayload:
    """The Contra-specific contents of one probe packet.

    A plain slotted class rather than a (frozen) dataclass: one payload is
    allocated per *accepted* probe hop — the hottest allocation site of a
    probe round — and the frozen-dataclass ``object.__setattr__`` init costs
    several times a plain ``__init__``.  Payloads are immutable by
    convention: they ride by reference in multicast packets shared across
    links, so mutating one would corrupt every in-flight copy.
    """

    __slots__ = ("origin", "pid", "version", "tag", "metrics", "origin_id",
                 "row")

    def __init__(self, origin: str, pid: int, version: int, tag: int,
                 metrics: MetricVector, origin_id: "int | None" = None):
        self.origin = origin
        self.pid = pid
        self.version = version
        self.tag = tag
        self.metrics = metrics
        #: Dense interned id of ``origin`` (the network-wide switch interning
        #: of the array probe plane), assigned once at origination so a wave's
        #: origin column is an integer read per probe instead of a string
        #: lookup.  ``None`` marks an unassigned id; such probes simply take
        #: the scalar path.  Not part of equality: it is derived from origin.
        self.origin_id = origin_id
        #: Lazily cached wire row for the array probe plane: the float64
        #: bytes of ``(tag, origin_id, pid, version, *metrics.values)``,
        #: built at most once per payload by the first wave that needs it.
        #: Multicast shares one payload across many links, so every later
        #: receiving wave reuses the bytes instead of re-reading the
        #: attributes.  Derived state, not part of equality.
        self.row = None

    def advanced(self, tag: int, metrics: MetricVector) -> "ProbePayload":
        """A copy with an updated tag and metric vector (one hop of propagation)."""
        return ProbePayload(self.origin, self.pid, self.version, tag, metrics,
                            self.origin_id)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ProbePayload):
            return NotImplemented
        return (self.origin == other.origin and self.pid == other.pid
                and self.version == other.version and self.tag == other.tag
                and self.metrics == other.metrics)

    def __hash__(self) -> int:
        return hash((self.origin, self.pid, self.version, self.tag, self.metrics))

    def __repr__(self) -> str:
        return (f"ProbePayload(origin={self.origin!r}, pid={self.pid}, "
                f"version={self.version}, tag={self.tag}, metrics={self.metrics})")


def make_probe_packet(payload: ProbePayload, src_switch: str, payload_bits: int) -> Packet:
    """Wrap a probe payload into a simulator packet.

    ``payload_bits`` is the compiled probe size (origin + pid + version + tag +
    metric vector); the wire size adds the base framing so the overhead
    experiment (Figure 16) counts realistic bytes.  The (immutable) payload
    object itself rides in the packet — the wire size is accounted for, but
    nothing is marshalled to and from a dict on every hop.
    """
    return Packet(
        kind=PacketKind.PROBE,
        src_host=src_switch,
        dst_host="",
        size_bytes=int(BASE_PROBE_BYTES + payload_bits / 8.0),
        probe=payload,
    )


def payload_from_packet(packet: Packet) -> ProbePayload:
    """Recover the probe payload from a simulator packet."""
    return packet.probe
