"""Contra probe payloads.

A probe carries five fields (§4.3 plus the §5.1 refinement): the *origin*
switch (the traffic destination it advertises), the *probe id* of the
decomposed subpolicy it belongs to, a *version* number incremented every
probe period by the origin, the product-graph *tag* of the virtual node the
probe currently sits at, and the accumulated *metric vector*.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import MetricVector
from repro.simulator.packet import BASE_PROBE_BYTES, Packet, PacketKind

__all__ = ["ProbePayload", "make_probe_packet", "payload_from_packet"]


@dataclass(frozen=True)
class ProbePayload:
    """The Contra-specific contents of one probe packet."""

    origin: str
    pid: int
    version: int
    tag: int
    metrics: MetricVector

    def advanced(self, tag: int, metrics: MetricVector) -> "ProbePayload":
        """A copy with an updated tag and metric vector (one hop of propagation)."""
        return ProbePayload(self.origin, self.pid, self.version, tag, metrics)


def make_probe_packet(payload: ProbePayload, src_switch: str, payload_bits: int) -> Packet:
    """Wrap a probe payload into a simulator packet.

    ``payload_bits`` is the compiled probe size (origin + pid + version + tag +
    metric vector); the wire size adds the base framing so the overhead
    experiment (Figure 16) counts realistic bytes.  The (immutable) payload
    object itself rides in the packet — the wire size is accounted for, but
    nothing is marshalled to and from a dict on every hop.
    """
    return Packet(
        kind=PacketKind.PROBE,
        src_host=src_switch,
        dst_host="",
        size_bytes=int(BASE_PROBE_BYTES + payload_bits / 8.0),
        probe=payload,
    )


def payload_from_packet(packet: Packet) -> ProbePayload:
    """Recover the probe payload from a simulator packet."""
    return packet.probe
