"""Contra protocol runtime: the behaviour of the synthesized per-switch programs."""

from repro.protocol.contra_switch import ContraRouting, ContraSystem
from repro.protocol.probe import ProbePayload, make_probe_packet, payload_from_packet
from repro.protocol.tables import (
    BestChoiceTable,
    FlowletEntry,
    FlowletTable,
    ForwardingEntry,
    ForwardingTable,
    FwdKey,
    LoopDetectionTable,
)

__all__ = [
    "ContraSystem",
    "ContraRouting",
    "ProbePayload",
    "make_probe_packet",
    "payload_from_packet",
    "ForwardingTable",
    "ForwardingEntry",
    "FwdKey",
    "BestChoiceTable",
    "FlowletTable",
    "FlowletEntry",
    "LoopDetectionTable",
]
