"""Switch-local state tables of the Contra data plane.

These classes model, in Python, the register arrays the synthesized P4
programs allocate:

* :class:`ForwardingTable` — FwdT, keyed by (destination, tag, probe id),
  storing the best metric vector, next tag, next hop and probe version
  (§4.2, §5.1);
* :class:`BestChoiceTable` — BestT, the per-destination pointer to the entry a
  source switch currently prefers (the asterisk in Figure 6e);
* :class:`FlowletTable` — policy-aware flowlet switching entries keyed by
  (destination, tag, probe id, flowlet id) (§5.3);
* :class:`LoopDetectionTable` — per-flow TTL-delta tracking used to lazily
  break transient loops (§5.5).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.attributes import MetricVector
from repro.core.rank import Rank

__all__ = [
    "FwdKey",
    "ForwardingEntry",
    "ForwardingTable",
    "BestChoiceTable",
    "FlowletEntry",
    "FlowletTable",
    "LoopDetectionTable",
    "stable_flow_hash",
    "packet_flow_hash",
]


def stable_flow_hash(flow_key: Tuple) -> int:
    """A deterministic hash of a flow identifier.

    Python's builtin ``hash`` is randomized per interpreter process
    (PYTHONHASHSEED), which made flowlet and loop-table slot assignment — and
    through it entire experiment outcomes — vary between invocations.  The
    synthesized switch programs use a fixed CRC on the 5-tuple, so the model
    does too.
    """
    data = "\x1f".join(map(str, flow_key)).encode("utf-8", "surrogatepass")
    return zlib.crc32(data)


def packet_flow_hash(packet) -> int:
    """The stable flow hash of a packet, computed once and cached on it."""
    cached = packet.flow_hash
    if cached is None:
        cached = packet.flow_hash = stable_flow_hash(packet.flow_key())
    return cached

#: FwdT key: (destination switch, local tag, probe id).
FwdKey = Tuple[str, int, int]


@dataclass(slots=True)
class ForwardingEntry:
    """One FwdT row.

    ``prop_key`` and ``rank`` are caches computed once at install time: the
    raw propagation-rank tuple ``f(pid, mv)`` used to compare same-version
    probes, and the full policy rank ``s`` of the entry.  Both are pure
    functions of the (immutable) metric vector, so caching them keeps probe
    processing and best-choice rescans off the policy-evaluation slow path.

    ``alternates`` holds further ``(next_hop, next_tag)`` pairs whose probes
    tied the row's propagation rank exactly in the same version round — the
    software analogue of the ECMP action group a P4 switch keeps for
    equal-rank entries.  Fresh flowlets spread across primary + alternates by
    flowlet id, which is what keeps a ToR's simultaneous flow arrivals from
    herding onto a single uplink while probes (correctly) report both as
    equally good.
    """

    metrics: MetricVector
    next_tag: int
    next_hop: str
    version: int
    updated_at: float
    prop_key: Tuple[float, ...] = ()
    rank: Optional[Rank] = None
    alternates: Tuple[Tuple[str, int], ...] = ()

    #: Alternates kept per row (primary + 3 matches a 4-way ECMP group).
    MAX_ALTERNATES = 3

    def add_alternate(self, next_hop: str, next_tag: int) -> None:
        """Record an equal-rank (next hop, next tag) pair for this row."""
        pair = (next_hop, next_tag)
        if next_hop != self.next_hop and pair not in self.alternates and \
                len(self.alternates) < self.MAX_ALTERNATES:
            self.alternates = self.alternates + (pair,)


class ForwardingTable:
    """FwdT: the per-switch forwarding table populated by probes."""

    def __init__(self) -> None:
        self._entries: Dict[FwdKey, ForwardingEntry] = {}

    def lookup(self, key: FwdKey) -> Optional[ForwardingEntry]:
        return self._entries.get(key)

    def install(self, key: FwdKey, entry: ForwardingEntry) -> None:
        self._entries[key] = entry

    def remove(self, key: FwdKey) -> None:
        self._entries.pop(key, None)

    def entries_for_destination(self, destination: str) -> Dict[FwdKey, ForwardingEntry]:
        """All rows advertising ``destination`` (across tags and probe ids)."""
        return {k: v for k, v in self._entries.items() if k[0] == destination}

    def entries_via(self, next_hop: str) -> List[FwdKey]:
        """Keys of rows whose next hop is ``next_hop`` (for failure expiry)."""
        return [k for k, v in self._entries.items() if v.next_hop == next_hop]

    def __len__(self) -> int:
        return len(self._entries)

    def items(self):
        return self._entries.items()


class BestChoiceTable:
    """BestT: per-destination tuple of the co-best (equal-rank) FwdT keys."""

    def __init__(self) -> None:
        self._best: Dict[str, Tuple[FwdKey, ...]] = {}

    def get(self, destination: str) -> Optional[Tuple[FwdKey, ...]]:
        return self._best.get(destination)

    def set(self, destination: str, keys: Tuple[FwdKey, ...]) -> None:
        self._best[destination] = keys

    def clear(self, destination: str) -> None:
        self._best.pop(destination, None)

    def __len__(self) -> int:
        return len(self._best)


@dataclass(slots=True)
class FlowletEntry:
    """One policy-aware flowlet pinning decision."""

    next_hop: str
    next_tag: int
    last_seen: float


class FlowletTable:
    """Flowlet table keyed by (destination, tag, pid, flowlet id) (§5.3).

    Including the tag and probe id in the key is exactly what makes flowlet
    switching *policy-aware*: a preference change that re-tags packets starts
    a fresh flowlet entry instead of reusing a pin that would violate the
    policy.

    Expiry is **lazy**: :meth:`lookup` drops an expired entry on touch, and a
    high-water-mark sweep (:meth:`_sweep`, triggered from :meth:`install`)
    reclaims entries whose flows ended and are never touched again — without
    it the table grows monotonically with every (destination, flowlet) pair a
    run ever pins, which is what made large fabrics accumulate unbounded
    switch state.  The sweep removes only entries :meth:`lookup` would
    already refuse to return, so forwarding decisions are unaffected, and it
    is amortized O(1) per install (the threshold doubles with the surviving
    live set, classic table-halving style).
    """

    #: Default sweep threshold floor; per-table the trigger is
    #: ``max(high_water, 2 * live entries after the last sweep)``.
    DEFAULT_HIGH_WATER = 4096

    def __init__(self, timeout: float, slots: int = 1024,
                 sweep_high_water: Optional[int] = None):
        self.timeout = timeout
        self.slots = slots
        self.sweep_high_water = (sweep_high_water if sweep_high_water is not None
                                 else self.DEFAULT_HIGH_WATER)
        self._sweep_at = self.sweep_high_water
        #: Entries reclaimed by high-water sweeps (observability/tests only;
        #: swept entries are *not* flowlet expirations in the stats sense —
        #: they were already dead to every lookup).
        self.swept_entries = 0
        self._entries: Dict[Tuple[str, int, int, int], FlowletEntry] = {}

    def flowlet_id(self, flow_key: Tuple) -> int:
        """Hash a flow identifier into a table slot (stable across processes)."""
        return stable_flow_hash(flow_key) % self.slots

    def lookup(self, destination: str, tag: int, pid: int, fid: int,
               now: float) -> Optional[FlowletEntry]:
        """A live (non-expired) entry, or None."""
        key = (destination, tag, pid, fid)
        entry = self._entries.get(key)
        if entry is None:
            return None
        if now - entry.last_seen > self.timeout:
            del self._entries[key]
            return None
        return entry

    def install(self, destination: str, tag: int, pid: int, fid: int,
                next_hop: str, next_tag: int, now: float) -> FlowletEntry:
        if len(self._entries) >= self._sweep_at:
            self._sweep(now)
        entry = FlowletEntry(next_hop, next_tag, now)
        self._entries[(destination, tag, pid, fid)] = entry
        return entry

    def _sweep(self, now: float) -> None:
        """Reclaim every expired entry (high-water-mark memory bound)."""
        timeout = self.timeout
        entries = self._entries
        expired = [key for key, entry in entries.items()
                   if now - entry.last_seen > timeout]
        for key in expired:
            del entries[key]
        self.swept_entries += len(expired)
        self._sweep_at = max(self.sweep_high_water, 2 * len(entries))

    def touch(self, entry: FlowletEntry, now: float) -> None:
        entry.last_seen = now

    def expire(self, destination: str, tag: int, pid: int, fid: int) -> None:
        self._entries.pop((destination, tag, pid, fid), None)

    def expire_flowlet_everywhere(self, fid: int) -> int:
        """Flush every entry with the given flowlet id (loop breaking, §5.5)."""
        keys = [k for k in self._entries if k[3] == fid]
        for key in keys:
            del self._entries[key]
        return len(keys)

    def expire_via(self, next_hop: str) -> int:
        """Flush entries pinned to a next hop believed to have failed (§5.4)."""
        keys = [k for k, v in self._entries.items() if v.next_hop == next_hop]
        for key in keys:
            del self._entries[key]
        return len(keys)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(slots=True)
class _LoopRecord:
    max_ttl: int
    min_ttl: int
    last_seen: float


class LoopDetectionTable:
    """TTL-delta loop detector (§5.5).

    For every flow hash the switch tracks the maximum and minimum TTL observed;
    in the absence of loops the difference is bounded by the spread of path
    lengths in use, while a loop makes it grow without bound.  When the delta
    exceeds ``threshold`` the switch reports a (possible) loop and the caller
    flushes the offending flowlet entries.
    """

    def __init__(self, threshold: int = 4, slots: int = 1024, entry_timeout: float = 50.0):
        self.threshold = threshold
        self.slots = slots
        self.entry_timeout = entry_timeout
        self._records: Dict[int, _LoopRecord] = {}

    def observe(self, flow_key: Tuple, ttl: int, now: float) -> bool:
        """Record a packet's TTL; returns True when a loop is suspected."""
        return self.observe_hash(stable_flow_hash(flow_key), ttl, now)

    def observe_hash(self, flow_hash: int, ttl: int, now: float) -> bool:
        """Like :meth:`observe` for callers that already hold the flow hash."""
        slot = flow_hash % self.slots
        record = self._records.get(slot)
        if record is None or now - record.last_seen > self.entry_timeout:
            self._records[slot] = _LoopRecord(ttl, ttl, now)
            return False
        record.max_ttl = max(record.max_ttl, ttl)
        record.min_ttl = min(record.min_ttl, ttl)
        record.last_seen = now
        if record.max_ttl - record.min_ttl > self.threshold:
            # Reset so one loop is reported once, then tracking restarts.
            self._records[slot] = _LoopRecord(ttl, ttl, now)
            return True
        return False
