"""Switch-local state tables of the Contra data plane.

These classes model, in Python, the register arrays the synthesized P4
programs allocate:

* :class:`ForwardingTable` — FwdT, keyed by (destination, tag, probe id),
  storing the best metric vector, next tag, next hop and probe version
  (§4.2, §5.1);
* :class:`BestChoiceTable` — BestT, the per-destination pointer to the entry a
  source switch currently prefers (the asterisk in Figure 6e);
* :class:`FlowletTable` — policy-aware flowlet switching entries keyed by
  (destination, tag, probe id, flowlet id) (§5.3);
* :class:`LoopDetectionTable` — per-flow TTL-delta tracking used to lazily
  break transient loops (§5.5).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.attributes import MetricVector
from repro.core.rank import Rank
from repro.nputil import np

__all__ = [
    "FwdKey",
    "ForwardingEntry",
    "ForwardingTable",
    "ForwardingShadow",
    "BestChoiceTable",
    "FlowletEntry",
    "FlowletTable",
    "LoopDetectionTable",
    "stable_flow_hash",
    "packet_flow_hash",
]


def stable_flow_hash(flow_key: Tuple) -> int:
    """A deterministic hash of a flow identifier.

    Python's builtin ``hash`` is randomized per interpreter process
    (PYTHONHASHSEED), which made flowlet and loop-table slot assignment — and
    through it entire experiment outcomes — vary between invocations.  The
    synthesized switch programs use a fixed CRC on the 5-tuple, so the model
    does too.
    """
    data = "\x1f".join(map(str, flow_key)).encode("utf-8", "surrogatepass")
    return zlib.crc32(data)


def packet_flow_hash(packet) -> int:
    """The stable flow hash of a packet, computed once and cached on it."""
    cached = packet.flow_hash
    if cached is None:
        cached = packet.flow_hash = stable_flow_hash(packet.flow_key())
    return cached

#: FwdT key: (destination switch, local tag, probe id).
FwdKey = Tuple[str, int, int]


@dataclass(slots=True)
class ForwardingEntry:
    """One FwdT row.

    ``prop_key`` and ``rank`` are caches computed once at install time: the
    raw propagation-rank tuple ``f(pid, mv)`` used to compare same-version
    probes, and the full policy rank ``s`` of the entry.  Both are pure
    functions of the (immutable) metric vector, so caching them keeps probe
    processing and best-choice rescans off the policy-evaluation slow path.

    ``alternates`` holds further ``(next_hop, next_tag)`` pairs whose probes
    tied the row's propagation rank exactly in the same version round — the
    software analogue of the ECMP action group a P4 switch keeps for
    equal-rank entries.  Fresh flowlets spread across primary + alternates by
    flowlet id, which is what keeps a ToR's simultaneous flow arrivals from
    herding onto a single uplink while probes (correctly) report both as
    equally good.
    """

    metrics: MetricVector
    next_tag: int
    next_hop: str
    version: int
    updated_at: float
    prop_key: Tuple[float, ...] = ()
    rank: Optional[Rank] = None
    alternates: Tuple[Tuple[str, int], ...] = ()

    #: Alternates kept per row (primary + 3 matches a 4-way ECMP group).
    MAX_ALTERNATES = 3

    def add_alternate(self, next_hop: str, next_tag: int) -> None:
        """Record an equal-rank (next hop, next tag) pair for this row."""
        pair = (next_hop, next_tag)
        if next_hop != self.next_hop and pair not in self.alternates and \
                len(self.alternates) < self.MAX_ALTERNATES:
            self.alternates = self.alternates + (pair,)


class ForwardingTable:
    """FwdT: the per-switch forwarding table populated by probes."""

    def __init__(self) -> None:
        self._entries: Dict[FwdKey, ForwardingEntry] = {}

    def lookup(self, key: FwdKey) -> Optional[ForwardingEntry]:
        return self._entries.get(key)

    def install(self, key: FwdKey, entry: ForwardingEntry) -> None:
        self._entries[key] = entry

    def remove(self, key: FwdKey) -> None:
        self._entries.pop(key, None)

    def entries_for_destination(self, destination: str) -> Dict[FwdKey, ForwardingEntry]:
        """All rows advertising ``destination`` (across tags and probe ids)."""
        return {k: v for k, v in self._entries.items() if k[0] == destination}

    def entries_via(self, next_hop: str) -> List[FwdKey]:
        """Keys of rows whose next hop is ``next_hop`` (for failure expiry)."""
        return [k for k, v in self._entries.items() if v.next_hop == next_hop]

    def __len__(self) -> int:
        return len(self._entries)

    def items(self):
        return self._entries.items()


class ForwardingShadow:
    """Dense (version, propagation-key) mirror of FwdT for the wave prefilter.

    The array probe plane rejects the bulk of a wave by comparing each probe's
    (version, prop_key) against the installed entry for its (origin, tag, pid)
    key — as one fancy-indexed array read instead of N dict lookups.  This
    class is that lowered view: flat arrays indexed by
    ``(origin_id * num_tags + tag) * num_pids + pid``, holding the version
    (``-1`` = no entry) and the propagation-key columns of the entry most
    recently *recorded*.

    Soundness contract (see ARCHITECTURE.md): the shadow may **lag** the real
    table — a missed :meth:`record` only makes a later prefilter treat the key
    as worse/absent, producing extra scalar-path survivors, never a wrong
    reject.  It must never run *ahead*: the only writes happen at install /
    alternate-record time with the exact installed values.  Installs are
    monotone improvements under versioning, so a probe rejected against a
    shadow state stays rejected against every later in-tick install.

    Beyond (version, prop_key), the shadow mirrors the entry's tie-handling
    state — the interned next-hop id, and the ``alternates`` pairs as
    ``MAX_ALTERNATES`` parallel (hop id, tag) slots plus a count — so the
    prefilter can also flag exact ties whose ``add_alternate`` would be a
    no-op (own next hop, already-recorded pair, or a full group).  Alternate
    state is only trusted when the recorded version matches the probe's, and
    :meth:`record` resets it exactly like a fresh install resets
    ``ForwardingEntry.alternates``.
    """

    __slots__ = ("num_tags", "num_pids", "key_width", "versions", "prop_cols",
                 "nexthop_ids", "alt_count", "alt_hops", "alt_tags")

    def __init__(self, num_origins: int, num_tags: int, num_pids: int,
                 key_width: int):
        if np is None:  # pragma: no cover - callers gate on numpy themselves
            raise RuntimeError("ForwardingShadow requires numpy")
        self.num_tags = num_tags
        self.num_pids = num_pids
        self.key_width = key_width
        size = num_origins * num_tags * num_pids
        self.versions = np.full(size, -1, dtype=np.int64)
        #: One flat float column per propagation-key position: scalar writes
        #: at install time and fancy-indexed bulk reads per wave are both
        #: cheaper on parallel 1-D columns than on one (size, K) matrix.
        self.prop_cols: List = [np.zeros(size, dtype=np.float64)
                                for _ in range(key_width)]
        self.nexthop_ids = np.full(size, -1, dtype=np.int64)
        self.alt_count = np.zeros(size, dtype=np.int64)
        self.alt_hops: List = [np.full(size, -1, dtype=np.int64)
                               for _ in range(ForwardingEntry.MAX_ALTERNATES)]
        self.alt_tags: List = [np.full(size, -1, dtype=np.int64)
                               for _ in range(ForwardingEntry.MAX_ALTERNATES)]

    def _flat(self, origin_id: Optional[int], tag: int, pid: int) -> int:
        """Flat index for an in-range key, or ``-1`` when outside the dims."""
        if origin_id is None or origin_id < 0 or not 0 <= tag < self.num_tags \
                or not 0 <= pid < self.num_pids:
            return -1
        index = (origin_id * self.num_tags + tag) * self.num_pids + pid
        return index if index < self.versions.shape[0] else -1

    def record(self, origin_id: Optional[int], tag: int, pid: int,
               version: int, prop_key: Tuple[float, ...],
               nexthop_id: int = -1) -> None:
        """Mirror one install.  Silently skips keys outside the lowered dims
        (unassigned origin ids, foreign tags/pids) — the shadow then lags,
        which the prefilter treats conservatively."""
        if len(prop_key) > self.key_width:
            return
        index = self._flat(origin_id, tag, pid)
        if index < 0:
            return
        self.versions[index] = version
        cols = self.prop_cols
        for position, value in enumerate(prop_key):
            cols[position][index] = value
        # A fresh install replaces the entry object wholesale, emptying its
        # alternate group; the mirror resets identically.
        self.nexthop_ids[index] = nexthop_id if nexthop_id is not None else -1
        self.alt_count[index] = 0

    def record_alternate(self, origin_id: Optional[int], tag: int, pid: int,
                         version: int, hop_id: Optional[int],
                         next_tag: int) -> None:
        """Mirror one ``ForwardingEntry.add_alternate`` call.

        Applies the same dedup / own-next-hop / capacity conditions against
        the shadow's own slots.  Both alternate sets start empty at the same
        install and see the same attempt sequence, so they evolve
        identically — unless this record is skipped (unsynced version,
        unassigned hop id), in which case the shadow's set lags reality and
        the prefilter under-kills, never over-kills.
        """
        if hop_id is None or hop_id < 0:
            return
        index = self._flat(origin_id, tag, pid)
        if index < 0 or self.versions[index] != version:
            return
        primary = self.nexthop_ids[index]
        if primary == hop_id or primary < 0:
            # Own next hop (real add_alternate refuses it too), or an entry
            # whose hop id was never assigned — then the ``!= next_hop``
            # condition cannot be mirrored faithfully, so the shadow's set
            # stays behind reality (under-kill) rather than risk a phantom.
            return
        count = self.alt_count[index]
        if count >= ForwardingEntry.MAX_ALTERNATES:
            return
        hops, tags = self.alt_hops, self.alt_tags
        for slot in range(count):
            if hops[slot][index] == hop_id and tags[slot][index] == next_tag:
                return
        hops[count][index] = hop_id
        tags[count][index] = next_tag
        self.alt_count[index] = count + 1


def lexicographic_gt(columns_a: Sequence, columns_b: Sequence):
    """Elementwise tuple-compare ``a > b`` over parallel column arrays.

    ``columns_a[j][i]`` is position ``j`` of row ``i``'s key; both sides must
    have the same (non-zero) number of columns.  Exactly Python's tuple
    ordering for equal-length float tuples, vectorized.
    """
    gt = columns_a[0] > columns_b[0]
    if len(columns_a) > 1:
        eq = columns_a[0] == columns_b[0]
        for a, b in zip(columns_a[1:], columns_b[1:]):
            gt = gt | (eq & (a > b))
            eq = eq & (a == b)
    return gt


def lexicographic_gt_eq(columns_a: Sequence, columns_b: Sequence):
    """Like :func:`lexicographic_gt` but also returns the exact-equality mask.

    The tie mask is what lets the prefilter reason about the ECMP-alternate
    side effect separately from strict rejects.
    """
    gt = columns_a[0] > columns_b[0]
    eq = columns_a[0] == columns_b[0]
    for a, b in zip(columns_a[1:], columns_b[1:]):
        gt = gt | (eq & (a > b))
        eq = eq & (a == b)
    return gt, eq


class BestChoiceTable:
    """BestT: per-destination tuple of the co-best (equal-rank) FwdT keys."""

    def __init__(self) -> None:
        self._best: Dict[str, Tuple[FwdKey, ...]] = {}

    def get(self, destination: str) -> Optional[Tuple[FwdKey, ...]]:
        return self._best.get(destination)

    def set(self, destination: str, keys: Tuple[FwdKey, ...]) -> None:
        self._best[destination] = keys

    def clear(self, destination: str) -> None:
        self._best.pop(destination, None)

    def __len__(self) -> int:
        return len(self._best)


@dataclass(slots=True)
class FlowletEntry:
    """One policy-aware flowlet pinning decision."""

    next_hop: str
    next_tag: int
    last_seen: float


class FlowletTable:
    """Flowlet table keyed by (destination, tag, pid, flowlet id) (§5.3).

    Including the tag and probe id in the key is exactly what makes flowlet
    switching *policy-aware*: a preference change that re-tags packets starts
    a fresh flowlet entry instead of reusing a pin that would violate the
    policy.

    Expiry is **lazy**: :meth:`lookup` drops an expired entry on touch, and a
    high-water-mark sweep (:meth:`_sweep`, triggered from :meth:`install`)
    reclaims entries whose flows ended and are never touched again — without
    it the table grows monotonically with every (destination, flowlet) pair a
    run ever pins, which is what made large fabrics accumulate unbounded
    switch state.  The sweep removes only entries :meth:`lookup` would
    already refuse to return, so forwarding decisions are unaffected, and it
    is amortized O(1) per install (the threshold doubles with the surviving
    live set, classic table-halving style).
    """

    #: Default sweep threshold floor; per-table the trigger is
    #: ``max(high_water, 2 * live entries after the last sweep)``.
    DEFAULT_HIGH_WATER = 4096

    def __init__(self, timeout: float, slots: int = 1024,
                 sweep_high_water: Optional[int] = None):
        self.timeout = timeout
        self.slots = slots
        self.sweep_high_water = (sweep_high_water if sweep_high_water is not None
                                 else self.DEFAULT_HIGH_WATER)
        self._sweep_at = self.sweep_high_water
        #: Entries reclaimed by high-water sweeps (observability/tests only;
        #: swept entries are *not* flowlet expirations in the stats sense —
        #: they were already dead to every lookup).
        self.swept_entries = 0
        self._entries: Dict[Tuple[str, int, int, int], FlowletEntry] = {}

    def flowlet_id(self, flow_key: Tuple) -> int:
        """Hash a flow identifier into a table slot (stable across processes)."""
        return stable_flow_hash(flow_key) % self.slots

    def lookup(self, destination: str, tag: int, pid: int, fid: int,
               now: float) -> Optional[FlowletEntry]:
        """A live (non-expired) entry, or None."""
        key = (destination, tag, pid, fid)
        entry = self._entries.get(key)
        if entry is None:
            return None
        if now - entry.last_seen > self.timeout:
            del self._entries[key]
            return None
        return entry

    def install(self, destination: str, tag: int, pid: int, fid: int,
                next_hop: str, next_tag: int, now: float) -> FlowletEntry:
        if len(self._entries) >= self._sweep_at:
            self._sweep(now)
        entry = FlowletEntry(next_hop, next_tag, now)
        self._entries[(destination, tag, pid, fid)] = entry
        return entry

    def _sweep(self, now: float) -> None:
        """Reclaim every expired entry (high-water-mark memory bound)."""
        timeout = self.timeout
        entries = self._entries
        expired = [key for key, entry in entries.items()
                   if now - entry.last_seen > timeout]
        for key in expired:
            del entries[key]
        self.swept_entries += len(expired)
        self._sweep_at = max(self.sweep_high_water, 2 * len(entries))

    def touch(self, entry: FlowletEntry, now: float) -> None:
        entry.last_seen = now

    def expire(self, destination: str, tag: int, pid: int, fid: int) -> None:
        self._entries.pop((destination, tag, pid, fid), None)

    def expire_flowlet_everywhere(self, fid: int) -> int:
        """Flush every entry with the given flowlet id (loop breaking, §5.5)."""
        keys = [k for k in self._entries if k[3] == fid]
        for key in keys:
            del self._entries[key]
        return len(keys)

    def expire_via(self, next_hop: str) -> int:
        """Flush entries pinned to a next hop believed to have failed (§5.4)."""
        keys = [k for k, v in self._entries.items() if v.next_hop == next_hop]
        for key in keys:
            del self._entries[key]
        return len(keys)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass(slots=True)
class _LoopRecord:
    max_ttl: int
    min_ttl: int
    last_seen: float


class LoopDetectionTable:
    """TTL-delta loop detector (§5.5).

    For every flow hash the switch tracks the maximum and minimum TTL observed;
    in the absence of loops the difference is bounded by the spread of path
    lengths in use, while a loop makes it grow without bound.  When the delta
    exceeds ``threshold`` the switch reports a (possible) loop and the caller
    flushes the offending flowlet entries.
    """

    def __init__(self, threshold: int = 4, slots: int = 1024, entry_timeout: float = 50.0):
        self.threshold = threshold
        self.slots = slots
        self.entry_timeout = entry_timeout
        self._records: Dict[int, _LoopRecord] = {}

    def observe(self, flow_key: Tuple, ttl: int, now: float) -> bool:
        """Record a packet's TTL; returns True when a loop is suspected."""
        return self.observe_hash(stable_flow_hash(flow_key), ttl, now)

    def observe_hash(self, flow_hash: int, ttl: int, now: float) -> bool:
        """Like :meth:`observe` for callers that already hold the flow hash."""
        slot = flow_hash % self.slots
        record = self._records.get(slot)
        if record is None or now - record.last_seen > self.entry_timeout:
            self._records[slot] = _LoopRecord(ttl, ttl, now)
            return False
        record.max_ttl = max(record.max_ttl, ttl)
        record.min_ttl = min(record.min_ttl, ttl)
        record.last_seen = now
        if record.max_ttl - record.min_ttl > self.threshold:
            # Reset so one loop is reported once, then tracking restarts.
            self._records[slot] = _LoopRecord(ttl, ttl, now)
            return True
        return False
