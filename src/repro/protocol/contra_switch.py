"""The Contra data-plane runtime: the behaviour of the synthesized switch programs.

:class:`ContraSystem` installs one :class:`ContraRouting` instance per switch,
each interpreting the switch's compiled :class:`~repro.core.device_config
.DeviceConfig`.  Together they implement the full protocol of §4–§5:

* periodic, versioned probes multicast along product-graph edges,
* FwdT/BestT maintenance with the ``f``/``s`` ranking split of Figure 7,
* policy-aware flowlet switching (§5.3),
* TTL-delta loop detection and flowlet flushing (§5.5), and
* failure detection by probe silence plus metric expiration (§5.4).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.core.analysis.decomposition import SubPolicy
from repro.core.ast import PathContext
from repro.core.compiler import CompiledPolicy
from repro.core.device_config import DeviceConfig
from repro.core.rank import INFINITY, Rank
from repro.exceptions import SimulationError
from repro.protocol.probe import ProbePayload, make_probe_packet, payload_from_packet
from repro.protocol.tables import (
    BestChoiceTable,
    ForwardingEntry,
    ForwardingTable,
    FlowletTable,
    FwdKey,
    LoopDetectionTable,
)
from repro.simulator.network import Network, RoutingSystem
from repro.simulator.packet import Packet
from repro.simulator.switchnode import RoutingLogic, SwitchNode

__all__ = ["ContraSystem", "ContraRouting"]


class ContraSystem(RoutingSystem):
    """Routing system that deploys a compiled Contra policy on every switch."""

    name = "contra"

    def __init__(
        self,
        compiled: CompiledPolicy,
        probe_period: Optional[float] = None,
        flowlet_timeout: float = 0.2,
        failure_periods: int = 3,
        loop_threshold: int = 4,
        probe_all_switches: bool = False,
        split_horizon: bool = True,
        use_versioning: bool = True,
    ):
        self.compiled = compiled
        self.probe_period = probe_period if probe_period is not None else compiled.probe_period
        if self.probe_period <= 0:
            raise SimulationError("probe period must be positive")
        self.flowlet_timeout = flowlet_timeout
        self.failure_periods = failure_periods
        self.loop_threshold = loop_threshold
        self.probe_all_switches = probe_all_switches
        self.split_horizon = split_horizon
        #: §5.1 refinement: versioned probes.  Disabling this reproduces the
        #: persistent-loop hazard of an unversioned distance-vector protocol
        #: and is exposed only for the ablation benchmark.
        self.use_versioning = use_versioning
        self._logics: Dict[str, "ContraRouting"] = {}

    def create_switch_logic(self, switch: str) -> "ContraRouting":
        logic = ContraRouting(self, self.compiled.device(switch))
        self._logics[switch] = logic
        return logic

    def start(self, network: Network) -> None:
        destinations = (network.topology.switches if self.probe_all_switches
                        else network.destination_switches())
        for switch in destinations:
            self._logics[switch].start_probing()
        for logic in self._logics.values():
            logic.start_failure_detection()

    def packet_header_bits(self) -> int:
        configs = self.compiled.device_configs.values()
        return max(cfg.packet_tag_bits() for cfg in configs) if configs else 0

    def logic(self, switch: str) -> "ContraRouting":
        return self._logics[switch]


class ContraRouting(RoutingLogic):
    """The per-switch program synthesized from the user policy."""

    def __init__(self, system: ContraSystem, config: DeviceConfig):
        self.system = system
        self.config = config
        self.compiled = system.compiled
        self.subpolicies: List[SubPolicy] = list(self.compiled.decomposition.subpolicies)
        if not self.subpolicies:
            raise SimulationError("compiled policy has no subpolicies")

        self.fwdt = ForwardingTable()
        self.bestt = BestChoiceTable()
        self.flowlets = FlowletTable(system.flowlet_timeout, slots=config.flowlet_slots)
        self.loop_detector = LoopDetectionTable(
            threshold=system.loop_threshold, slots=config.loop_table_slots)

        self._version = 0
        self._last_probe_from: Dict[str, float] = {}
        self._believed_failed: Dict[str, bool] = {}
        self._probe_bits = config.probe_bits()

    # --------------------------------------------------------------- lifecycle

    def attach(self, switch: SwitchNode, network: Network) -> None:
        super().attach(switch, network)
        now = 0.0
        for neighbor in switch.switch_neighbors():
            self._last_probe_from[neighbor] = now
            self._believed_failed[neighbor] = False

    def start_probing(self) -> None:
        """Begin periodic probe origination (this switch is a traffic destination)."""
        self.network.sim.schedule(0.0, self._probe_round)

    def start_failure_detection(self) -> None:
        period = self.system.probe_period
        self.network.sim.schedule(period * self.system.failure_periods, self._failure_check)

    # ----------------------------------------------------------------- probes

    def _probe_round(self) -> None:
        """INITPROBE: originate one probe per subpolicy and multicast it."""
        self._version += 1
        origin_tag = self.config.probe_origin_tag
        for sub in self.subpolicies:
            payload = ProbePayload(
                origin=self.switch.name,
                pid=sub.pid,
                version=self._version,
                tag=origin_tag,
                metrics=sub.initial_metrics(),
            )
            self._multicast(payload, exclude=None)
        self.network.sim.schedule(self.system.probe_period, self._probe_round)

    def _multicast(self, payload: ProbePayload, exclude: Optional[str]) -> None:
        """MULTICASTPROBE: send along all product-graph out-edges of the payload's tag."""
        for neighbor in self.config.multicast_targets(payload.tag):
            if exclude is not None and self.system.split_horizon and neighbor == exclude:
                continue
            if self._believed_failed.get(neighbor, False):
                continue
            packet = make_probe_packet(payload, self.switch.name, self._probe_bits)
            self.switch.send_probe(packet, neighbor)

    def on_probe(self, packet: Packet, inport: str) -> None:
        """PROCESSPROBE (Figure 7) with the versioning refinement of §5.1."""
        self._last_probe_from[inport] = self.network.sim.now
        if self._believed_failed.get(inport, False):
            self._believed_failed[inport] = False

        payload = payload_from_packet(packet)
        local_tag = self.config.next_tag_for_probe(inport, payload.tag)
        if local_tag is None:
            return  # no product-graph edge: the probe is policy-irrelevant here
        if payload.origin == self.switch.name:
            return  # probes never advertise a destination back to itself

        # UPDATEMVEC: fold in the traffic-direction link (this switch -> inport).
        metrics = payload.metrics.extend(self.switch.link_metrics(inport))
        subpolicy = self.compiled.decomposition.subpolicy(payload.pid)
        key: FwdKey = (payload.origin, local_tag, payload.pid)
        entry = self.fwdt.lookup(key)

        accept = False
        if entry is None:
            accept = True
        elif not self.system.use_versioning:
            # Ablation: unversioned distance-vector — accept purely on metric,
            # plus staleness refresh so entries do not expire spuriously.
            better = (subpolicy.propagation_rank(metrics)
                      < subpolicy.propagation_rank(entry.metrics))
            stale = self.network.sim.now - entry.updated_at > self.system.probe_period
            accept = better or stale
        elif payload.version > entry.version:
            accept = True            # newer round always replaces stale state (DSDV/Babel)
        elif payload.version == entry.version and (
                subpolicy.propagation_rank(metrics) < subpolicy.propagation_rank(entry.metrics)):
            accept = True            # same round: keep the better path under f(pid, mv)
        if not accept:
            return

        self.fwdt.install(key, ForwardingEntry(
            metrics=metrics,
            next_tag=payload.tag,
            next_hop=inport,
            version=payload.version,
            updated_at=self.network.sim.now,
        ))
        self._maybe_update_best(payload.origin, key, metrics)
        self._multicast(payload.advanced(local_tag, metrics), exclude=inport)

    # ------------------------------------------------------------ best choice

    def _entry_rank(self, key: FwdKey, entry: ForwardingEntry) -> Rank:
        """s(key): evaluate the full user policy on one FwdT entry."""
        acceptance = self.config.acceptance_of(key[1])
        ctx = PathContext((), entry.metrics.as_dict(), acceptance)
        return self.compiled.policy.evaluate(ctx)

    def _entry_valid(self, entry: ForwardingEntry) -> bool:
        """An entry is stale if its probes stopped or its next hop is believed dead."""
        if self._believed_failed.get(entry.next_hop, False):
            return False
        if self.switch.link_failed(entry.next_hop):
            return False
        max_age = self.system.probe_period * (self.system.failure_periods + 1)
        return self.network.sim.now - entry.updated_at <= max_age

    def _maybe_update_best(self, destination: str, key: FwdKey, metrics) -> None:
        new_rank = self._entry_rank(key, self.fwdt.lookup(key))
        current_key = self.bestt.get(destination)
        if current_key is None:
            if new_rank.is_finite:
                self.bestt.set(destination, key)
            return
        current_entry = self.fwdt.lookup(current_key)
        if current_entry is None or not self._entry_valid(current_entry):
            if new_rank.is_finite:
                self.bestt.set(destination, key)
            return
        current_rank = self._entry_rank(current_key, current_entry)
        if new_rank < current_rank:
            self.bestt.set(destination, key)

    def _best_key(self, destination: str) -> Optional[FwdKey]:
        """The best valid FwdT key for a destination, refreshing BestT if needed."""
        key = self.bestt.get(destination)
        if key is not None:
            entry = self.fwdt.lookup(key)
            if entry is not None and self._entry_valid(entry) and \
                    self._entry_rank(key, entry).is_finite:
                return key
        return self._rescan_best(destination)

    def _rescan_best(self, destination: str) -> Optional[FwdKey]:
        best_key: Optional[FwdKey] = None
        best_rank = INFINITY
        for key, entry in self.fwdt.entries_for_destination(destination).items():
            if not self._entry_valid(entry):
                continue
            rank = self._entry_rank(key, entry)
            if rank < best_rank:
                best_rank = rank
                best_key = key
        if best_key is not None:
            self.bestt.set(destination, best_key)
        else:
            self.bestt.clear(destination)
        return best_key

    # -------------------------------------------------------------- forwarding

    def on_data_packet(self, packet: Packet, inport: str) -> Optional[str]:
        """SWIFORWARDPKT with policy-aware flowlet switching and loop breaking."""
        destination = packet.dst_switch
        from_host = not self.network.is_switch(inport)

        if from_host or packet.tag is None:
            best = self._best_key(destination)
            if best is None:
                return None
            _, tag, pid = best
            packet.tag = tag
            packet.pid = pid
            packet.extra_header_bits = self.config.packet_tag_bits()

        fid = self.flowlets.flowlet_id(packet.flow_key())
        now = self.network.sim.now

        # Lazy loop breaking (§5.5): on suspicion, flush the flowlet pins so the
        # next packet re-reads the freshest FwdT entry.
        if self.loop_detector.observe(packet.flow_key(), packet.ttl, now):
            flushed = self.flowlets.expire_flowlet_everywhere(fid)
            self.network.stats.loop_detections += 1
            self.network.stats.flowlet_expirations += flushed

        pinned = self.flowlets.lookup(destination, packet.tag, packet.pid, fid, now)
        if pinned is not None:
            if self._usable_next_hop(pinned.next_hop):
                self.flowlets.touch(pinned, now)
                packet.tag = pinned.next_tag
                return pinned.next_hop
            # §5.4: expire flowlet entries whose next hop is along a failed link.
            self.flowlets.expire(destination, packet.tag, packet.pid, fid)
            self.network.stats.flowlet_expirations += 1

        key: FwdKey = (destination, packet.tag, packet.pid)
        entry = self.fwdt.lookup(key)
        if entry is None or not self._entry_valid(entry) or \
                not self._usable_next_hop(entry.next_hop):
            # The constrained path for this tag is gone; only a source switch may
            # legitimately re-tag the packet (policy compliance, §4.2).
            if from_host:
                best = self._rescan_best(destination)
                if best is None:
                    return None
                _, tag, pid = best
                packet.tag = tag
                packet.pid = pid
                key = (destination, tag, pid)
                entry = self.fwdt.lookup(key)
                if entry is None or not self._usable_next_hop(entry.next_hop):
                    return None
            else:
                return None

        self.flowlets.install(destination, key[1], key[2], fid,
                              entry.next_hop, entry.next_tag, now)
        packet.tag = entry.next_tag
        return entry.next_hop

    def _usable_next_hop(self, neighbor: str) -> bool:
        return not self._believed_failed.get(neighbor, False) and \
            not self.switch.link_failed(neighbor)

    # ---------------------------------------------------------------- failures

    def _failure_check(self) -> None:
        """Mark neighbours silent for ``failure_periods`` probe periods as failed (§5.4)."""
        now = self.network.sim.now
        window = self.system.probe_period * self.system.failure_periods
        for neighbor, last_seen in self._last_probe_from.items():
            silent = now - last_seen > window
            if silent and not self._believed_failed.get(neighbor, False):
                self._believed_failed[neighbor] = True
                self.network.stats.failure_detections += 1
                expired = self.flowlets.expire_via(neighbor)
                self.network.stats.flowlet_expirations += expired
            elif not silent and self._believed_failed.get(neighbor, False):
                self._believed_failed[neighbor] = False
        self.network.sim.schedule(self.system.probe_period, self._failure_check)

    def on_link_change(self, neighbor: str, failed: bool) -> None:
        """React immediately to a simulator-signalled link event (optional fast path).

        The protocol's own detection works purely by probe silence; this hook
        merely lets experiments model switches with local link-down interrupts.
        It is intentionally *not* used by default (the Figure 14 experiment
        measures the probe-silence detection delay).
        """

    # ------------------------------------------------------------------ debug

    def forwarding_snapshot(self) -> Dict[FwdKey, Tuple[str, int, Tuple[float, ...]]]:
        """A compact view of FwdT used by tests: key -> (nhop, version, metrics)."""
        return {key: (entry.next_hop, entry.version, entry.metrics.values)
                for key, entry in self.fwdt.items()}

    def best_next_hop(self, destination: str) -> Optional[str]:
        """The next hop this switch would use for a fresh flowlet to ``destination``."""
        key = self._best_key(destination)
        if key is None:
            return None
        entry = self.fwdt.lookup(key)
        return entry.next_hop if entry is not None else None
