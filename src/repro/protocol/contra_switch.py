"""The Contra data-plane runtime: the behaviour of the synthesized switch programs.

:class:`ContraSystem` installs one :class:`ContraRouting` instance per switch,
each interpreting the switch's compiled :class:`~repro.core.device_config
.DeviceConfig`.  Together they implement the full protocol of §4–§5:

* periodic, versioned probes multicast along product-graph edges,
* FwdT/BestT maintenance with the ``f``/``s`` ranking split of Figure 7,
* policy-aware flowlet switching (§5.3),
* TTL-delta loop detection and flowlet flushing (§5.5), and
* failure detection by probe silence plus metric expiration (§5.4).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis.decomposition import SubPolicy
from repro.core.ast import Attr, PathContext, Policy, TupleExpr
from repro.core.attributes import MetricVector
from repro.core.compiler import CompiledPolicy
from repro.core.device_config import DeviceConfig
from repro.core.rank import INFINITY, Rank
from repro.exceptions import SimulationError
from repro.nputil import np
from repro.protocol.probe import ProbePayload, make_probe_packet
from repro.protocol.tables import (
    BestChoiceTable,
    ForwardingEntry,
    ForwardingShadow,
    ForwardingTable,
    FlowletTable,
    FwdKey,
    LoopDetectionTable,
    lexicographic_gt_eq,
    packet_flow_hash,
)
from repro.simulator.network import Network, RoutingSystem
from repro.simulator.packet import Packet
from repro.simulator.probe_wave import (
    COL_ORIGIN,
    COL_PID,
    COL_TAG,
    COL_VERSION,
    ProbeWave,
)
from repro.simulator.switchnode import RoutingLogic, SwitchNode

__all__ = ["ContraSystem", "ContraRouting", "PROBE_VECTORIZE_DEFAULT"]

#: Process-wide default for the array probe plane (the vectorized wave
#: prefilter in :meth:`ContraRouting.on_probe_wave`).  **Off by default**,
#: by measurement: the prefilter is exact (byte-identical state and event
#: counts), but a rejected probe's wall-clock cost is dominated by its
#: enqueue/transport/dispatch chain (~13µs/probe), not by the reject
#: decision it skips (~2.5µs), while the judge itself costs ~3µs per judged
#: probe at the wave sizes a fat-tree produces (~30 probes) plus ~1µs per
#: accept for the FwdT shadow mirror — a net 1.1–1.5× *slowdown* on the
#: fig11-k16 micro point and the probe-plane flood benchmarks (see
#: ARCHITECTURE.md, "Array probe plane").  Opt in with
#: ``ContraSystem(probe_vectorize=True)`` (or flip this default) to measure
#: it; the equivalence suites exercise it either way so the path cannot rot.
PROBE_VECTORIZE_DEFAULT = False

#: Waves shorter than this skip the array passes: below a handful of probes
#: the column build costs more than the scalar loop it would save.  Purely a
#: performance threshold — both paths are exact.
VECTOR_MIN_WAVE = 8


class ContraSystem(RoutingSystem):
    """Routing system that deploys a compiled Contra policy on every switch."""

    name = "contra"

    def __init__(
        self,
        compiled: CompiledPolicy,
        probe_period: Optional[float] = None,
        flowlet_timeout: float = 0.2,
        failure_periods: int = 3,
        loop_threshold: int = 4,
        probe_all_switches: bool = False,
        split_horizon: bool = True,
        use_versioning: bool = True,
        probe_vectorize: Optional[bool] = None,
    ):
        self.compiled = compiled
        self.probe_period = probe_period if probe_period is not None else compiled.probe_period
        if self.probe_period <= 0:
            raise SimulationError("probe period must be positive")
        self.flowlet_timeout = flowlet_timeout
        self.failure_periods = failure_periods
        self.loop_threshold = loop_threshold
        self.probe_all_switches = probe_all_switches
        self.split_horizon = split_horizon
        #: §5.1 refinement: versioned probes.  Disabling this reproduces the
        #: persistent-loop hazard of an unversioned distance-vector protocol
        #: and is exposed only for the ablation benchmark.
        self.use_versioning = use_versioning
        #: Array probe plane: ``None`` resolves to ``PROBE_VECTORIZE_DEFAULT``
        #: when numpy is importable (pure-Python fallback otherwise); an
        #: explicit True without numpy is a loud error rather than a silent
        #: slowdown.
        if probe_vectorize and np is None:
            raise SimulationError("probe_vectorize=True requires numpy; "
                                  "install the [fast] extra or leave it None")
        self.probe_vectorize = probe_vectorize
        self._logics: Dict[str, "ContraRouting"] = {}

    def vectorize_resolved(self) -> bool:
        """Whether switches of this system run the array probe plane.

        Resolved per switch-logic construction (so tests can flip the module
        default between runs), and additionally requires the protocol modes
        under which the wave prefilter is exact: split horizon (the ingress
        link's congestion is then constant across one wave) and versioning
        (the unversioned ablation's staleness refresh reads per-probe time
        state the prefilter does not model).
        """
        if np is None:
            return False
        enabled = (PROBE_VECTORIZE_DEFAULT if self.probe_vectorize is None
                   else bool(self.probe_vectorize))
        return enabled and self.split_horizon and self.use_versioning

    def create_switch_logic(self, switch: str) -> "ContraRouting":
        logic = ContraRouting(self, self.compiled.device(switch))
        self._logics[switch] = logic
        return logic

    def start(self, network: Network) -> None:
        """Arm the periodic probe flood and failure detection.

        All per-switch rounds of one period fire at the same instant, so they
        are coalesced under a single recurring engine event each (origination
        and failure checking) instead of one self-rescheduling chain per
        switch; the per-switch work runs in deterministic creation order.
        """
        destinations = (network.topology.switches if self.probe_all_switches
                        else network.destination_switches())
        origins = [self._logics[switch] for switch in destinations]
        if origins:
            network.sim.schedule_periodic(self.probe_period, self._probe_all, origins)
        logics = list(self._logics.values())
        if logics:
            network.sim.schedule_periodic(
                self.probe_period, self._failure_check_all, logics,
                start_delay=self.probe_period * self.failure_periods)

    #: Same-tick rounds whose relative heap order is free, not contractual
    #: (probe origination reads link state, failure checking flips belief
    #: bits neither round reads back this tick) — the race detector is
    #: allowed to permute adjacent firings of these.
    commutable_rounds = ("_probe_all", "_failure_check_all")

    @staticmethod
    def _probe_all(origins: List["ContraRouting"]) -> None:
        for logic in origins:
            logic.probe_round()

    def _failure_check_all(self, logics: List["ContraRouting"]) -> None:
        # Per-switch failure checks are mutually independent (each flips its
        # own belief bits); the iteration order is undocumented, so the race
        # detector shuffles it when installed.
        rng = self.race_rng
        if rng is not None:
            logics = list(logics)
            rng.shuffle(logics)
        for logic in logics:
            logic.failure_check()

    def packet_header_bits(self) -> int:
        configs = self.compiled.device_configs.values()
        return max(cfg.packet_tag_bits() for cfg in configs) if configs else 0

    def logic(self, switch: str) -> "ContraRouting":
        return self._logics[switch]


class ContraRouting(RoutingLogic):
    """The per-switch program synthesized from the user policy."""

    def __init__(self, system: ContraSystem, config: DeviceConfig):
        self.system = system
        self.config = config
        self.compiled = system.compiled
        self.subpolicies: List[SubPolicy] = list(self.compiled.decomposition.subpolicies)
        if not self.subpolicies:
            raise SimulationError("compiled policy has no subpolicies")

        self.fwdt = ForwardingTable()
        self.bestt = BestChoiceTable()
        self.flowlets = FlowletTable(system.flowlet_timeout, slots=config.flowlet_slots)
        self.loop_detector = LoopDetectionTable(
            threshold=system.loop_threshold, slots=config.loop_table_slots)

        self._version = 0
        self._last_probe_from: Dict[str, float] = {}
        self._believed_failed: Dict[str, bool] = {}
        self._probe_bits = config.probe_bits()

        # Hot-path caches.  Per subpolicy: the positions of its propagation
        # attributes inside the carried metric vector, so the isotonic key
        # f(pid, mv) is a plain tuple slice instead of a Rank construction.
        # ``True`` marks the identity projection (propagation attrs == the
        # carried vector, the figure-policy shape): the extended values tuple
        # *is* the propagation key, no copy needed.
        self._prop_indices: Dict[int, object] = {}
        for sub in self.subpolicies:
            try:
                indices = tuple(
                    sub.carried_attrs.index(name) for name in sub.propagation_attrs)
                self._prop_indices[sub.pid] = \
                    True if indices == tuple(range(len(sub.carried_attrs))) else indices
            except ValueError:  # attr not carried: fall back to the slow path
                self._prop_indices[sub.pid] = None
        #: Interning pool for installed propagation keys: within one probe
        #: round, thousands of entries share the handful of distinct metric
        #: tuples, so installed rows reference one shared tuple each instead
        #: of keeping a private copy alive per (destination, tag, pid) row.
        self._prop_key_pool: Dict[Tuple[float, ...], Tuple[float, ...]] = {}
        # ECMP alternates are only sound when the propagation rank carries
        # the hop count: equal rank then implies equal path length, and a
        # cycle (which strictly increases ``len``) can never tie.  Without
        # ``len`` (pure-MU on a WAN), a longer detour can tie an entry
        # exactly and an alternate pointing back along it would ping-pong.
        self._allow_alternates: Dict[int, bool] = {
            sub.pid: "len" in sub.propagation_attrs for sub in self.subpolicies}
        # Specialized evaluator for regex-free pure-attribute policies (the
        # common minimize(attr) / minimize((attr, attr)) shapes).
        self._fast_rank = _fast_rank_evaluator(self.compiled.policy)
        # Specialized per-names metric extenders (False = use the generic path).
        self._extenders: Dict[Tuple[str, ...], object] = {}
        # Bound-method/attribute caches for the probe hot loop (instance
        # constants; rebinding them per wave showed up in k=16 profiles).
        self._transition_get = config.probe_transition.get
        self._fwdt_lookup = self.fwdt.lookup
        self._fwdt_install = self.fwdt.install

        # ----- array probe plane (ARCHITECTURE.md "array probe plane") -----
        # Interned ids are compile-scoped: assigned once per CompiledPolicy,
        # shared by every switch and stamped into payloads at origination.
        self._switch_ids = self.compiled.switch_ids()
        self._my_id = self._switch_ids.get(config.switch)
        self._num_switches = len(self._switch_ids)
        self._carried_names: Tuple[str, ...] = tuple(self.compiled.carried_attrs)
        self._shadow: Optional[ForwardingShadow] = None
        self._trans_rows = None
        self._column_ops = None
        self._prop_cols: Dict[int, Optional[Tuple[int, ...]]] = {}
        self._single_pid = None
        self.wants_probe_waves = system.vectorize_resolved()
        if self.wants_probe_waves:
            self._init_wave_state()

    def _init_wave_state(self) -> None:
        """Lower the per-switch tables into array form (install-time interning).

        Builds the per-inport transition rows, the per-pid propagation-key
        column selections, the columnwise metric-fold ops, and the dense FwdT
        shadow.  Anything that cannot be lowered (an attribute without a
        built-in fold, a propagation key outside the carried vector) degrades
        per probe to the scalar path — never disables the exact kill passes.
        """
        config = self.config
        self._trans_rows = config.lowered_transitions()
        width = len(self._carried_names)
        for sub in self.subpolicies:
            indices = self._prop_indices[sub.pid]
            if indices is True:
                self._prop_cols[sub.pid] = tuple(range(width))
            elif indices is None:
                self._prop_cols[sub.pid] = None
            else:
                self._prop_cols[sub.pid] = tuple(indices)
        ops = tuple(_COLUMN_FOLDS.get(name) for name in self._carried_names)
        self._column_ops = ops if all(ops) and width > 0 else None
        if len(self._prop_cols) == 1:
            self._single_pid = next(iter(self._prop_cols.items()))
        key_widths = [len(cols) for cols in self._prop_cols.values()
                      if cols is not None]
        if self._column_ops is not None and key_widths:
            self._shadow = ForwardingShadow(
                num_origins=len(self._switch_ids),
                num_tags=(max(config.tags) + 1 if config.tags else 1),
                num_pids=config.num_probe_ids,
                key_width=max(key_widths),
            )

    # --------------------------------------------------------------- lifecycle

    def attach(self, switch: SwitchNode, network: Network) -> None:
        super().attach(switch, network)
        now = 0.0
        for neighbor in switch.switch_neighbors():
            self._last_probe_from[neighbor] = now
            self._believed_failed[neighbor] = False

    def start_probing(self) -> None:
        """Begin periodic probe origination (this switch is a traffic destination)."""
        self.network.sim.schedule_periodic(self.system.probe_period, self.probe_round)

    def start_failure_detection(self) -> None:
        period = self.system.probe_period
        self.network.sim.schedule_periodic(
            period, self.failure_check,
            start_delay=period * self.system.failure_periods)

    # ----------------------------------------------------------------- probes

    def probe_round(self) -> None:
        """INITPROBE: originate one probe per subpolicy and multicast it."""
        self._version += 1
        origin_tag = self.config.probe_origin_tag
        for sub in self.subpolicies:
            payload = ProbePayload(
                origin=self.switch.name,
                pid=sub.pid,
                version=self._version,
                tag=origin_tag,
                metrics=sub.initial_metrics(),
                origin_id=self._my_id,
            )
            self._multicast(payload, exclude=None)

    def _multicast(self, payload: ProbePayload, exclude: Optional[str]) -> None:
        """MULTICASTPROBE: send along all product-graph out-edges of the payload's tag.

        One packet object is shared by every target: probe packets are
        immutable in flight (only data packets are re-tagged or TTL-decremented),
        so per-target copies would only burn allocations — together with the
        by-reference payload this keeps a probe round's allocations
        O(accepted probes), not O(received).
        """
        packet = None
        ports = self.switch.ports
        split_horizon = self.system.split_horizon
        for neighbor in self.config.multicast_targets(payload.tag):
            if exclude is not None and split_horizon and neighbor == exclude:
                continue
            # Probes are still multicast towards believed-failed neighbours:
            # a failed link simply drops them, and their arrival after the
            # link comes back is what clears the failure belief on the far
            # side.  Suppressing them would make recovery undetectable —
            # both endpoints would wait forever for the other's probes.
            if packet is None:
                packet = make_probe_packet(payload, self.switch.name, self._probe_bits)
            link = ports.get(neighbor)
            if link is not None and not link.failed:
                link.enqueue(packet)

    def on_probe(self, packet: Packet, inport: str) -> None:
        """PROCESSPROBE (Figure 7) with the versioning refinement of §5.1."""
        self.on_probe_batch((packet,), inport)

    def on_probe_batch(self, packets: Sequence[Packet], inport: str) -> None:
        """PROCESSPROBE over one same-tick probe run from ``inport``.

        Semantically identical to calling :meth:`on_probe` per packet in
        order; the run shape lets the per-probe loop shed everything that is
        constant across a wave from one inport: the clock read, the
        probe-silence/failure-belief refresh, the ingress product-graph
        transition table, the egress link object and the extender dispatch.
        The per-probe work that remains is the accept decision itself (~90%
        of probes in a converged fabric are rejected, so the reject path is
        the hot path).
        """
        link, plain_link, now = self._probe_run_header(inport)
        self._scalar_probe_run(packets, inport, link, plain_link, now)

    def on_probe_wave(self, packets: Sequence[Packet], inport: str,
                      wave: Optional[ProbeWave] = None) -> None:
        """PROCESSPROBE over one run member, with the array prefilter in front.

        At a run's first member, exact array passes over the whole wave flag
        the probes whose scalar processing would have **zero side effects**:
        the static kills (no product-graph transition, self-origin) into
        ``wave.dead``, and the table-dependent verdicts against the FwdT
        shadow as of run start (version rejects, strict metric rejects, and
        exact ties whose ECMP-alternate side effect is provably a no-op)
        into ``wave.cond_dead`` under the congestion guard.  The link drops
        flagged members outright.  The survivors — accepts, mutating ties,
        and anything the passes could not judge — fall through to the
        unchanged scalar loop at their original FIFO positions.  Because
        flagged probes are side-effect-free and survivors recompute
        everything scalar-side, the outcome is byte-identical to
        :meth:`on_probe_batch` by construction.
        """
        if wave is not None:
            if wave.dead is not None:
                # Judged run, member with at least one unflagged probe.
                self._consume_member(wave, packets, inport)
                return
            # First member: set the run up for judging, if it qualifies.
            link, plain_link, now = self._probe_run_header(inport)
            judged = (self._judge_run(wave, link, inport)
                      if plain_link and len(wave.packets) >= VECTOR_MIN_WAVE
                      else False)
            if judged:
                wave.context = (link, plain_link, now)
                wave.cursor = len(packets)
                wave.member_base = 0
                self._consume_member(wave, packets, inport)
            else:
                # Ineligible or too small: the link delivers the remaining
                # members plainly and each runs the scalar path (with its
                # own header, exactly like the per-member baseline).
                wave.scalar = True
                self._scalar_probe_run(packets, inport, link, plain_link, now)
            return
        link, plain_link, now = self._probe_run_header(inport)
        self._scalar_probe_run(packets, inport, link, plain_link, now)

    def _consume_member(self, wave: ProbeWave, packets: Sequence[Packet],
                        inport: str) -> None:
        """Process one member of a judged run through its cached verdicts.

        Members made up entirely of flagged probes were already dropped
        link-side; a mixed member lands here.  The same masks the link uses
        apply per probe: the unconditional ``dead`` flags, and the
        conditional rejects while the guard still holds (ingress congestion
        at least the fold value the judging pass used — the folds are
        monotone nondecreasing in congestion and entries only improve, so a
        strict loss cannot turn into an accept, and a flagged tie cannot
        turn into a mutating one, while congestion is no lower than the
        fold saw).  If congestion dropped below the fold value — a mid-tick
        data drain towards this inport — the conditional probes go to the
        scalar loop instead, which recomputes everything.  Survivors run
        scalar at their original FIFO position.
        """
        link, plain_link, now = wave.context
        base = wave.member_base
        dead = wave.dead
        cond = wave.cond_dead
        if cond is not None and link.congestion < wave.guard_value:
            cond = None
        survivors = None
        for offset, packet in enumerate(packets):
            index = base + offset
            if dead[index] or (cond is not None and cond[index]):
                continue
            if survivors is None:
                survivors = [packet]
            else:
                survivors.append(packet)
        if survivors is not None:
            self._scalar_probe_run(survivors, inport, link, plain_link, now)

    def _probe_run_header(self, inport: str):
        """Per-run bookkeeping shared by the scalar and array paths.

        Refreshes the probe-silence clock and failure belief for ``inport``
        and resolves the traffic-direction link — everything that happens
        once per ``(link, tick)`` run regardless of how its probes are judged.
        """
        now = self.network.sim._now
        self._last_probe_from[inport] = now
        believed_failed = self._believed_failed
        if believed_failed.get(inport, False):
            believed_failed[inport] = False
        switch = self.switch
        link = switch.ports.get(inport)
        if link is None:
            link = switch.egress(inport)        # raises the canonical error
        # The specialized extender reads the link's congestion directly; an
        # instance-level metric_values override (tests pin link metrics that
        # way) must keep winning over it.
        plain_link = "metric_values" not in link.__dict__
        return link, plain_link, now

    def _scalar_probe_run(self, packets: Sequence[Packet], inport: str,
                          link, plain_link: bool, now: float) -> None:
        """The per-probe PROCESSPROBE loop (the protocol oracle).

        This is the sole mutator of FwdT/BestT/flowlet state on the probe
        path; the array prefilter only decides which probes reach it.
        """
        switch = self.switch
        my_name = switch.name
        transition_get = self._transition_get
        extenders = self._extenders
        extenders_get = extenders.get
        prop_indices_get = self._prop_indices.get
        fwdt_lookup = self._fwdt_lookup
        fwdt_install = self._fwdt_install
        system = self.system
        use_versioning = system.use_versioning
        allow_alternates_get = self._allow_alternates.get
        shadow = self._shadow
        inport_id = self._switch_ids.get(inport, -1) if shadow is not None else -1

        for packet in packets:
            payload = packet.probe
            tag = payload.tag
            local_tag = transition_get((inport, tag))
            if local_tag is None:
                continue  # no product-graph edge: the probe is policy-irrelevant here
            origin = payload.origin
            if origin == my_name:
                continue  # probes never advertise a destination back to itself

            # UPDATEMVEC: fold in the traffic-direction link (this switch ->
            # inport).  Only the extended *values* tuple is computed up front;
            # the metric vector object is materialized after the accept
            # decision.
            mv = payload.metrics
            names = mv.names
            extend = extenders_get(names)
            if extend is None:
                extend = _make_metric_extender(names) or False
                extenders[names] = extend
            if extend is not False and plain_link:
                new_values = extend(mv, link)
            else:
                new_values = mv.extend(link.metric_values()).values

            pid = payload.pid
            key: FwdKey = (origin, local_tag, pid)
            entry = fwdt_lookup(key)
            indices = prop_indices_get(pid)
            if indices is True:
                prop_key = new_values
            elif indices is None:  # attrs outside the carried vector: slow path
                prop_key = self.compiled.decomposition.subpolicy(pid) \
                    .propagation_rank(MetricVector._make(names, new_values)).values
            else:
                prop_key = tuple([new_values[i] for i in indices])

            version = payload.version
            if entry is None:
                pass                     # first word about this key: accept
            elif not use_versioning:
                # Ablation: unversioned distance-vector — accept purely on
                # metric, plus staleness refresh so entries do not expire
                # spuriously.
                if not (prop_key < entry.prop_key
                        or now - entry.updated_at > system.probe_period):
                    if prop_key == entry.prop_key and inport != entry.next_hop \
                            and allow_alternates_get(pid, False):
                        entry.add_alternate(inport, tag)
                    continue
            elif version > entry.version:
                pass                     # newer round always replaces stale state
            elif version == entry.version and prop_key < entry.prop_key:
                pass                     # same round: keep the better path under f
            else:
                # An exact same-round tie is an ECMP sibling of the installed
                # path: remember it as an alternate next hop (no re-multicast
                # — the equal-metric flood already went out via the primary).
                if prop_key == entry.prop_key and inport != entry.next_hop and \
                        version == entry.version and allow_alternates_get(pid, False):
                    entry.add_alternate(inport, tag)
                    if shadow is not None:
                        # Mirror the tie into the shadow's alternate slots so
                        # the block judge can flag future repeat/full-group
                        # ties as no-ops.
                        shadow.record_alternate(payload.origin_id, local_tag,
                                                pid, version, inport_id, tag)
                continue

            metrics = MetricVector._make(names, new_values)
            prop_key = self._prop_key_pool.setdefault(prop_key, prop_key)
            new_entry = ForwardingEntry(
                metrics=metrics,
                next_tag=tag,
                next_hop=inport,
                version=version,
                updated_at=now,
                prop_key=prop_key,
                rank=self._rank_of(key, metrics),
            )
            fwdt_install(key, new_entry)
            if shadow is not None:
                # Mirror the install into the dense prefilter view (exact
                # values only; see the ForwardingShadow soundness contract).
                shadow.record(payload.origin_id, local_tag, pid, version,
                              prop_key, inport_id)
            self._maybe_update_best(origin, key, new_entry)
            self._multicast(payload.advanced(local_tag, metrics), exclude=inport)

    def _judge_run(self, wave: ProbeWave, link, inport: str) -> bool:
        """Judge one whole run with exact array passes; False if ineligible.

        Returns False when the run has no column form (ineligible payloads,
        no lowered tables for this switch) — the caller then runs the whole
        run scalar.  Otherwise writes the verdict masks and returns True.

        Unconditional kills (``wave.dead``) — exact regardless of table
        state, or proven to stay exact:

        * **transition kill** — the dense per-inport row of the
          product-graph transition table maps each probe's tag to its local
          tag; ``-1`` means no edge, and the scalar loop would ``continue``
          untouched.
        * **self-origin kill** — probes advertising this switch to itself.
        * **version reject** — probes strictly older than the shadow entry
          for their (origin, tag, pid); entry versions never decrease, so
          the verdict cannot rot while later members interleave with other
          runs' installs.

        Conditional kills (``wave.cond_dead``), valid while the guard
        link's congestion is at least ``fold_congestion`` (stored as the
        wave's guard):

        * **metric reject** — fold the ingress link into the metric columns
          (UPDATEMVEC as column ops: identical float64 arithmetic to the
          scalar extender) and flag same-version probes whose propagation
          key *strictly* loses against the shadow.
        * **no-op tie** — same-version probes whose key ties the shadow's
          exactly, when the scalar tie side effect (``add_alternate``)
          would provably not fire: the probe's pid forbids alternates, the
          probe arrived over the entry's own next hop, its (hop, tag) pair
          is already in the group, or the group is full.  Ties that would
          *mutate* the group survive to scalar.

        The guard is sound because every fold is monotone nondecreasing in
        congestion and same-key entries only ever improve: a strict loss
        stays a strict loss, and a tie either stays a tie against the
        *same* entry (whose alternate group only grows — a no-op stays a
        no-op) or turns into a strict loss against a better one.  The
        shadow is judged at run start; interleaved installs by other runs
        can only *improve* entries, so a kill never becomes an accept —
        probes the run-start shadow could not kill simply survive to the
        scalar loop, which recomputes everything.
        """
        columns = wave.columns(self._carried_names)
        if columns is None or self._trans_rows is None:
            return False
        ints, metric_columns = columns
        n = ints.shape[0]
        trans_row = self._trans_rows.get(inport)
        if trans_row is None:
            # No product-graph edge from this inport at all: every probe of
            # the run is policy-irrelevant here (scalar would skip each one).
            wave.dead = [True] * n
            return True
        tags = ints[:, COL_TAG]
        local_tags = np.full(n, -1, dtype=np.int64)
        in_range = (tags >= 0) & (tags < trans_row.shape[0])
        local_tags[in_range] = trans_row[tags[in_range]]
        dead = local_tags < 0
        origins = ints[:, COL_ORIGIN]
        if self._my_id is not None:
            dead |= origins == self._my_id
        shadow = self._shadow
        if shadow is None or self._column_ops is None:
            wave.dead = dead.tolist()
            return True

        pids = ints[:, COL_PID]
        versions = ints[:, COL_VERSION]
        # ``fold_congestion`` is the utilization value the folds see; the
        # memoized property returns the very same float to the guard
        # checks later.
        fold_congestion = link.congestion
        folded = [op(metric_columns[:, position], link)
                  for position, op in enumerate(self._column_ops)]
        bounds_ok = (origins >= 0) & (origins < self._num_switches) \
            & (pids >= 0) & (pids < shadow.num_pids) \
            & (local_tags < shadow.num_tags)
        flat = (origins * shadow.num_tags + local_tags) \
            * shadow.num_pids + pids
        inport_id = self._switch_ids.get(inport, -1)
        max_alternates = ForwardingEntry.MAX_ALTERNATES
        cond = None
        single = self._single_pid
        if single is not None and bounds_ok.all() \
                and (pids == single[0]).all():
            # Aligned fast path: one pid in the policy and every row's flat
            # shadow index is in range, so the passes run at full width
            # with no mask compression.  Rows already dead (transition or
            # self-origin kills) are judged too: their ``local_tags`` of
            # ``-1`` make ``flat`` a small negative (in-range wraparound)
            # index, so the reads are garbage but safe, and the resulting
            # verdict bits land on rows the dead mask already drops.
            pid, key_columns = single
            shadow_versions = shadow.versions[flat]
            has_entry = shadow_versions >= 0
            if has_entry.any():
                dead |= has_entry & (versions < shadow_versions)
                if key_columns is not None:
                    same_version = has_entry & (versions == shadow_versions)
                    if same_version.any():
                        probe_keys = [folded[column] for column in key_columns]
                        entry_keys = [shadow.prop_cols[position][flat]
                                      for position in range(len(key_columns))]
                        strict_loss, tie = lexicographic_gt_eq(
                            probe_keys, entry_keys)
                        verdict = same_version & strict_loss
                        tie &= same_version
                        if tie.any():
                            if not self._allow_alternates.get(pid, False):
                                verdict |= tie
                            elif inport_id >= 0:
                                noop = shadow.nexthop_ids[flat] == inport_id
                                noop |= shadow.alt_count[flat] >= max_alternates
                                for slot in range(max_alternates):
                                    noop |= \
                                        (shadow.alt_hops[slot][flat]
                                         == inport_id) \
                                        & (shadow.alt_tags[slot][flat] == tags)
                                verdict |= tie & noop
                        if verdict.any():
                            cond = verdict
        else:
            judgeable = ~dead & bounds_ok
            for pid, key_columns in self._prop_cols.items():
                mask = judgeable & (pids == pid)
                if not mask.any():
                    continue
                indices = flat[mask]
                shadow_versions = shadow.versions[indices]
                has_entry = shadow_versions >= 0
                if not has_entry.any():
                    continue
                rows = np.flatnonzero(mask)
                probe_versions = versions[mask]
                dead[rows[has_entry
                          & (probe_versions < shadow_versions)]] = True
                if key_columns is None:
                    continue            # unlowerable prop key: survivors
                same_version = has_entry & (probe_versions == shadow_versions)
                if not same_version.any():
                    continue
                probe_keys = [folded[column][mask] for column in key_columns]
                entry_keys = [shadow.prop_cols[position][indices]
                              for position in range(len(key_columns))]
                strict_loss, tie = lexicographic_gt_eq(probe_keys, entry_keys)
                verdict = same_version & strict_loss
                tie &= same_version
                if tie.any():
                    if not self._allow_alternates.get(pid, False):
                        verdict |= tie
                    elif inport_id >= 0:
                        noop = shadow.nexthop_ids[indices] == inport_id
                        noop |= shadow.alt_count[indices] >= max_alternates
                        probe_tags = tags[mask]
                        for slot in range(max_alternates):
                            noop |= (shadow.alt_hops[slot][indices]
                                     == inport_id) \
                                & (shadow.alt_tags[slot][indices]
                                   == probe_tags)
                        verdict |= tie & noop
                if verdict.any():
                    if cond is None:
                        cond = np.zeros(n, dtype=bool)
                    cond[rows[verdict]] = True

        # Plain lists index faster than numpy scalars in the link's and
        # the member consumer's per-probe loops.
        wave.dead = dead.tolist()
        if cond is not None:
            wave.cond_dead = cond.tolist()
            wave.guard_link = link
            wave.guard_value = fold_congestion
        return True

    # ------------------------------------------------------------ best choice

    def _propagation_key(self, pid: int, names: Tuple[str, ...],
                         values: Tuple[float, ...]) -> Tuple[float, ...]:
        """The isotonic propagation key f(pid, mv) as a raw comparable tuple."""
        indices = self._prop_indices.get(pid)
        if indices is True:  # identity projection: the values tuple is the key
            return values
        if indices is None:  # attrs outside the carried vector: slow path
            metrics = MetricVector._make(names, values)
            return self.compiled.decomposition.subpolicy(pid).propagation_rank(metrics).values
        return tuple(values[i] for i in indices)

    def _rank_of(self, key: FwdKey, metrics) -> Rank:
        """s(key): evaluate the full user policy on one metric vector."""
        fast = self._fast_rank
        if fast is not None:
            return fast(metrics)
        acceptance = self.config.acceptance_of(key[1])
        ctx = PathContext((), metrics.as_dict(), acceptance)
        return self.compiled.policy.evaluate(ctx)

    def _entry_rank(self, key: FwdKey, entry: ForwardingEntry) -> Rank:
        """The cached policy rank of one FwdT entry (computed at install time)."""
        rank = entry.rank
        if rank is None:
            rank = entry.rank = self._rank_of(key, entry.metrics)
        return rank

    def _entry_valid(self, entry: ForwardingEntry) -> bool:
        """An entry is stale if its probes stopped or its next hop is believed dead."""
        if self._believed_failed.get(entry.next_hop, False):
            return False
        if self.switch.link_failed(entry.next_hop):
            return False
        max_age = self.system.probe_period * (self.system.failure_periods + 1)
        return self.network.sim.now - entry.updated_at <= max_age

    def _maybe_update_best(self, destination: str, key: FwdKey,
                           entry: ForwardingEntry) -> None:
        """Fold a freshly installed entry into the co-best set for its destination.

        BestT holds *every* FwdT key of minimal (equal) rank, not just one:
        fresh flowlets spread across the co-best entries by flowlet id
        (:meth:`on_data_packet`).  With a single pointer, every host under a
        ToR pinned its new flowlets to the same uplink for up to a probe
        period — a synchronized burst then built a queue ECMP's per-flow
        hashing never sees (the Figure 13 tail).  Ties are common precisely
        when it matters: idle equal-length paths all rank (len, 0.0).
        """
        new_rank = self._entry_rank(key, entry)
        current = self.bestt.get(destination)
        if not current:
            if new_rank.is_finite:
                self.bestt.set(destination, (key,))
            return
        reference_rank = None
        for current_key in current:
            current_entry = self.fwdt.lookup(current_key)
            if current_entry is not None and self._entry_valid(current_entry):
                reference_rank = self._entry_rank(current_key, current_entry)
                break
        if reference_rank is None:
            if new_rank.is_finite:
                self.bestt.set(destination, (key,))
            return
        if new_rank < reference_rank:
            self.bestt.set(destination, (key,))
        elif new_rank == reference_rank:
            if key not in current:
                self.bestt.set(destination, current + (key,))
        elif key in current:
            # The refreshed entry fell behind its co-best peers: drop it.
            remaining = tuple(k for k in current if k != key)
            if remaining:
                self.bestt.set(destination, remaining)
            else:
                self.bestt.clear(destination)

    def _best_key(self, destination: str) -> Optional[FwdKey]:
        """The single best valid FwdT key (deterministic first of the co-best set)."""
        keys = self._best_keys(destination)
        return keys[0] if keys else None

    def _best_keys(self, destination: str) -> Tuple[FwdKey, ...]:
        """All valid equal-rank best FwdT keys, refreshing BestT if stale."""
        keys = self.bestt.get(destination)
        if keys:
            first_rank = None
            for key in keys:
                entry = self.fwdt.lookup(key)
                if entry is None or not self._entry_valid(entry):
                    return self._rescan_best(destination)
                rank = self._entry_rank(key, entry)
                if not rank.is_finite:
                    return self._rescan_best(destination)
                if first_rank is None:
                    first_rank = rank
                elif rank != first_rank:
                    return self._rescan_best(destination)
            return keys
        return self._rescan_best(destination)

    def _rescan_best(self, destination: str) -> Tuple[FwdKey, ...]:
        best_keys: List[FwdKey] = []
        best_rank = INFINITY
        for key, entry in self.fwdt.entries_for_destination(destination).items():
            if not self._entry_valid(entry):
                continue
            rank = self._entry_rank(key, entry)
            if rank < best_rank:
                best_rank = rank
                best_keys = [key]
            elif best_keys and rank == best_rank:
                best_keys.append(key)
        result = tuple(best_keys)
        if result:
            self.bestt.set(destination, result)
        else:
            self.bestt.clear(destination)
        return result

    # -------------------------------------------------------------- forwarding

    def on_data_packet(self, packet: Packet, inport: str) -> Optional[str]:
        """SWIFORWARDPKT with policy-aware flowlet switching and loop breaking."""
        destination = packet.dst_switch
        from_host = not self.network.is_switch(inport)
        flow_hash = packet_flow_hash(packet)
        fid = flow_hash % self.flowlets.slots

        if from_host or packet.tag is None:
            # Fresh flowlets spread across the equal-rank co-best entries by
            # flowlet id — policy-compliant load balancing over ties.
            best_keys = self._best_keys(destination)
            if not best_keys:
                return None
            _, tag, pid = best_keys[fid % len(best_keys)]
            packet.tag = tag
            packet.pid = pid
            packet.extra_header_bits = self.config.packet_tag_bits()

        now = self.network.sim.now

        # Lazy loop breaking (§5.5): on suspicion, flush the flowlet pins so the
        # next packet re-reads the freshest FwdT entry.
        if self.loop_detector.observe_hash(flow_hash, packet.ttl, now):
            flushed = self.flowlets.expire_flowlet_everywhere(fid)
            self.network.stats.loop_detections += 1
            self.network.stats.flowlet_expirations += flushed

        pinned = self.flowlets.lookup(destination, packet.tag, packet.pid, fid, now)
        if pinned is not None:
            if self._usable_next_hop(pinned.next_hop):
                self.flowlets.touch(pinned, now)
                packet.tag = pinned.next_tag
                return pinned.next_hop
            # §5.4: expire flowlet entries whose next hop is along a failed link.
            self.flowlets.expire(destination, packet.tag, packet.pid, fid)
            self.network.stats.flowlet_expirations += 1

        key: FwdKey = (destination, packet.tag, packet.pid)
        entry = self.fwdt.lookup(key)
        if entry is None or not self._entry_valid(entry) or \
                not self._usable_next_hop(entry.next_hop):
            # The constrained path for this tag is gone; only a source switch may
            # legitimately re-tag the packet (policy compliance, §4.2).
            if from_host:
                best_keys = self._rescan_best(destination)
                if not best_keys:
                    return None
                _, tag, pid = best_keys[fid % len(best_keys)]
                packet.tag = tag
                packet.pid = pid
                key = (destination, tag, pid)
                entry = self.fwdt.lookup(key)
                if entry is None or not self._usable_next_hop(entry.next_hop):
                    return None
            else:
                return None

        next_hop, next_tag = self._choose_hop(entry, fid)
        self.flowlets.install(destination, key[1], key[2], fid, next_hop, next_tag, now)
        packet.tag = next_tag
        return next_hop

    def _choose_hop(self, entry: ForwardingEntry, fid: int) -> Tuple[str, int]:
        """Pick among the entry's equal-rank next hops by flowlet id."""
        alternates = entry.alternates
        if alternates:
            index = fid % (1 + len(alternates))
            if index:
                next_hop, next_tag = alternates[index - 1]
                if self._usable_next_hop(next_hop):
                    return next_hop, next_tag
        return entry.next_hop, entry.next_tag

    def _usable_next_hop(self, neighbor: str) -> bool:
        return not self._believed_failed.get(neighbor, False) and \
            not self.switch.link_failed(neighbor)

    # ---------------------------------------------------------------- failures

    def failure_check(self) -> None:
        """Mark neighbours silent for ``failure_periods`` probe periods as failed (§5.4)."""
        now = self.network.sim.now
        window = self.system.probe_period * self.system.failure_periods
        for neighbor, last_seen in self._last_probe_from.items():
            silent = now - last_seen > window
            if silent and not self._believed_failed.get(neighbor, False):
                self._believed_failed[neighbor] = True
                self.network.stats.failure_detections += 1
                expired = self.flowlets.expire_via(neighbor)
                self.network.stats.flowlet_expirations += expired
            elif not silent and self._believed_failed.get(neighbor, False):
                self._believed_failed[neighbor] = False

    def on_link_change(self, neighbor: str, failed: bool) -> None:
        """React immediately to a simulator-signalled link event (optional fast path).

        The protocol's own detection works purely by probe silence; this hook
        merely lets experiments model switches with local link-down interrupts.
        It is intentionally *not* used by default (the Figure 14 experiment
        measures the probe-silence detection delay).
        """

    # ------------------------------------------------------------------ debug

    def forwarding_snapshot(self) -> Dict[FwdKey, Tuple[str, int, Tuple[float, ...]]]:
        """A compact view of FwdT used by tests: key -> (nhop, version, metrics)."""
        return {key: (entry.next_hop, entry.version, entry.metrics.values)
                for key, entry in self.fwdt.items()}

    def best_next_hop(self, destination: str) -> Optional[str]:
        """The next hop this switch would use for a fresh flowlet to ``destination``."""
        key = self._best_key(destination)
        if key is None:
            return None
        entry = self.fwdt.lookup(key)
        return entry.next_hop if entry is not None else None


#: Columnwise UPDATEMVEC folds for the array prefilter — the same built-in
#: compositions as ``_EXTEND_OPS`` applied to a whole float64 column.  IEEE
#: binary64 max/add over non-NaN values match Python's ``max``/``+`` bit for
#: bit, which is what keeps the vectorized reject compare exact.
_COLUMN_FOLDS = {
    "util": lambda column, link: np.maximum(column, link.congestion),
    "lat": lambda column, link: column + link.latency,
    "len": lambda column, link: column + 1.0,
}


#: Per-attribute link extension steps used by the specialized extender: the
#: built-in compositions (util = bottleneck max, lat = additive, len = count)
#: read the link object directly instead of building a metric dict per probe.
_EXTEND_OPS = {
    "util": lambda values, index, link: max(values[index], link.congestion),
    "lat": lambda values, index, link: values[index] + link.latency,
    "len": lambda values, index, link: values[index] + 1.0,
}


def _extend_len_util(mv, link) -> Tuple[float, ...]:
    """Unrolled extender for the ``(len, util)`` datacenter-policy shape."""
    values = mv.values
    return (values[0] + 1.0, max(values[1], link.congestion))


def _extend_util_len(mv, link) -> Tuple[float, ...]:
    values = mv.values
    return (max(values[0], link.congestion), values[1] + 1.0)


def _extend_util(mv, link) -> Tuple[float, ...]:
    """Unrolled extender for the pure-``util`` WAN-policy shape."""
    return (max(mv.values[0], link.congestion),)


def _extend_lat(mv, link) -> Tuple[float, ...]:
    return (mv.values[0] + link.latency,)


#: Unrolled extenders for the metric shapes every figure policy uses — no
#: generator or per-attribute closure dispatch on the hot path.
_UNROLLED_EXTENDERS = {
    ("len", "util"): _extend_len_util,
    ("util", "len"): _extend_util_len,
    ("util",): _extend_util,
    ("lat",): _extend_lat,
}


def _make_metric_extender(names: Tuple[str, ...]):
    """A specialized ``(metric vector, link) -> extended values tuple`` extender.

    Returns None when a name falls outside the built-in attribute set, in
    which case the caller uses the generic dict-based path.
    """
    unrolled = _UNROLLED_EXTENDERS.get(names)
    if unrolled is not None:
        return unrolled
    try:
        ops = tuple((index, _EXTEND_OPS[name]) for index, name in enumerate(names))
    except KeyError:
        return None

    def extend(mv, link) -> Tuple[float, ...]:
        values = mv.values
        return tuple(op(values, index, link) for index, op in ops)

    return extend


def _fast_rank_evaluator(policy: Policy):
    """A specialized metric-vector evaluator for regex-free attribute policies.

    ``minimize(path.attr)`` and ``minimize((path.a, path.b))`` — the shapes
    every figure experiment uses — rank an entry as a plain tuple of its
    metric values.  Evaluating them through the generic AST walk built a
    PathContext, a metrics dict and several intermediate Ranks per entry;
    this closure produces an identical Rank directly.  Returns None for any
    other policy shape (conditionals, regexes, arithmetic), which keeps the
    general evaluator authoritative.
    """
    expression = policy.expression
    items = expression.items if isinstance(expression, TupleExpr) else (expression,)
    if not all(isinstance(item, Attr) for item in items):
        return None
    names = tuple(item.name for item in items)

    def evaluate(metrics) -> Rank:
        get = metrics.get
        return Rank.of_values(tuple(get(name) for name in names))

    return evaluate
