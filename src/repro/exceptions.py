"""Exception hierarchy for the Contra reproduction.

Every error raised by this library derives from :class:`ContraError` so callers
can catch library failures with a single ``except`` clause while still being
able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ContraError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class PolicyError(ContraError):
    """A policy expression is malformed or uses an unsupported construct."""


class PolicyParseError(PolicyError):
    """The textual policy could not be parsed."""

    def __init__(self, message: str, position: int | None = None, text: str | None = None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            snippet = text[max(0, position - 20):position + 20]
            message = f"{message} (at offset {position}: ...{snippet!r}...)"
        super().__init__(message)


class PolicyAnalysisError(PolicyError):
    """Static analysis of the policy failed (e.g. non-monotonic policy)."""


class TopologyError(ContraError):
    """The topology description is invalid or inconsistent."""


class CompilationError(ContraError):
    """The compiler could not generate device programs for the policy/topology."""


class VerificationError(CompilationError):
    """A compiled artifact disagrees with its symbolic source of truth.

    Raised by the lowered-table cross-checker when the dense int64 transition
    rows or the ForwardingShadow dimensions diverge from the symbolic
    ``probe_transition`` tables / interning maps they were lowered from.
    """


class SimulationError(ContraError):
    """The discrete-event simulator encountered an invalid state."""


class WorkloadError(ContraError):
    """A workload description or generator parameter is invalid."""


class ExperimentError(ContraError):
    """An experiment driver was configured inconsistently."""
