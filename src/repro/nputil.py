"""Optional numpy import shared by the array probe plane.

The vectorized probe path (ARCHITECTURE.md "array probe plane") is a pure
accelerator: every module that uses it imports ``np`` from here and falls back
to the scalar oracle when it is ``None``.  Keeping the import in one place
gives tests a single monkeypatch point per consumer module and keeps the
package importable on interpreters without numpy (the ``[fast]`` extra in
``pyproject.toml`` is optional by design).
"""

from __future__ import annotations

import math
from typing import Sequence

try:  # pragma: no cover - exercised by the no-numpy CI job
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

HAVE_NUMPY = np is not None

__all__ = ["np", "HAVE_NUMPY", "mean", "percentile_linear"]


def _pairwise_sum(values: Sequence[float], start: int, count: int) -> float:
    """numpy's pairwise summation, bit for bit.

    Mirrors ``pairwise_sum_DOUBLE`` in numpy's umath loops (naive below 8
    elements, an 8-accumulator unrolled block up to 128, halved recursion on
    a multiple-of-8 boundary above) so a summary computed without numpy is
    byte-identical to one computed with it — the float additions happen in
    exactly the same order and association.
    """
    if count < 8:
        total = 0.0
        for index in range(start, start + count):
            total += values[index]
        return total
    if count <= 128:
        acc = [values[start + lane] for lane in range(8)]
        index = start + 8
        end = start + count - (count % 8)
        while index < end:
            for lane in range(8):
                acc[lane] += values[index + lane]
            index += 8
        total = ((acc[0] + acc[1]) + (acc[2] + acc[3])) \
            + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
        for index in range(end, start + count):
            total += values[index]
        return total
    half = (count // 2) - ((count // 2) % 8)
    return _pairwise_sum(values, start, half) \
        + _pairwise_sum(values, start + half, count - half)


def mean(values: Sequence[float]) -> float:
    """``float(np.mean(values))`` with a bit-identical pure-Python fallback."""
    if not values:
        return float("nan")
    if np is not None:
        return float(np.mean(values))
    return _pairwise_sum(values, 0, len(values)) / len(values)


def percentile_linear(values: Sequence[float], percentile: float) -> float:
    """``float(np.percentile(values, q))`` (linear) with a bit-identical fallback.

    Replicates numpy's virtual-index arithmetic and its monotonic ``_lerp``
    (which switches to the ``b - (b - a) * (1 - t)`` form at ``t >= 0.5``) so
    the fallback interpolates in the same float operations.
    """
    if not values:
        return float("nan")
    if np is not None:
        return float(np.percentile(values, percentile))
    ordered = sorted(values)
    virtual = (percentile / 100.0) * (len(ordered) - 1)
    below = math.floor(virtual)
    above = math.ceil(virtual)
    a, b = ordered[below], ordered[above]
    t = virtual - below
    if t >= 0.5:
        return b - (b - a) * (1.0 - t)
    return a + (b - a) * t
