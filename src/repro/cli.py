"""Command-line interface.

``contra`` exposes the main library workflows without writing Python:

* ``contra compile`` — compile a policy for a topology and print compiler
  statistics (optionally dumping the generated P4-style programs);
* ``contra experiment`` — run one of the evaluation experiments and print the
  same table the corresponding benchmark regenerates;
* ``contra policies`` — list the built-in Figure 3 policies.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.core.compiler import compile_policy
from repro.core.parser import parse_policy
from repro.core.policies import ALL_POLICIES
from repro.experiments import report
from repro.experiments.ablations import (
    run_flowlet_timeout_ablation,
    run_probe_period_ablation,
    run_versioning_ablation,
)
from repro.experiments.config import config_from_env, default_config, quick_config
from repro.experiments.failure_recovery import run_failure_recovery
from repro.experiments.fct import run_abilene_fct, run_fattree_fct, run_queue_cdf
from repro.experiments.overhead import run_overhead_experiment
from repro.experiments.scalability import run_scalability_sweep
from repro.topology import (
    abilene,
    builtin_topologies,
    builtin_topology,
    fattree,
    from_edge_list_file,
    leafspine,
    random_network,
)

__all__ = ["main"]

_EXPERIMENTS = (
    "fig9-10", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "ablations",
)


def _build_topology(args: argparse.Namespace):
    name = args.topology
    if name == "fattree":
        return fattree(args.k)
    if name == "leafspine":
        return leafspine(args.k, args.k, hosts_per_leaf=2)
    if name == "abilene":
        return abilene()
    if name == "random":
        return random_network(args.size, seed=args.seed)
    if name in builtin_topologies():
        return builtin_topology(name, hosts_per_switch=1)
    path = Path(name)
    if path.exists():
        return from_edge_list_file(path)
    raise SystemExit(f"unknown topology {name!r}; builtin: fattree, leafspine, abilene, "
                     f"random, {builtin_topologies()}, or an edge-list file path")


def _cmd_policies(_args: argparse.Namespace) -> int:
    for key, factory in sorted(ALL_POLICIES.items()):
        policy = factory()
        print(f"{key:4s} {policy.name:28s} {policy}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    topology = _build_topology(args)
    if args.policy in ALL_POLICIES:
        policy = ALL_POLICIES[args.policy]()
    else:
        policy = parse_policy(args.policy)
    compiled = compile_policy(policy, topology)
    print(f"policy        : {compiled.policy}")
    print(f"topology      : {topology.name} ({len(topology.switches)} switches)")
    print(f"compile time  : {compiled.compile_time * 1000:.1f} ms")
    print(f"probe ids     : {compiled.num_probe_ids}")
    print(f"metrics       : {list(compiled.carried_attrs)}")
    print(f"product graph : {compiled.product_graph.num_nodes} nodes, "
          f"{compiled.product_graph.num_edges} edges, "
          f"max {compiled.product_graph.max_tags_per_switch()} tags/switch")
    print(f"probe period  : {compiled.probe_period:.3f} ms")
    print(f"switch state  : max {compiled.max_state_kb():.1f} kB")
    if args.emit_p4:
        from repro.core.p4gen import generate_all_p4
        out_dir = Path(args.emit_p4)
        out_dir.mkdir(parents=True, exist_ok=True)
        programs = generate_all_p4(compiled)
        for switch, program in programs.items():
            (out_dir / f"{switch}.p4").write_text(program.source)
        print(f"wrote {len(programs)} P4 programs to {out_dir}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    config = {"quick": quick_config(), "default": default_config()}.get(
        args.preset, config_from_env())
    name = args.name
    if name == "fig9-10":
        points = run_scalability_sweep(fattree_sizes=(20, 125), random_sizes=(100, 200))
        print(report.format_scalability(points))
    elif name == "fig11":
        print(report.format_fct(run_fattree_fct(config), "Figure 11: symmetric fat-tree FCT"))
    elif name == "fig12":
        print(report.format_fct(run_fattree_fct(config, asymmetric=True),
                                "Figure 12: asymmetric fat-tree FCT"))
    elif name == "fig13":
        print(report.format_queue_cdf(run_queue_cdf(config)))
    elif name == "fig14":
        print(report.format_recovery(run_failure_recovery(config)))
    elif name == "fig15":
        print(report.format_fct(run_abilene_fct(config), "Figure 15: Abilene FCT"))
    elif name == "fig16":
        print(report.format_overhead(run_overhead_experiment(config)))
    elif name == "ablations":
        print(report.format_ablation(run_probe_period_ablation(config), "Probe period ablation"))
        print()
        print(report.format_ablation(run_flowlet_timeout_ablation(config),
                                     "Flowlet timeout ablation"))
        print()
        print(report.format_ablation(run_versioning_ablation(config), "Versioning ablation"))
    else:
        raise SystemExit(f"unknown experiment {name!r}; available: {_EXPERIMENTS}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="contra",
        description="Contra (NSDI 2020) reproduction: compiler, simulator and experiments.")
    sub = parser.add_subparsers(dest="command", required=True)

    policies = sub.add_parser("policies", help="list the built-in Figure 3 policies")
    policies.set_defaults(func=_cmd_policies)

    compile_cmd = sub.add_parser("compile", help="compile a policy for a topology")
    compile_cmd.add_argument("policy", help="a policy key (P1..P9) or a minimize(...) expression")
    compile_cmd.add_argument("--topology", default="fattree",
                             help="fattree | leafspine | abilene | random | builtin name | edge-list file")
    compile_cmd.add_argument("--k", type=int, default=4, help="fat-tree arity / leaf-spine size")
    compile_cmd.add_argument("--size", type=int, default=50, help="random topology size")
    compile_cmd.add_argument("--seed", type=int, default=0)
    compile_cmd.add_argument("--emit-p4", metavar="DIR", default=None,
                             help="write the generated per-switch P4 programs to DIR")
    compile_cmd.set_defaults(func=_cmd_compile)

    experiment = sub.add_parser("experiment", help="run one evaluation experiment")
    experiment.add_argument("name", choices=_EXPERIMENTS)
    experiment.add_argument("--preset", choices=("quick", "default", "env"), default="quick")
    experiment.set_defaults(func=_cmd_experiment)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
