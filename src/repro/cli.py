"""Command-line interface.

``contra`` exposes the main library workflows without writing Python:

* ``contra compile`` — compile a policy for a topology and print compiler
  statistics (optionally dumping the generated P4-style programs);
* ``contra experiment`` — run one of the evaluation experiments and print the
  same table the corresponding benchmark regenerates;
* ``contra run-grid`` — run a named experiment scenario through the parallel
  grid runner (``--processes`` fans the (system × load × seed) points across
  cores) and optionally dump the results as JSON; ``--results-dir`` makes the
  run resumable (completed points are skipped on restart), ``--shard i/n``
  runs a deterministic 1/n slice for scale-out across machines or CI jobs,
  and ``--coordinate D [--workers N]`` drains the grid through the
  lease-based work-stealing coordinator — any number of invocations on any
  hosts sharing ``D`` converge to the same byte-identical report;
* ``contra sweep-status`` — progress view of a coordinated results
  directory: pending/leased/complete per locality group plus per-worker
  executed counts and idle time;
* ``contra race-check`` — re-run a grid scenario's points under seeded
  permutations of the non-contractual same-tick event orders (see
  ARCHITECTURE.md §6) and diff the summaries: any divergence is a hidden
  order dependence, reported with the provenance tags of the first schedule
  divergence;
* ``contra merge-results`` — union shard artifacts from a results directory
  into the exact report an unsharded run would have printed;
* ``contra gc-results`` — garbage-collect a long-lived results directory:
  drop records the scenario's current grid no longer defines and compact
  torn/duplicate shard files into one;
* ``contra check-policy`` — run the verification plane over a policy:
  semantic monotonicity/isotonicity with concrete counterexamples, and (with
  ``--topo``) product-graph dead-state analysis plus the lowered-table
  cross-check, rendered as text or dumped with ``--json``;
* ``contra policies`` — list the built-in Figure 3 policies.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.core.compiler import compile_policy
from repro.core.parser import parse_policy
from repro.core.policies import ALL_POLICIES, POLICY_ALIASES
from repro.exceptions import ExperimentError
from repro.experiments.config import config_from_env, default_config, full_config, quick_config
from repro.experiments.registry import (
    gc_scenario,
    merge_scenario,
    run_scenario,
    run_scenario_coordinated,
    run_scenario_shard,
    scenario_names,
    sweep_status_scenario,
)
from repro.experiments.results import ResultsStore, parse_shard
from repro.simulator.flow import TRANSPORT_MODES
from repro.topology import (
    abilene,
    builtin_topologies,
    builtin_topology,
    fattree,
    from_edge_list_file,
    leafspine,
    random_network,
)

__all__ = ["main"]


def _build_topology(args: argparse.Namespace):
    name = args.topology
    if name == "fattree":
        return fattree(args.k)
    if name == "leafspine":
        return leafspine(args.leaves or args.k, args.spines or args.k,
                         hosts_per_leaf=args.hosts_per_leaf)
    if name == "abilene":
        return abilene()
    if name == "random":
        return random_network(args.size, seed=args.seed)
    if name in builtin_topologies():
        return builtin_topology(name, hosts_per_switch=1)
    path = Path(name)
    if path.exists():
        return from_edge_list_file(path)
    raise SystemExit(f"unknown topology {name!r}; builtin: fattree, leafspine, abilene, "
                     f"random, {builtin_topologies()}, or an edge-list file path")


def _cmd_policies(_args: argparse.Namespace) -> int:
    for key, factory in sorted(ALL_POLICIES.items()):
        policy = factory()
        print(f"{key:4s} {policy.name:28s} {policy}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    topology = _build_topology(args)
    if args.policy in ALL_POLICIES:
        policy = ALL_POLICIES[args.policy]()
    else:
        policy = parse_policy(args.policy)
    compiled = compile_policy(policy, topology)
    print(f"policy        : {compiled.policy}")
    print(f"topology      : {topology.name} ({len(topology.switches)} switches)")
    print(f"compile time  : {compiled.compile_time * 1000:.1f} ms")
    print(f"probe ids     : {compiled.num_probe_ids}")
    print(f"metrics       : {list(compiled.carried_attrs)}")
    print(f"product graph : {compiled.product_graph.num_nodes} nodes, "
          f"{compiled.product_graph.num_edges} edges, "
          f"max {compiled.product_graph.max_tags_per_switch()} tags/switch")
    print(f"probe period  : {compiled.probe_period:.3f} ms")
    print(f"switch state  : max {compiled.max_state_kb():.1f} kB")
    if args.emit_p4:
        from repro.core.p4gen import generate_all_p4
        out_dir = Path(args.emit_p4)
        out_dir.mkdir(parents=True, exist_ok=True)
        programs = generate_all_p4(compiled)
        for switch, program in programs.items():
            (out_dir / f"{switch}.p4").write_text(program.source)
        print(f"wrote {len(programs)} P4 programs to {out_dir}")
    return 0


def _resolve_policy(text: str):
    """A policy key (P1..P9), paper alias (MU/WP/CA), or minimize(...) text."""
    if text in ALL_POLICIES or text in POLICY_ALIASES:
        from repro.core.policies import policy_by_name

        return policy_by_name(text)
    return parse_policy(text)


def _cmd_check_policy(args: argparse.Namespace) -> int:
    from repro.core.analysis import verify_policy

    if args.all:
        policies = sorted(ALL_POLICIES)
    elif args.policy is not None:
        policies = [args.policy]
    else:
        raise SystemExit("check-policy needs a policy (P1..P9, an alias, or a "
                         "minimize(...) expression) or --all")
    topology = _build_topology(args) if args.topology else None
    reports = []
    for name in policies:
        policy = _resolve_policy(name)
        report = verify_policy(policy, topology)
        reports.append(report)
        print(report.render())
    if args.json is not None:
        path = Path(args.json)
        payload = [r.to_json_dict() for r in reports]
        path.write_text(json.dumps(payload[0] if len(payload) == 1 else payload,
                                   indent=2, sort_keys=True, default=str) + "\n")
        print(f"wrote {path}")
    return 0 if all(r.ok for r in reports) else 1


def _resolve_config(preset: str):
    return {
        "quick": quick_config,
        "default": default_config,
        "full": full_config,
    }.get(preset, config_from_env)()


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        outcome = run_scenario(args.name, _resolve_config(args.preset))
    except KeyError as error:
        raise SystemExit(str(error))
    print(outcome.text)
    return 0


def _grid_config(args: argparse.Namespace):
    """Resolve the preset + --transport override shared by run-grid/merge."""
    config = _resolve_config(args.preset)
    if getattr(args, "transport", None) is not None:
        if args.name == "transport-sensitivity":
            # That scenario grids every transport mode by design; silently
            # ignoring the override would contradict what the user asked for.
            raise SystemExit(
                "--transport has no effect on 'transport-sensitivity' (the "
                "scenario sweeps every transport mode); run another scenario "
                "to use a single mode")
        config = replace(config, transport=args.transport)
    return config


def _write_outcome_json(path_text: str, outcome, preset: str,
                        processes: Optional[int]) -> None:
    path = Path(path_text)
    path.write_text(json.dumps({
        "scenario": outcome.name,
        "preset": preset,
        "processes": processes,
        "results": outcome.payload,
    }, indent=2, sort_keys=True, default=str) + "\n")
    print(f"wrote {path}")


def _cmd_run_grid(args: argparse.Namespace) -> int:
    config = _grid_config(args)
    if args.sanitize:
        # Through the environment rather than a parameter: worker processes
        # inherit it, and spec hashes stay untouched (sanitizing never
        # re-keys a results store).
        os.environ["CONTRA_SANITIZE"] = "1"
    if args.workers is not None and args.coordinate is None:
        raise SystemExit("--workers only applies to --coordinate runs")
    shard = None
    if args.shard is not None:
        try:
            shard = parse_shard(args.shard)
        except ExperimentError as error:
            raise SystemExit(str(error))
        if args.results_dir is None:
            raise SystemExit("--shard requires --results-dir (the shards "
                             "rendezvous through the results store)")
    # Non-grid scenarios with --results-dir/--shard are rejected by the
    # registry itself (one authoritative check + message), surfaced below
    # as SystemExit before any simulation runs.
    if args.json is not None and not Path(args.json).parent.is_dir():
        # Fail before the experiment runs, not after minutes of simulation.
        raise SystemExit(f"--json: directory {Path(args.json).parent} does not exist")

    if args.coordinate is not None:
        # The coordinator owns its store, worker fan-out and claim order;
        # reject the knobs it would silently ignore rather than half-honour
        # them (house rule: an ignored flag contradicts what was asked).
        if shard is not None:
            raise SystemExit("--coordinate and --shard are mutually exclusive "
                             "(leases assign work dynamically; shards statically)")
        if args.results_dir is not None:
            raise SystemExit("--coordinate D names the results directory "
                             "itself; drop --results-dir")
        if args.processes is not None:
            raise SystemExit("--coordinate runs one drain process per "
                             "--workers; use --workers N, not --processes")
        try:
            coordinated = run_scenario_coordinated(
                args.name, config, args.coordinate,
                workers=args.workers if args.workers is not None else 1,
                flow_model=args.flow_model)
        except (KeyError, ExperimentError) as error:
            raise SystemExit(str(error))
        print(coordinated.text)
        print(coordinated.outcome.text)
        if args.json is not None:
            # Matches an unsharded default run byte for byte, like merge.
            _write_outcome_json(args.json, coordinated.outcome, args.preset, None)
        return 0

    if shard is not None:
        # Every --shard run (including 0/1) takes the shard path, so each
        # writes its meta record and merge-results accounting stays uniform.
        if args.json is not None:
            raise SystemExit(
                "--json needs the full grid; run `contra merge-results` once "
                "every shard has completed")
        try:
            outcome = run_scenario_shard(args.name, config, args.results_dir,
                                         shard_index=shard[0], shard_count=shard[1],
                                         processes=args.processes,
                                         flow_model=args.flow_model)
        except (KeyError, ExperimentError) as error:
            raise SystemExit(str(error))
        print(outcome.text)
        return 0

    try:
        outcome = run_scenario(args.name, config, processes=args.processes,
                               results_dir=args.results_dir,
                               flow_model=args.flow_model)
    except (KeyError, ExperimentError) as error:
        raise SystemExit(str(error))
    print(outcome.text)
    if args.json is not None:
        _write_outcome_json(args.json, outcome, args.preset, args.processes)
    return 0


def _cmd_race_check(args: argparse.Namespace) -> int:
    from repro.experiments.race import race_check

    if args.json is not None and not Path(args.json).parent.is_dir():
        raise SystemExit(f"--json: directory {Path(args.json).parent} does not exist")
    try:
        report = race_check(args.name, _resolve_config(args.preset),
                            seeds=args.seeds, points=args.points)
    except ExperimentError as error:
        raise SystemExit(str(error))
    print(report.render())
    if args.json is not None:
        path = Path(args.json)
        path.write_text(json.dumps(report.to_json_dict(), indent=2,
                                   sort_keys=True, default=str) + "\n")
        print(f"wrote {path}")
    return 0 if report.ok else 1


def _cmd_merge_results(args: argparse.Namespace) -> int:
    config = _grid_config(args)
    if not Path(args.results_dir).is_dir():
        raise SystemExit(f"--results-dir: {args.results_dir} does not exist")
    if args.json is not None and not Path(args.json).parent.is_dir():
        raise SystemExit(f"--json: directory {Path(args.json).parent} does not exist")
    try:
        outcome = merge_scenario(args.name, config, args.results_dir,
                                 flow_model=args.flow_model)
    except (KeyError, ExperimentError) as error:
        raise SystemExit(str(error))
    # A merge *can* succeed while a coordinated drain still holds leases
    # (every point complete, releases pending) — warn so a mid-drain merge
    # is an explicit choice, but don't fail: the merged grid is complete.
    from repro.experiments.coordinator import live_leases

    leases = [lease for lease in live_leases(args.results_dir)
              if not lease.stale]
    if leases:
        print(f"warning: {len(leases)} live lease(s) remain in "
              f"{args.results_dir} (a coordinated drain may still be "
              f"running); the merged report covers the full grid",
              file=sys.stderr)
    print(outcome.text)
    if args.json is not None:
        # "processes": None matches an unsharded default run, so the merged
        # JSON file is byte-identical to `contra run-grid <name> --json`.
        _write_outcome_json(args.json, outcome, args.preset, None)
    if args.bench_artifact is not None:
        # wall_s sums the per-point wall-clock carried by every store record:
        # each record is one actual execution, so interrupted runs, resumes
        # and re-executed points are all accounted exactly — no reliance on
        # shard metas, which an interrupted run never writes.
        store = ResultsStore(args.results_dir)
        wall_s = store.total_wall_s()
        if wall_s <= 0:
            raise SystemExit(
                f"--bench-artifact: no per-point wall-clock records under "
                f"{args.results_dir}; the store was not produced by a "
                f"sharded/resumable run of this tree")
        shard_files = len(list(store.directory.glob("results-*.jsonl")))
        path = Path(args.bench_artifact)
        path.write_text(json.dumps({
            "benchmark": f"{args.name}_sharded",
            "wall_s": round(wall_s, 4),
            "preset": args.preset,
            "shards": shard_files,
        }, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path} (total compute {wall_s:.1f} s "
              f"across {shard_files} shard file(s))")
    return 0


def _cmd_gc_results(args: argparse.Namespace) -> int:
    config = _grid_config(args)
    if not Path(args.results_dir).is_dir():
        raise SystemExit(f"--results-dir: {args.results_dir} does not exist")
    try:
        summary = gc_scenario(args.name, config, args.results_dir,
                              flow_model=args.flow_model)
    except (KeyError, ExperimentError) as error:
        raise SystemExit(str(error))
    print(f"{args.name}: kept {summary['kept']} of {summary['total_records']} "
          f"records ({summary['dropped_stale']} stale, "
          f"{summary['dropped_duplicates']} duplicate(s) dropped); "
          f"{summary['missing']} grid point(s) still missing")
    if summary["leases_removed"] or summary["leases_live"]:
        print(f"leases: {summary['leases_removed']} orphaned/stale removed, "
              f"{summary['leases_live']} live lease(s) left in place")
    return 0


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    config = _grid_config(args)
    if not Path(args.results_dir).is_dir():
        raise SystemExit(f"--results-dir: {args.results_dir} does not exist")
    try:
        status = sweep_status_scenario(args.name, config, args.results_dir,
                                       flow_model=args.flow_model)
    except (KeyError, ExperimentError) as error:
        raise SystemExit(str(error))
    print(f"{args.name}: {status.render()}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="contra",
        description="Contra (NSDI 2020) reproduction: compiler, simulator and experiments.")
    sub = parser.add_subparsers(dest="command", required=True)

    policies = sub.add_parser("policies", help="list the built-in Figure 3 policies")
    policies.set_defaults(func=_cmd_policies)

    compile_cmd = sub.add_parser("compile", help="compile a policy for a topology")
    compile_cmd.add_argument("policy", help="a policy key (P1..P9) or a minimize(...) expression")
    compile_cmd.add_argument("--topology", default="fattree",
                             help="fattree | leafspine | abilene | random | builtin name | edge-list file")
    compile_cmd.add_argument("--k", type=int, default=4, help="fat-tree arity / leaf-spine size")
    compile_cmd.add_argument("--leaves", type=int, default=0,
                             help="leaf-spine leaf count (default: --k)")
    compile_cmd.add_argument("--spines", type=int, default=0,
                             help="leaf-spine spine count (default: --k)")
    compile_cmd.add_argument("--hosts-per-leaf", type=int, default=2,
                             help="hosts attached to each leaf switch")
    compile_cmd.add_argument("--size", type=int, default=50, help="random topology size")
    compile_cmd.add_argument("--seed", type=int, default=0)
    compile_cmd.add_argument("--emit-p4", metavar="DIR", default=None,
                             help="write the generated per-switch P4 programs to DIR")
    compile_cmd.set_defaults(func=_cmd_compile)

    check = sub.add_parser(
        "check-policy",
        help="verify a policy: semantic monotonicity/isotonicity with concrete "
             "counterexamples, plus (with --topo) product-graph dead-state "
             "analysis and the lowered-table cross-check")
    check.add_argument("policy", nargs="?", default=None,
                       help="a policy key (P1..P9), a paper alias (MU/WP/CA), "
                            "or a minimize(...) expression")
    check.add_argument("--all", action="store_true",
                       help="check every bundled policy (P1..P9)")
    check.add_argument("--topo", dest="topology", default=None, metavar="NAME",
                       help="also analyze against a topology: fattree | "
                            "leafspine | abilene | random | builtin name | "
                            "edge-list file")
    check.add_argument("--k", type=int, default=4, help="fat-tree arity / leaf-spine size")
    check.add_argument("--leaves", type=int, default=0,
                       help="leaf-spine leaf count (default: --k)")
    check.add_argument("--spines", type=int, default=0,
                       help="leaf-spine spine count (default: --k)")
    check.add_argument("--hosts-per-leaf", type=int, default=2,
                       help="hosts attached to each leaf switch")
    check.add_argument("--size", type=int, default=50, help="random topology size")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--json", metavar="PATH", default=None,
                       help="also dump the verification report(s) as JSON to PATH")
    check.set_defaults(func=_cmd_check_policy)

    experiment = sub.add_parser("experiment", help="run one evaluation experiment")
    experiment.add_argument("name", choices=tuple(scenario_names()))
    experiment.add_argument("--preset", choices=("quick", "default", "full", "env"),
                            default="quick")
    experiment.set_defaults(func=_cmd_experiment)

    run_grid = sub.add_parser(
        "run-grid",
        help="run a named scenario through the parallel grid runner")
    run_grid.add_argument("name", choices=tuple(scenario_names()))
    run_grid.add_argument("--preset", choices=("quick", "default", "full", "env"),
                          default="quick")
    run_grid.add_argument("--processes", type=int, default=None,
                          help="worker processes (default: $CONTRA_PROCS or serial; "
                               "0 = one per core)")
    run_grid.add_argument("--transport", choices=TRANSPORT_MODES, default=None,
                          help="host transport mode override: fixed (full window "
                               "at flow start, the default), slowstart (slow start "
                               "+ AIMD + fast retransmit) or paced (slowstart + "
                               "per-RTT pacing)")
    run_grid.add_argument("--flow-model", choices=("packet", "fluid"), default=None,
                          help="data path for every grid point: packet (per-packet "
                               "events, the default) or fluid (epoch-driven "
                               "max-min rate allocation; scenarios that pin a "
                               "flow model per point reject the override)")
    run_grid.add_argument("--json", metavar="PATH", default=None,
                          help="also dump the scenario results as JSON to PATH")
    run_grid.add_argument("--results-dir", metavar="DIR", default=None,
                          help="persistent results store: completed grid points "
                               "are recorded as JSONL keyed by spec hash, and "
                               "reruns skip points already in the store")
    run_grid.add_argument("--shard", metavar="I/N", default=None,
                          help="run only a deterministic 1/N slice of the grid "
                               "(round-robin by spec index) into --results-dir; "
                               "union the shards with `contra merge-results`")
    run_grid.add_argument("--coordinate", metavar="DIR", default=None,
                          help="drain the grid through the lease-based sweep "
                               "coordinator sharing DIR as the results store; "
                               "any number of invocations on any hosts pointed "
                               "at the same DIR converge to the full grid")
    run_grid.add_argument("--workers", type=int, default=None,
                          help="local drain processes for --coordinate "
                               "(default 1)")
    run_grid.add_argument("--sanitize", action="store_true",
                          help="run every point under the runtime sanitizer "
                               "plane (invariant checks + event provenance; "
                               "summaries are identical, violations abort)")
    run_grid.set_defaults(func=_cmd_run_grid)

    race = sub.add_parser(
        "race-check",
        help="re-run grid points under seeded permutations of "
             "non-contractual same-tick event orders and diff the summaries "
             "(a divergence is a hidden order dependence)")
    race.add_argument("name", choices=tuple(scenario_names()))
    race.add_argument("--seeds", type=int, default=2,
                      help="permutation seeds per grid point (default 2)")
    race.add_argument("--points", type=int, default=None,
                      help="check only the first N grid points (default: all)")
    race.add_argument("--preset", choices=("quick", "default", "full", "env"),
                      default="quick")
    race.add_argument("--json", metavar="PATH", default=None,
                      help="also dump the race report as JSON to PATH")
    race.set_defaults(func=_cmd_race_check)

    merge = sub.add_parser(
        "merge-results",
        help="union shard artifacts into the exact unsharded scenario report")
    merge.add_argument("name", choices=tuple(scenario_names()))
    merge.add_argument("--results-dir", metavar="DIR", required=True,
                       help="the results store directory every shard ran against")
    merge.add_argument("--preset", choices=("quick", "default", "full", "env"),
                       default="quick",
                       help="must match the preset the shards ran with (the "
                            "grid is rebuilt from it to key the lookups)")
    merge.add_argument("--transport", choices=TRANSPORT_MODES, default=None,
                       help="must match the --transport the shards ran with")
    merge.add_argument("--flow-model", choices=("packet", "fluid"), default=None,
                       help="must match the --flow-model the shards ran with")
    merge.add_argument("--json", metavar="PATH", default=None,
                       help="also dump the merged results as JSON to PATH")
    merge.add_argument("--bench-artifact", metavar="PATH", default=None,
                       help="write a BENCH-style wall-clock artifact summing "
                            "the per-point compute records in the store "
                            "(for bench_diff tracking)")
    merge.set_defaults(func=_cmd_merge_results)

    gc = sub.add_parser(
        "gc-results",
        help="drop stale records and compact shard files in a results store")
    gc.add_argument("name", choices=tuple(scenario_names()))
    gc.add_argument("--results-dir", metavar="DIR", required=True,
                    help="the results store directory to garbage-collect")
    gc.add_argument("--preset", choices=("quick", "default", "full", "env"),
                    default="quick",
                    help="the preset defining the scenario's *current* grid; "
                         "records keyed outside it are dropped")
    gc.add_argument("--transport", choices=TRANSPORT_MODES, default=None,
                    help="must match the --transport the kept shards ran with")
    gc.add_argument("--flow-model", choices=("packet", "fluid"), default=None,
                    help="must match the --flow-model the kept shards ran with")
    gc.set_defaults(func=_cmd_gc_results)

    status = sub.add_parser(
        "sweep-status",
        help="progress view of a coordinated results directory: "
             "pending/leased/complete per locality group, plus per-worker "
             "executed counts and idle time")
    status.add_argument("name", choices=tuple(scenario_names()))
    status.add_argument("--results-dir", metavar="DIR", required=True,
                        help="the results store directory the drain runs against")
    status.add_argument("--preset", choices=("quick", "default", "full", "env"),
                        default="quick",
                        help="must match the preset the drain runs with (the "
                             "grid is rebuilt from it to key the lookups)")
    status.add_argument("--transport", choices=TRANSPORT_MODES, default=None,
                        help="must match the --transport the drain runs with")
    status.add_argument("--flow-model", choices=("packet", "fluid"), default=None,
                        help="must match the --flow-model the drain runs with")
    status.set_defaults(func=_cmd_sweep_status)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
