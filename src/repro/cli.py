"""Command-line interface.

``contra`` exposes the main library workflows without writing Python:

* ``contra compile`` — compile a policy for a topology and print compiler
  statistics (optionally dumping the generated P4-style programs);
* ``contra experiment`` — run one of the evaluation experiments and print the
  same table the corresponding benchmark regenerates;
* ``contra run-grid`` — run a named experiment scenario through the parallel
  grid runner (``--processes`` fans the (system × load × seed) points across
  cores) and optionally dump the results as JSON;
* ``contra policies`` — list the built-in Figure 3 policies.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from pathlib import Path
from typing import List, Optional

from repro.core.compiler import compile_policy
from repro.core.parser import parse_policy
from repro.core.policies import ALL_POLICIES
from repro.experiments.config import config_from_env, default_config, full_config, quick_config
from repro.experiments.registry import run_scenario, scenario_names
from repro.simulator.flow import TRANSPORT_MODES
from repro.topology import (
    abilene,
    builtin_topologies,
    builtin_topology,
    fattree,
    from_edge_list_file,
    leafspine,
    random_network,
)

__all__ = ["main"]


def _build_topology(args: argparse.Namespace):
    name = args.topology
    if name == "fattree":
        return fattree(args.k)
    if name == "leafspine":
        return leafspine(args.leaves or args.k, args.spines or args.k,
                         hosts_per_leaf=args.hosts_per_leaf)
    if name == "abilene":
        return abilene()
    if name == "random":
        return random_network(args.size, seed=args.seed)
    if name in builtin_topologies():
        return builtin_topology(name, hosts_per_switch=1)
    path = Path(name)
    if path.exists():
        return from_edge_list_file(path)
    raise SystemExit(f"unknown topology {name!r}; builtin: fattree, leafspine, abilene, "
                     f"random, {builtin_topologies()}, or an edge-list file path")


def _cmd_policies(_args: argparse.Namespace) -> int:
    for key, factory in sorted(ALL_POLICIES.items()):
        policy = factory()
        print(f"{key:4s} {policy.name:28s} {policy}")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    topology = _build_topology(args)
    if args.policy in ALL_POLICIES:
        policy = ALL_POLICIES[args.policy]()
    else:
        policy = parse_policy(args.policy)
    compiled = compile_policy(policy, topology)
    print(f"policy        : {compiled.policy}")
    print(f"topology      : {topology.name} ({len(topology.switches)} switches)")
    print(f"compile time  : {compiled.compile_time * 1000:.1f} ms")
    print(f"probe ids     : {compiled.num_probe_ids}")
    print(f"metrics       : {list(compiled.carried_attrs)}")
    print(f"product graph : {compiled.product_graph.num_nodes} nodes, "
          f"{compiled.product_graph.num_edges} edges, "
          f"max {compiled.product_graph.max_tags_per_switch()} tags/switch")
    print(f"probe period  : {compiled.probe_period:.3f} ms")
    print(f"switch state  : max {compiled.max_state_kb():.1f} kB")
    if args.emit_p4:
        from repro.core.p4gen import generate_all_p4
        out_dir = Path(args.emit_p4)
        out_dir.mkdir(parents=True, exist_ok=True)
        programs = generate_all_p4(compiled)
        for switch, program in programs.items():
            (out_dir / f"{switch}.p4").write_text(program.source)
        print(f"wrote {len(programs)} P4 programs to {out_dir}")
    return 0


def _resolve_config(preset: str):
    return {
        "quick": quick_config,
        "default": default_config,
        "full": full_config,
    }.get(preset, config_from_env)()


def _cmd_experiment(args: argparse.Namespace) -> int:
    try:
        outcome = run_scenario(args.name, _resolve_config(args.preset))
    except KeyError as error:
        raise SystemExit(str(error))
    print(outcome.text)
    return 0


def _cmd_run_grid(args: argparse.Namespace) -> int:
    config = _resolve_config(args.preset)
    if getattr(args, "transport", None) is not None:
        if args.name == "transport-sensitivity":
            # That scenario grids every transport mode by design; silently
            # ignoring the override would contradict what the user asked for.
            raise SystemExit(
                "--transport has no effect on 'transport-sensitivity' (the "
                "scenario sweeps every transport mode); run another scenario "
                "to use a single mode")
        config = replace(config, transport=args.transport)
    if args.json is not None and not Path(args.json).parent.is_dir():
        # Fail before the experiment runs, not after minutes of simulation.
        raise SystemExit(f"--json: directory {Path(args.json).parent} does not exist")
    try:
        outcome = run_scenario(args.name, config, processes=args.processes)
    except KeyError as error:
        raise SystemExit(str(error))
    print(outcome.text)
    if args.json is not None:
        path = Path(args.json)
        path.write_text(json.dumps({
            "scenario": outcome.name,
            "preset": args.preset,
            "processes": args.processes,
            "results": outcome.payload,
        }, indent=2, sort_keys=True, default=str) + "\n")
        print(f"wrote {path}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="contra",
        description="Contra (NSDI 2020) reproduction: compiler, simulator and experiments.")
    sub = parser.add_subparsers(dest="command", required=True)

    policies = sub.add_parser("policies", help="list the built-in Figure 3 policies")
    policies.set_defaults(func=_cmd_policies)

    compile_cmd = sub.add_parser("compile", help="compile a policy for a topology")
    compile_cmd.add_argument("policy", help="a policy key (P1..P9) or a minimize(...) expression")
    compile_cmd.add_argument("--topology", default="fattree",
                             help="fattree | leafspine | abilene | random | builtin name | edge-list file")
    compile_cmd.add_argument("--k", type=int, default=4, help="fat-tree arity / leaf-spine size")
    compile_cmd.add_argument("--leaves", type=int, default=0,
                             help="leaf-spine leaf count (default: --k)")
    compile_cmd.add_argument("--spines", type=int, default=0,
                             help="leaf-spine spine count (default: --k)")
    compile_cmd.add_argument("--hosts-per-leaf", type=int, default=2,
                             help="hosts attached to each leaf switch")
    compile_cmd.add_argument("--size", type=int, default=50, help="random topology size")
    compile_cmd.add_argument("--seed", type=int, default=0)
    compile_cmd.add_argument("--emit-p4", metavar="DIR", default=None,
                             help="write the generated per-switch P4 programs to DIR")
    compile_cmd.set_defaults(func=_cmd_compile)

    experiment = sub.add_parser("experiment", help="run one evaluation experiment")
    experiment.add_argument("name", choices=tuple(scenario_names()))
    experiment.add_argument("--preset", choices=("quick", "default", "full", "env"),
                            default="quick")
    experiment.set_defaults(func=_cmd_experiment)

    run_grid = sub.add_parser(
        "run-grid",
        help="run a named scenario through the parallel grid runner")
    run_grid.add_argument("name", choices=tuple(scenario_names()))
    run_grid.add_argument("--preset", choices=("quick", "default", "full", "env"),
                          default="quick")
    run_grid.add_argument("--processes", type=int, default=None,
                          help="worker processes (default: $CONTRA_PROCS or serial; "
                               "0 = one per core)")
    run_grid.add_argument("--transport", choices=TRANSPORT_MODES, default=None,
                          help="host transport mode override: fixed (full window "
                               "at flow start, the default), slowstart (slow start "
                               "+ AIMD + fast retransmit) or paced (slowstart + "
                               "per-RTT pacing)")
    run_grid.add_argument("--json", metavar="PATH", default=None,
                          help="also dump the scenario results as JSON to PATH")
    run_grid.set_defaults(func=_cmd_run_grid)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
