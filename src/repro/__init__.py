"""Contra: a programmable system for performance-aware routing (NSDI 2020).

A Python reproduction of the full system: the policy language and compiler
(:mod:`repro.core`), the topology and discrete-event simulation substrates
(:mod:`repro.topology`, :mod:`repro.simulator`), the Contra data-plane runtime
(:mod:`repro.protocol`), the baseline systems (:mod:`repro.baselines`), the
workload generators (:mod:`repro.workloads`) and the evaluation experiments
(:mod:`repro.experiments`).

Quickstart::

    from repro import compile_policy, parse_policy
    from repro.topology import leafspine
    from repro.protocol import ContraSystem

    policy = parse_policy("minimize( if leaf0 .* then path.util else path.lat )")
    topo = leafspine(leaves=2, spines=2, hosts_per_leaf=2)
    compiled = compile_policy(policy, topo)
    system = ContraSystem(compiled)
"""

from repro.core import (
    CompiledPolicy,
    CompileOptions,
    Policy,
    Rank,
    compile_policy,
    minimize,
    parse_policy,
)
from repro.exceptions import (
    CompilationError,
    ContraError,
    PolicyError,
    SimulationError,
    TopologyError,
    WorkloadError,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    "Policy",
    "Rank",
    "CompiledPolicy",
    "CompileOptions",
    "compile_policy",
    "parse_policy",
    "minimize",
    "ContraError",
    "PolicyError",
    "TopologyError",
    "CompilationError",
    "SimulationError",
    "WorkloadError",
]
