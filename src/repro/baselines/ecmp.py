"""ECMP and single shortest-path baselines.

ECMP hashes each flow onto one of the equal-cost shortest-path next hops,
irrespective of network load — the classic static load balancer Contra and
Hula are compared against in Figures 11/12.  :class:`ShortestPathSystem` is
the even simpler "SP" baseline used on Abilene (Figure 15): a single,
deterministic shortest path per destination.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.protocol.tables import packet_flow_hash
from repro.simulator.network import Network, RoutingSystem
from repro.simulator.packet import Packet
from repro.simulator.switchnode import RoutingLogic

__all__ = ["EcmpSystem", "ShortestPathSystem", "next_hop_table"]


def next_hop_table(topology, all_hops: bool) -> Dict[str, Dict[str, List[str]]]:
    """For every switch, the shortest-path next hops towards every other switch.

    ``all_hops`` keeps every equal-cost next hop (ECMP); otherwise only the
    lexicographically first one (single shortest path).  Takes a bare
    :class:`~repro.topology.graph.Topology` so both the packet systems and
    the fluid path models (:mod:`repro.simulator.fluid`) share one table
    computation.
    """
    table: Dict[str, Dict[str, List[str]]] = {s: {} for s in topology.switches}
    lengths = topology.shortest_path_lengths()
    for src in topology.switches:
        for dst in topology.switches:
            if src == dst or dst not in lengths[src]:
                continue
            hops = [
                nbr for nbr in topology.switch_neighbors(src)
                if dst in lengths[nbr] and lengths[nbr][dst] + 1 == lengths[src][dst]
            ]
            hops.sort()
            if not hops:
                continue
            table[src][dst] = hops if all_hops else hops[:1]
    return table


class _HashingLogic(RoutingLogic):
    """Forward by hashing the flow onto the precomputed next-hop set."""

    def __init__(self, system: "EcmpSystem"):
        self.system = system
        self._rows: Optional[Dict[str, List[str]]] = None

    def on_data_packet(self, packet: Packet, inport: str) -> Optional[str]:
        rows = self._rows
        if rows is None:  # the table is computed in prepare(), after wiring
            rows = self._rows = self.system._table.get(self.switch.name, {})
        hops = rows.get(packet.dst_switch)
        if not hops:
            return None
        # Fast path: hash across the full hop set; only when the chosen link
        # is down re-hash across the live subset (identical to hashing the
        # live subset directly whenever nothing has failed).
        choice = hops[packet_flow_hash(packet) % len(hops)]
        ports = self.switch.ports
        link = ports.get(choice)
        if link is not None and not link.failed:
            return choice
        usable = [h for h in hops if h in ports and not ports[h].failed]
        if not usable:
            return None
        return usable[packet_flow_hash(packet) % len(usable)]


class EcmpSystem(RoutingSystem):
    """Equal-cost multipath over shortest paths (load-oblivious)."""

    name = "ecmp"
    _all_hops = True

    def __init__(self) -> None:
        self._table: Dict[str, Dict[str, List[str]]] = {}

    def prepare(self, network: Network) -> None:
        self._table = next_hop_table(network.topology, all_hops=self._all_hops)

    def create_switch_logic(self, switch: str) -> RoutingLogic:
        return _HashingLogic(self)

    def next_hops(self, switch: str, destination: str) -> List[str]:
        return self._table.get(switch, {}).get(destination, [])


class ShortestPathSystem(EcmpSystem):
    """Single shortest path per destination (the "SP" baseline of Figure 15)."""

    name = "shortest-path"
    _all_hops = False
