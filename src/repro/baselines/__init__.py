"""Baseline routing systems the paper compares against."""

from repro.baselines.ecmp import EcmpSystem, ShortestPathSystem
from repro.baselines.hula import HulaRouting, HulaSystem
from repro.baselines.spain import SpainRouting, SpainSystem, compute_spain_paths

__all__ = [
    "EcmpSystem",
    "ShortestPathSystem",
    "HulaSystem",
    "HulaRouting",
    "SpainSystem",
    "SpainRouting",
    "compute_spain_paths",
]
