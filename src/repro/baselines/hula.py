"""Hula baseline (Katta et al., SOSR 2016).

Hula is the state-of-the-art hand-crafted comparison point in Figures 11/12/14:
utilization-aware load balancing over the *shortest* paths of a datacenter
topology, implemented entirely in the data plane with periodic probes and
flowlet switching.

The implementation here follows the published design:

* every ToR (a switch with attached hosts) periodically originates probes
  carrying the bottleneck (max) utilization seen so far;
* probes are flooded along the shortest-path DAG away from the origin — on a
  Fat-tree this is exactly Hula's "up then down" multicast, and the same rule
  generalises the baseline to any topology where it is given shortest paths
  a priori (the paper notes this static knowledge is precisely what Hula has
  and Contra must discover);
* each switch keeps, per destination ToR, the best next hop and its path
  utilization, refreshed by versioned probes;
* data packets are forwarded with flowlet switching on the best next hop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.protocol.tables import FlowletTable, packet_flow_hash
from repro.simulator.network import Network, RoutingSystem
from repro.simulator.packet import BASE_PROBE_BYTES, Packet, PacketKind
from repro.simulator.switchnode import RoutingLogic

__all__ = ["HulaSystem", "HulaRouting"]

#: Hula probe payload: origin ToR id + version + utilization.
_HULA_PROBE_BYTES = BASE_PROBE_BYTES + 8


@dataclass(slots=True)
class _BestHop:
    next_hop: str
    utilization: float
    version: int
    updated_at: float


class HulaSystem(RoutingSystem):
    """Hula: utilization-aware load balancing over shortest paths."""

    name = "hula"

    def __init__(
        self,
        probe_period: float = 0.25,
        flowlet_timeout: float = 0.2,
        failure_periods: int = 3,
    ):
        self.probe_period = probe_period
        self.flowlet_timeout = flowlet_timeout
        self.failure_periods = failure_periods
        self._logics: Dict[str, "HulaRouting"] = {}
        #: hop distance between every pair of switches (static shortest paths).
        self.distances: Dict[str, Dict[str, float]] = {}

    def prepare(self, network: Network) -> None:
        self.distances = network.topology.shortest_path_lengths()

    def create_switch_logic(self, switch: str) -> RoutingLogic:
        logic = HulaRouting(self, switch)
        self._logics[switch] = logic
        return logic

    def start(self, network: Network) -> None:
        # One recurring engine event coalesces every per-switch round of a
        # probe period (and one more the failure checks); see ContraSystem.
        origins = [self._logics[switch] for switch in network.destination_switches()]
        if origins:
            network.sim.schedule_periodic(self.probe_period, self._probe_all, origins)
        logics = list(self._logics.values())
        if logics:
            network.sim.schedule_periodic(
                self.probe_period, self._failure_check_all, logics,
                start_delay=self.probe_period * self.failure_periods)

    #: Same-tick rounds the race detector may permute; see ContraSystem.
    commutable_rounds = ("_probe_all", "_failure_check_all")

    @staticmethod
    def _probe_all(origins: List["HulaRouting"]) -> None:
        for logic in origins:
            logic.probe_round()

    def _failure_check_all(self, logics: List["HulaRouting"]) -> None:
        # Mutually independent per-switch checks; order is undocumented and
        # shuffled by the race detector when installed (see ContraSystem).
        rng = self.race_rng
        if rng is not None:
            logics = list(logics)
            rng.shuffle(logics)
        for logic in logics:
            logic.failure_check()

    def logic(self, switch: str) -> "HulaRouting":
        return self._logics[switch]


class HulaRouting(RoutingLogic):
    """Per-switch Hula logic."""

    def __init__(self, system: HulaSystem, name: str):
        self.system = system
        self.name = name
        self.best: Dict[str, _BestHop] = {}
        self.flowlets = FlowletTable(system.flowlet_timeout)
        self._version = 0
        self._last_probe_from: Dict[str, float] = {}
        self._believed_failed: Dict[str, bool] = {}

    # --------------------------------------------------------------- lifecycle

    def attach(self, switch, network) -> None:
        super().attach(switch, network)
        for neighbor in switch.switch_neighbors():
            self._last_probe_from[neighbor] = 0.0
            self._believed_failed[neighbor] = False

    def start_probing(self) -> None:
        self.network.sim.schedule_periodic(self.system.probe_period, self.probe_round)

    def start_failure_detection(self) -> None:
        period = self.system.probe_period
        self.network.sim.schedule_periodic(
            period, self.failure_check,
            start_delay=period * self.system.failure_periods)

    # ------------------------------------------------------------------ probes

    def probe_round(self) -> None:
        self._version += 1
        for neighbor in self._downstream_neighbors(self.name, origin=self.name):
            self._send_probe(neighbor, origin=self.name, version=self._version, util=0.0)

    def _downstream_neighbors(self, switch: str, origin: str) -> List[str]:
        """Neighbours strictly farther from ``origin`` (the shortest-path DAG)."""
        distances = self.system.distances
        here = distances.get(origin, {}).get(switch)
        if here is None:
            return []
        result = []
        for neighbor in self.network.switches[switch].switch_neighbors():
            there = distances.get(origin, {}).get(neighbor)
            if there is not None and there > here:
                result.append(neighbor)
        return result

    def _send_probe(self, neighbor: str, origin: str, version: int, util: float) -> None:
        # Believed-failed neighbours still get probes: the failed link drops
        # them, and the first probe through the recovered link is what clears
        # the far side's failure belief (recovery detection mirrors failure
        # detection — both work purely by probe arrival/silence).
        packet = Packet(
            kind=PacketKind.PROBE,
            src_host=self.name,
            dst_host="",
            size_bytes=_HULA_PROBE_BYTES,
            probe={"origin": origin, "version": version, "util": util},
        )
        self.switch.send_probe(packet, neighbor)

    def on_probe(self, packet: Packet, inport: str) -> None:
        now = self.network.sim.now
        self._last_probe_from[inport] = now
        self._believed_failed[inport] = False
        data = packet.probe or {}
        origin = data["origin"]
        version = int(data["version"])
        if origin == self.name:
            return
        # Bottleneck utilization of the traffic-direction link (this -> inport),
        # including standing-queue pressure (same estimator Contra reads).
        util = max(float(data["util"]), self.switch.egress(inport).congestion)

        entry = self.best.get(origin)
        accept = (
            entry is None
            or version > entry.version
            or (version == entry.version and util < entry.utilization)
        )
        if not accept:
            return
        self.best[origin] = _BestHop(inport, util, version, now)
        for neighbor in self._downstream_neighbors(self.name, origin):
            if neighbor != inport:
                self._send_probe(neighbor, origin, version, util)

    # -------------------------------------------------------------- forwarding

    def on_data_packet(self, packet: Packet, inport: str) -> Optional[str]:
        destination = packet.dst_switch
        now = self.network.sim.now
        fid = packet_flow_hash(packet) % self.flowlets.slots

        pinned = self.flowlets.lookup(destination, 0, 0, fid, now)
        if pinned is not None and self._usable(pinned.next_hop):
            self.flowlets.touch(pinned, now)
            return pinned.next_hop
        if pinned is not None:
            self.flowlets.expire(destination, 0, 0, fid)
            self.network.stats.flowlet_expirations += 1

        entry = self.best.get(destination)
        if entry is None or not self._usable(entry.next_hop) or self._stale(entry, now):
            fallback = self._fallback_next_hop(destination)
            if fallback is None:
                return None
            self.flowlets.install(destination, 0, 0, fid, fallback, 0, now)
            return fallback
        self.flowlets.install(destination, 0, 0, fid, entry.next_hop, 0, now)
        return entry.next_hop

    def _stale(self, entry: _BestHop, now: float) -> bool:
        max_age = self.system.probe_period * (self.system.failure_periods + 1)
        return now - entry.updated_at > max_age

    def _usable(self, neighbor: str) -> bool:
        return not self._believed_failed.get(neighbor, False) and \
            not self.switch.link_failed(neighbor)

    def _fallback_next_hop(self, destination: str) -> Optional[str]:
        """When probe state is missing, fall back to any live shortest-path hop."""
        distances = self.system.distances
        here = distances.get(destination, {}).get(self.name)
        if here is None:
            return None
        candidates = []
        for neighbor in self.switch.switch_neighbors():
            there = distances.get(destination, {}).get(neighbor)
            if there is not None and there < here and self._usable(neighbor):
                candidates.append(neighbor)
        return candidates[0] if candidates else None

    # ---------------------------------------------------------------- failures

    def failure_check(self) -> None:
        now = self.network.sim.now
        window = self.system.probe_period * self.system.failure_periods
        for neighbor, last_seen in self._last_probe_from.items():
            silent = now - last_seen > window
            if silent and not self._believed_failed.get(neighbor, False):
                self._believed_failed[neighbor] = True
                self.network.stats.failure_detections += 1
                self.network.stats.flowlet_expirations += self.flowlets.expire_via(neighbor)
            elif not silent:
                self._believed_failed[neighbor] = False
