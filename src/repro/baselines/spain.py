"""SPAIN baseline (Mudigonda et al., NSDI 2010).

SPAIN pre-computes a set of paths per destination that avoid sharing links
where possible (offline, load-oblivious), maps each path set onto a VLAN, and
spreads flows across the VLANs end-to-end.  It is the multipath-but-static
comparison point for the Abilene experiment (Figure 15).

The reproduction keeps the essential behaviour:

* **offline path computation** — for every switch pair, up to ``k`` paths are
  chosen greedily: each successive path is a shortest path under edge weights
  that penalise links already used by previously chosen paths (the standard
  SPAIN path-set heuristic of "avoid overlap");
* **static flow-to-path assignment** — the ingress switch hashes the flow onto
  one of the precomputed paths (VLAN selection) and the packet is pinned to it
  end-to-end via a source route, mirroring VLAN forwarding without modelling
  802.1Q itself;
* **failure handling** — if the chosen path contains a failed link the ingress
  falls back to the next path in the set.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.protocol.tables import packet_flow_hash
from repro.simulator.network import Network, RoutingSystem
from repro.simulator.packet import Packet
from repro.simulator.switchnode import RoutingLogic

__all__ = ["SpainSystem", "SpainRouting", "compute_spain_paths"]


def compute_spain_paths(
    network_topology,
    k: int = 4,
    overlap_penalty: float = 4.0,
) -> Dict[Tuple[str, str], List[List[str]]]:
    """Greedy SPAIN path sets for every ordered switch pair.

    Each successive path is a least-cost path where every link already used by
    the pair's previous paths costs ``overlap_penalty`` instead of 1, which
    pushes later paths onto disjoint links when the topology allows it.
    """
    switches = network_topology.switches
    paths: Dict[Tuple[str, str], List[List[str]]] = {}
    for src in switches:
        for dst in switches:
            if src == dst:
                continue
            chosen: List[List[str]] = []
            used_links: Dict[Tuple[str, str], int] = {}
            for _ in range(k):
                path = _weighted_shortest_path(network_topology, src, dst,
                                               used_links, overlap_penalty)
                if path is None:
                    break
                if path in chosen:
                    break
                chosen.append(path)
                for a, b in zip(path, path[1:]):
                    used_links[(a, b)] = used_links.get((a, b), 0) + 1
                    used_links[(b, a)] = used_links.get((b, a), 0) + 1
            if chosen:
                paths[(src, dst)] = chosen
    return paths


def _weighted_shortest_path(topology, src: str, dst: str,
                            used_links: Dict[Tuple[str, str], int],
                            overlap_penalty: float) -> Optional[List[str]]:
    dist: Dict[str, float] = {src: 0.0}
    prev: Dict[str, str] = {}
    heap: List[Tuple[float, str]] = [(0.0, src)]
    while heap:
        d, node = heapq.heappop(heap)
        if node == dst:
            break
        if d > dist.get(node, float("inf")):
            continue
        for neighbor in topology.switch_neighbors(node):
            weight = 1.0 + overlap_penalty * used_links.get((node, neighbor), 0)
            nd = d + weight
            if nd < dist.get(neighbor, float("inf")):
                dist[neighbor] = nd
                prev[neighbor] = node
                heapq.heappush(heap, (nd, neighbor))
    if dst not in dist:
        return None
    path = [dst]
    while path[-1] != src:
        path.append(prev[path[-1]])
    path.reverse()
    return path


class SpainRouting(RoutingLogic):
    """Per-switch SPAIN logic: assign a path at ingress, then follow the source route."""

    def __init__(self, system: "SpainSystem"):
        self.system = system

    def on_data_packet(self, packet: Packet, inport: str) -> Optional[str]:
        from_host = not self.network.is_switch(inport)
        if from_host or packet.source_route is None:
            route = self.system.select_path(self.switch, packet)
            if route is None:
                return None
            packet.source_route = tuple(route[1:])  # remaining hops after this switch

        if not packet.source_route:
            return None
        next_hop, *rest = packet.source_route
        packet.source_route = tuple(rest)
        if self.switch.link_failed(next_hop):
            return None
        return next_hop


class SpainSystem(RoutingSystem):
    """SPAIN: static multipath over precomputed low-overlap path sets."""

    name = "spain"

    def __init__(self, k: int = 4, overlap_penalty: float = 4.0):
        self.k = k
        self.overlap_penalty = overlap_penalty
        self.paths: Dict[Tuple[str, str], List[List[str]]] = {}

    def prepare(self, network: Network) -> None:
        self.paths = compute_spain_paths(network.topology, self.k, self.overlap_penalty)

    def create_switch_logic(self, switch: str) -> RoutingLogic:
        return SpainRouting(self)

    def select_path(self, switch, packet: Packet) -> Optional[List[str]]:
        """Hash the flow onto one of the precomputed paths, skipping failed ones."""
        candidates = self.paths.get((switch.name, packet.dst_switch), [])
        if not candidates:
            return None
        start = packet_flow_hash(packet) % len(candidates)
        for offset in range(len(candidates)):
            path = candidates[(start + offset) % len(candidates)]
            if all(not switch.network.link(a, b).failed for a, b in zip(path, path[1:])):
                return path
        return None
