#!/usr/bin/env python3
"""Quickstart: write a policy, compile it, run it, and inspect the result.

This walks through the full Contra workflow on a tiny leaf-spine network:

1. describe the topology,
2. write a performance-aware policy in the paper's textual syntax,
3. compile it into per-switch device programs (and peek at the P4 output),
4. run the compiled protocol in the discrete-event simulator next to ECMP,
5. compare flow completion times and look at the converged switch state.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.baselines import EcmpSystem
from repro.core import compile_policy, parse_policy
from repro.core.p4gen import generate_p4
from repro.protocol import ContraSystem
from repro.simulator import Network
from repro.topology import leafspine
from repro.workloads import generate_workload, web_search_distribution


def main() -> None:
    # ------------------------------------------------------------------ topology
    # Two leaf switches, two spines, two hosts per leaf.  Capacities are in
    # full-size packets per millisecond (see DESIGN.md for the scaling story).
    topology = leafspine(leaves=2, spines=2, hosts_per_leaf=2, capacity=100.0)
    print(f"topology: {topology}")

    # -------------------------------------------------------------------- policy
    # "Use the least utilized path" — the policy Hula hard-codes, written as a
    # one-line Contra policy.  Any of the Figure 3 policies would work here.
    policy = parse_policy("minimize( (path.len, path.util) )")
    print(f"policy:   {policy}")

    # ------------------------------------------------------------------- compile
    compiled = compile_policy(policy, topology)
    print(f"compiled in {compiled.compile_time * 1000:.1f} ms; "
          f"{compiled.num_probe_ids} probe id(s); "
          f"product graph has {compiled.product_graph.num_nodes} virtual nodes; "
          f"max switch state {compiled.max_state_kb():.1f} kB")

    # Peek at the P4-style program synthesized for one switch.
    program = generate_p4(compiled.device("leaf0"), policy_name="quickstart")
    print(f"generated P4 for leaf0: {program.lines_of_code} lines "
          f"({program.table_entries} table entries)")

    # ------------------------------------------------------------------ workload
    workload = generate_workload(
        topology,
        web_search_distribution(scale=0.1),
        load=0.6,                # 60% offered load on the sender access links
        duration=20.0,           # ms of flow arrivals
        host_capacity=100.0,
        seed=42,
        start_after=2.0,         # let the protocol converge first
    )
    print(f"workload: {len(workload.flows)} flows, {workload.total_packets} packets")

    # ---------------------------------------------------------------- simulation
    results = {}
    for name, system in (
        ("contra", ContraSystem(compiled, probe_period=0.256)),
        ("ecmp", EcmpSystem()),
    ):
        network = Network(topology, system)
        network.schedule_flows(workload.flows)
        stats = network.run(80.0)
        results[name] = stats.summary()

    print("\nsystem   avg FCT (ms)   completed   probe+tag overhead")
    for name, summary in results.items():
        print(f"{name:8s} {summary['avg_fct_ms']:12.2f}   "
              f"{summary['completed_flows']:.0f}/{summary['flows']:.0f}       "
              f"{summary['overhead_ratio'] * 100:.2f}% of data bytes")

    # -------------------------------------------------------- converged state
    contra_system = ContraSystem(compiled, probe_period=0.256)
    network = Network(topology, contra_system)
    network.run(3.0)
    leaf0 = contra_system.logic("leaf0")
    print("\nleaf0 forwarding table after convergence (destination, tag, pid) -> next hop:")
    for key, (next_hop, version, metrics) in sorted(leaf0.forwarding_snapshot().items()):
        print(f"  {key} -> {next_hop}  (probe version {version}, metrics {metrics})")
    print(f"leaf0 best next hop towards leaf1: {leaf0.best_next_hop('leaf1')}")


if __name__ == "__main__":
    main()
