#!/usr/bin/env python3
"""WAN policy routing on Abilene: waypoints, forbidden segments and failover.

This example shows the part of Contra that hand-crafted load balancers cannot
do at all: *policy-constrained*, performance-aware routing on an arbitrary
topology.  On the Abilene backbone it

1. forces traffic from Seattle to New York through a scrubbing waypoint
   (Kansas City) while still picking the least-utilized compliant path,
2. forbids a politically sensitive segment (Denver→Houston via Kansas City),
3. shows Propane-style failover preferences, and
4. demonstrates re-routing after a backbone link failure.

Run with::

    python examples/wan_waypoint_routing.py
"""

from __future__ import annotations

from repro.core import compile_policy, parse_policy
from repro.protocol import ContraSystem
from repro.simulator import Network
from repro.topology import abilene


def converged_network(policy_text, probe_period=1.0, settle=15.0, failures=()):
    """Compile a policy for Abilene and let the probes converge."""
    topology = abilene(capacity=100.0, hosts_per_switch=1)
    policy = parse_policy(policy_text)
    compiled = compile_policy(policy, topology)
    system = ContraSystem(compiled, probe_period=max(probe_period, compiled.probe_period))
    network = Network(topology, system)
    for (a, b, at_time) in failures:
        network.fail_link(a, b, at_time=at_time)
    network.run(settle)
    return compiled, system, network


def trace(system, src, dst, max_hops=12):
    """Follow the converged forwarding state hop by hop (a fresh flowlet's path)."""
    logic = system.logic(src)
    best = logic._best_key(dst)
    if best is None:
        return None
    _, tag, pid = best
    hops = [src]
    current = src
    for _ in range(max_hops):
        entry = system.logic(current).fwdt.lookup((dst, tag, pid))
        if entry is None:
            return None
        tag, current = entry.next_tag, entry.next_hop
        hops.append(current)
        if current == dst:
            return hops
    return None


def show(title, system, pairs):
    print(f"\n=== {title}")
    for src, dst in pairs:
        path_taken = trace(system, src, dst)
        rendered = " -> ".join(path_taken) if path_taken else "(no policy-compliant path)"
        print(f"  {src:>3s} to {dst:<3s}: {rendered}")


def main() -> None:
    # 1. Waypointing: all traffic to NYC must pass through the KSC scrubber,
    #    but among compliant paths the least utilized one is used.
    _, system, _ = converged_network(
        "minimize( if .* KSC .* then path.util else inf )")
    show("Waypoint through Kansas City (policy P5 style)", system,
         [("SEA", "NYC"), ("LAX", "NYC"), ("ATL", "NYC")])

    # 2. Forbidden segment: never route over the DEN-KSC link, latency-optimal
    #    otherwise (policy P6/P7 style, with a dynamic metric).
    _, system, _ = converged_network(
        "minimize( if .* DEN KSC .* then inf else path.lat )")
    show("Forbid the DEN-KSC segment, minimize latency", system,
         [("SEA", "NYC"), ("SNV", "CHI")])

    # 3. Propane-style failover preference: prefer the northern route, fall
    #    back to the southern one, never anything else.
    _, system, _ = converged_network(
        "minimize( if SEA DEN KSC IPL CHI NYC then 0 "
        "else if SEA SNV LAX HOU ATL WDC NYC then 1 else inf )")
    show("Failover preference (northern route primary)", system, [("SEA", "NYC")])

    # 4. Same policy after the northern route loses a link: traffic falls back
    #    to the southern route within a few probe periods.
    _, system, _ = converged_network(
        "minimize( if SEA DEN KSC IPL CHI NYC then 0 "
        "else if SEA SNV LAX HOU ATL WDC NYC then 1 else inf )",
        failures=[("KSC", "IPL", 1.0)], settle=25.0)
    show("Failover after the KSC-IPL link fails", system, [("SEA", "NYC")])

    print("\nEach path above is policy-compliant by construction: the compiler only "
          "installs forwarding state along product-graph edges, and switches re-tag "
          "packets so downstream hops stay inside the allowed path set (§4.2).")


if __name__ == "__main__":
    main()
