#!/usr/bin/env python3
"""Datacenter load balancing: Contra vs Hula vs ECMP on a fat-tree.

Reproduces the §6.3 scenario in miniature: a k=4 fat-tree with 4:1
oversubscription, the web-search workload, and a comparison of flow completion
times on the symmetric fabric and after an aggregation–core link failure
(the Figure 11/12 story).

Run with::

    python examples/datacenter_load_balancing.py [--load 0.8] [--asymmetric]
"""

from __future__ import annotations

import argparse

from repro.core import compile_policy
from repro.core.builder import minimize, path, rank_tuple
from repro.experiments.fct import default_failed_link
from repro.baselines import EcmpSystem, HulaSystem
from repro.protocol import ContraSystem
from repro.simulator import Network
from repro.topology import fattree
from repro.workloads import generate_workload, web_search_distribution


def build_systems(compiled):
    """The three systems of Figure 11, configured identically."""
    return {
        "ecmp": EcmpSystem(),
        "hula": HulaSystem(probe_period=0.256, flowlet_timeout=0.2),
        "contra": ContraSystem(compiled, probe_period=0.256, flowlet_timeout=0.2),
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.8,
                        help="offered load as a fraction of host capacity (default 0.8)")
    parser.add_argument("--asymmetric", action="store_true",
                        help="fail one aggregation-core link (the Figure 12 variant)")
    parser.add_argument("--duration", type=float, default=25.0,
                        help="milliseconds of flow arrivals (default 25)")
    args = parser.parse_args()

    topology = fattree(4, capacity=100.0, oversubscription=4.0)
    print(f"topology: {topology} (oversubscription 4:1)")

    # The datacenter policy: least-utilized shortest path — what Hula
    # hard-codes, expressed as a two-line Contra policy.
    policy = minimize(rank_tuple(path.len, path.util), name="least-utilized-shortest-path")
    compiled = compile_policy(policy, topology)
    print(f"compiled {policy.name!r}: probe period >= {compiled.probe_period:.3f} ms, "
          f"max switch state {compiled.max_state_kb():.1f} kB")

    workload = generate_workload(
        topology, web_search_distribution(0.1), load=args.load,
        duration=args.duration, host_capacity=100.0, seed=7, start_after=2.0)
    print(f"workload: {len(workload.flows)} flows at {int(args.load * 100)}% load "
          f"({'asymmetric' if args.asymmetric else 'symmetric'} fabric)\n")

    failed_link = default_failed_link(topology) if args.asymmetric else None
    print(f"{'system':8s} {'avg FCT (ms)':>14s} {'p99 FCT (ms)':>14s} "
          f"{'completed':>10s} {'drops':>7s}")
    for name, system in build_systems(compiled).items():
        network = Network(topology, system, buffer_packets=500, host_window=16, host_rto=5.0)
        network.schedule_flows(workload.flows)
        if failed_link is not None:
            network.fail_link(*failed_link, at_time=0.0)
        stats = network.run(args.duration + 60.0)
        summary = stats.summary()
        print(f"{name:8s} {summary['avg_fct_ms']:14.2f} {summary['p99_fct_ms']:14.2f} "
              f"{summary['completed_flows']:6.0f}/{summary['flows']:.0f} "
              f"{summary['drops']:7.0f}")

    print("\nExpected shape (paper §6.3): Contra tracks Hula closely; both beat ECMP at "
          "high load, and ECMP collapses on the asymmetric fabric while the "
          "utilization-aware systems route around the failure.")


if __name__ == "__main__":
    main()
