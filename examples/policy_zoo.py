#!/usr/bin/env python3
"""Policy zoo: compile every Figure 3 policy and inspect what the compiler does.

For each of the paper's nine example policies (P1–P9) this script prints the
static analysis verdicts (monotonicity, isotonicity), the decomposition into
probe ids, the size of the product graph on two different topologies, and the
estimated switch state — i.e. the compiler-facing half of the system, with no
simulation involved.

Run with::

    python examples/policy_zoo.py
"""

from __future__ import annotations

from repro.core import compile_policy
from repro.core.analysis import check_isotonicity, check_monotonicity, decompose
from repro.core.policies import ALL_POLICIES, link_preference, waypointing, weighted_link
from repro.topology import abilene, fattree


def instantiate(key, topology):
    """Bind policies that reference concrete switches to switches that exist."""
    switches = topology.switches
    mid = switches[len(switches) // 2]
    nbr = topology.switch_neighbors(mid)[0]
    if key == "P5":
        return waypointing((mid,))
    if key == "P6":
        return link_preference(mid, nbr)
    if key == "P7":
        return weighted_link(mid, nbr)
    if key == "P8":
        from repro.core.policies import source_local_preference
        return source_local_preference(switches[0])
    return ALL_POLICIES[key]()


def describe(key, topology):
    policy = instantiate(key, topology)
    monotone = check_monotonicity(policy)
    isotone = check_isotonicity(policy)
    decomposition = decompose(policy)
    compiled = compile_policy(policy, topology)
    return {
        "policy": policy.name,
        "monotone": "yes" if monotone.is_monotone else "NO",
        "isotonic": ("yes" if isotone.is_isotonic
                     else "regex-decomposed" if isotone.needs_regex_decomposition
                     and not isotone.needs_metric_decomposition
                     else "metric-decomposed"),
        "probes": decomposition.num_probes,
        "metrics": ",".join(decomposition.carried_attrs) or "-",
        "pg_nodes": compiled.product_graph.num_nodes,
        "tags": compiled.product_graph.max_tags_per_switch(),
        "state_kb": round(compiled.max_state_kb(), 1),
        "compile_ms": round(compiled.compile_time * 1000, 1),
    }


def print_table(rows):
    headers = ["policy", "monotone", "isotonic", "probes", "metrics",
               "pg_nodes", "tags", "state_kb", "compile_ms"]
    widths = {h: max(len(h), *(len(str(r[h])) for r in rows)) for h in headers}
    print("  ".join(h.ljust(widths[h]) for h in headers))
    print("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        print("  ".join(str(row[h]).ljust(widths[h]) for h in headers))


def main() -> None:
    for name, topology in (("fat-tree k=4", fattree(4, hosts_per_edge=0)),
                           ("Abilene", abilene(hosts_per_switch=0))):
        print(f"\n=== {name} ({len(topology.switches)} switches) ===")
        rows = [describe(key, topology) for key in sorted(ALL_POLICIES)]
        print_table(rows)

    print("\nReading the table: policies with regular expressions (P5-P7) blow up the "
          "product graph and need more tags/state; the non-isotonic policies (P3, P9) "
          "are decomposed into multiple probe ids; everything compiles in milliseconds "
          "at this scale (Figure 9/10 sweeps the same quantities up to 500 switches).")


if __name__ == "__main__":
    main()
