"""Integration tests for the transport subsystem at the experiment layer.

Covers go-back-N under induced loss (link-drop schedule: retransmission
counts, eventual completion, goodput < throughput), the determinism contract
for the new goodput/retransmit summary fields (serial == parallel), the
``transport`` knob threading (spec override, config default, CLI flag), and
the ``transport-sensitivity`` / ``fig11-k8`` registry scenarios.
"""

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.fct import run_transport_sensitivity
from repro.experiments.registry import SCENARIOS, run_scenario
from repro.experiments.runner import (
    LinkEvent,
    RunContext,
    ScenarioSpec,
    TopologySpec,
    run_grid,
)

TINY = ExperimentConfig(workload_duration=4.0, run_duration=30.0, loads=(0.6,),
                        websearch_scale=0.05, cache_scale=0.2)

#: Starved buffers + receiver-scoped overload: a reliable source of drops.
LOSSY = ExperimentConfig(workload_duration=4.0, run_duration=60.0, loads=(0.9,),
                         cache_scale=0.2, buffer_packets=20)

FATTREE = TopologySpec("fattree", k=4, capacity=TINY.host_capacity,
                       oversubscription=TINY.oversubscription)


def _summaries(results):
    return [(result.name, sorted(result.summary.items())) for result in results]


def lossy_incast_spec(transport, system="ecmp", **overrides):
    base = dict(name=f"lossy:{transport}:{system}", system=system,
                topology=FATTREE, config=LOSSY, workload="cache", load=0.9,
                seed=2, traffic="incast", incast_fanin=8, transport=transport,
                stop_after_completion=True)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestGoBackNUnderLoss:
    def test_buffer_starved_incast_retransmits_and_completes(self):
        summary = RunContext().run(lossy_incast_spec("fixed")).summary
        assert summary["drops"] > 0
        assert summary["retransmissions"] > 0
        assert summary["completion_ratio"] == 1.0          # go-back-N recovers
        # The evaluation bugfix: duplicates inflate throughput, not goodput.
        assert summary["duplicate_deliveries"] > 0
        assert summary["goodput_bytes"] < summary["delivered_bytes"]

    def test_link_drop_schedule_forces_retransmissions(self):
        # A mid-run fail -> recover blip loses every in-flight packet on the
        # link; the flows must recover via retransmission and still complete.
        spec = ScenarioSpec(
            name="blip:fixed", system="ecmp", topology=FATTREE, config=TINY,
            workload="web_search", load=0.6, seed=1,
            events=(LinkEvent(3.0, "e0_0", "a0_0", "fail"),
                    LinkEvent(6.0, "e0_0", "a0_0", "recover")),
            run_duration=90.0, stop_after_completion=True)
        summary = RunContext().run(spec).summary
        assert summary["retransmissions"] > 0
        assert summary["completion_ratio"] == 1.0
        assert summary["goodput_bytes"] <= summary["delivered_bytes"]

    def test_goodput_never_exceeds_throughput_in_any_mode(self):
        context = RunContext()
        for transport in ("fixed", "slowstart", "paced"):
            summary = context.run(lossy_incast_spec(transport)).summary
            assert summary["goodput_bytes"] <= summary["delivered_bytes"]

    def test_lossy_summary_serial_matches_parallel(self):
        # The new goodput/retransmit/cwnd fields ride the same determinism
        # contract as every other summary value.
        specs = [lossy_incast_spec(t, name=f"det:{t}")
                 for t in ("fixed", "slowstart")]
        assert _summaries(run_grid(specs, processes=1)) == \
            _summaries(run_grid(specs, processes=2))


class TestTransportKnob:
    def test_default_spec_equals_explicit_fixed(self):
        context = RunContext()
        default = context.run(lossy_incast_spec(None, name="knob:default"))
        fixed = context.run(lossy_incast_spec("fixed", name="knob:fixed"))
        assert sorted(default.summary.items()) == sorted(fixed.summary.items())

    def test_config_transport_used_when_spec_silent(self):
        from dataclasses import replace
        context = RunContext()
        via_config = context.run(lossy_incast_spec(
            None, name="knob:cfg", config=replace(LOSSY, transport="slowstart")))
        via_spec = context.run(lossy_incast_spec("slowstart", name="knob:spec"))
        assert sorted(via_config.summary.items()) == sorted(via_spec.summary.items())

    def test_slowstart_changes_incast_tail(self):
        context = RunContext()
        fixed = context.run(lossy_incast_spec("fixed")).summary
        slowstart = context.run(lossy_incast_spec("slowstart")).summary
        assert slowstart["p99_fct_ms"] != fixed["p99_fct_ms"]

    def test_cli_run_grid_accepts_transport_flag(self, monkeypatch, capsys):
        from repro import cli
        captured = {}

        def fake_run_scenario(name, config, processes=None, results_dir=None,
                              flow_model=None):
            captured["transport"] = config.transport
            from repro.experiments.registry import ScenarioOutcome
            return ScenarioOutcome(name, "stub", {})

        monkeypatch.setattr(cli, "run_scenario", fake_run_scenario)
        assert cli.main(["run-grid", "fig13", "--transport", "slowstart"]) == 0
        assert captured["transport"] == "slowstart"

    def test_cli_rejects_transport_flag_on_sensitivity_scenario(self):
        # transport-sensitivity sweeps every mode; a per-run override would
        # be silently ignored, so the CLI refuses the combination.
        from repro import cli
        with pytest.raises(SystemExit, match="no effect"):
            cli.main(["run-grid", "transport-sensitivity",
                      "--transport", "paced"])

    def test_cli_rejects_unknown_transport(self):
        from repro import cli
        with pytest.raises(SystemExit):
            cli.main(["run-grid", "fig11", "--transport", "bongo"])


class TestTransportSensitivityScenario:
    def test_registered(self):
        assert {"transport-sensitivity", "fig11-k8"} <= set(SCENARIOS)

    def test_grid_covers_modes_and_systems(self):
        results = run_transport_sensitivity(TINY, loads=(0.6,))
        assert len(results) == 3 * 2            # 3 transports x 2 systems
        names = {r.name for r in results}
        assert any(":fixed:" in n for n in names)
        assert any(":slowstart:" in n for n in names)
        assert any(":paced:" in n for n in names)
        for r in results:
            assert r.summary["goodput_bytes"] <= r.summary["delivered_bytes"]

    def test_scenario_runs_end_to_end_and_reports(self):
        outcome = run_scenario("transport-sensitivity", TINY)
        assert "transport" in outcome.text and "goodput_ratio" in outcome.text
        assert len(outcome.payload) == 3 * 2 * len(TINY.loads)
        for row in outcome.payload:
            assert "summary" in row and "goodput_bytes" in row["summary"]

    def test_scenario_serial_matches_parallel(self):
        serial = run_transport_sensitivity(TINY, loads=(0.6,), processes=1)
        parallel = run_transport_sensitivity(TINY, loads=(0.6,), processes=2)
        assert _summaries(serial) == _summaries(parallel)


@pytest.mark.slow
class TestFig11K8:
    def test_fig11_k8_runs_on_larger_fabric(self):
        micro = ExperimentConfig(workload_duration=1.5, run_duration=20.0,
                                 loads=(0.4,), websearch_scale=0.05,
                                 cache_scale=0.2)
        outcome = run_scenario("fig11-k8", micro)
        assert "k=8" in outcome.text
        # 2 workloads x 1 load x 3 systems, every point completed flows.
        assert len(outcome.payload) == 6
        for row in outcome.payload:
            assert row["completed"] > 0
